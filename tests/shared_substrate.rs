//! Shared-immutable-substrate regressions: a sharded deployment must hold
//! exactly **one** graph, one landmark set, one Contraction Hierarchies
//! index and one social neighbour cache across all shards (`Arc::ptr_eq`,
//! not structural equality); sharing must survive churn, migration and
//! rebalancing; and concurrent lazy builds — even across *separately
//! built* sharded engines over the same dataset — must race into a single
//! instance.  Lazy arm admission of the cross-shard stream is covered at
//! the end: truncated consumption must open strictly fewer shard arms
//! while full drains stay identical to the eager scatter-gather.

use geosocial_ssrq::core::{Algorithm, ChBuild, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::Point;
use geosocial_ssrq::shard::{Partitioning, ShardedEngine};
use std::sync::Arc;

fn request(user: u32, k: usize, alpha: f64, algorithm: Algorithm) -> QueryRequest {
    QueryRequest::for_user(user)
        .k(k)
        .alpha(alpha)
        .algorithm(algorithm)
        .build()
        .expect("valid request")
}

/// The headline regression: an 8-shard build holds exactly one graph core,
/// one landmark set and — once a `*-CH` query ran — one CH instance.
#[test]
fn an_eight_shard_build_holds_one_graph_one_landmark_set_one_ch() {
    let dataset = DatasetConfig::gowalla_like(160).with_seed(99).generate();
    let workload = QueryWorkload::generate(&dataset, 2, 5);
    let sharded = ShardedEngine::builder(dataset.clone())
        .shards(8)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 8 })
        .configure_engines(|b| b.with_ch(ChBuild::Lazy))
        .build()
        .unwrap();

    let first = sharded.shard_engine(0);
    // One graph: every shard dataset shares the unpartitioned core (and so
    // does the caller's own handle).
    assert!(first.dataset().shares_core_with(&dataset));
    for s in 1..sharded.shard_count() {
        let shard = sharded.shard_engine(s);
        assert!(
            shard.dataset().shares_core_with(first.dataset()),
            "shard {s} holds its own graph core"
        );
        assert!(
            Arc::ptr_eq(&shard.shared_landmarks(), &first.shared_landmarks()),
            "shard {s} holds its own landmark set"
        );
        // The lazy CH has not been requested yet — nowhere.
        assert!(shard.contraction_hierarchy().is_none());
    }

    // One CH: the first *-CH query builds it once; every shard (and the
    // original dataset handle) observes the same Arc.
    let user = workload.users[0];
    let got = sharded
        .run(&request(user, 8, 0.4, Algorithm::SfaCh))
        .unwrap();
    let oracle = sharded
        .run(&request(user, 8, 0.4, Algorithm::Exhaustive))
        .unwrap();
    assert!(got.same_users_and_scores(&oracle, 1e-9));
    let ch = first.shared_contraction_hierarchy().expect("CH built");
    for s in 1..sharded.shard_count() {
        assert!(
            Arc::ptr_eq(
                &ch,
                &sharded
                    .shard_engine(s)
                    .shared_contraction_hierarchy()
                    .expect("CH visible on every shard")
            ),
            "shard {s} holds its own CH instance"
        );
    }
}

/// The lazily built social neighbour cache is also built once and shared
/// through the adopted slot.
#[test]
fn shards_share_one_lazily_built_social_cache() {
    let dataset = DatasetConfig::gowalla_like(300).with_seed(7).generate();
    let users = QueryWorkload::generate(&dataset, 3, 11).users;
    let cache_users = users.clone();
    let sharded = ShardedEngine::builder(dataset)
        .shards(4)
        .configure_engines(move |b| b.cache_social_neighbors(cache_users.clone(), 60))
        .build()
        .unwrap();
    assert!(sharded.shard_engine(0).social_cache().is_none());
    sharded
        .run(&request(users[0], 10, 0.3, Algorithm::SfaCached))
        .unwrap();
    let cache = sharded
        .shard_engine(0)
        .shared_social_cache()
        .expect("cache built");
    for s in 1..sharded.shard_count() {
        assert!(
            Arc::ptr_eq(
                &cache,
                &sharded
                    .shard_engine(s)
                    .shared_social_cache()
                    .expect("cache visible on every shard")
            ),
            "shard {s} holds its own social cache"
        );
    }
}

/// Location churn, cross-shard migration and a full rebalance re-partition
/// locations only: the shared graph core and the `Arc`-held graph indexes
/// come through untouched (same instances, not rebuilt equivalents).
#[test]
fn churn_migration_and_rebalance_preserve_the_shared_instances() {
    let dataset = DatasetConfig::gowalla_like(160).with_seed(31).generate();
    let mut sharded = ShardedEngine::builder(dataset)
        .shards(4)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 8 })
        .configure_engines(|b| b.with_ch(ChBuild::Lazy))
        .build()
        .unwrap();
    let user = QueryWorkload::generate(sharded.shard_engine(0).dataset(), 1, 3).users[0];
    sharded
        .run(&request(user, 6, 0.5, Algorithm::TsaCh))
        .unwrap();
    let core_witness = sharded.shard_engine(0).dataset().clone();
    let landmarks = sharded.shard_engine(0).shared_landmarks();
    let ch = sharded
        .shard_engine(0)
        .shared_contraction_hierarchy()
        .unwrap();

    // Drive users across cell boundaries (guaranteed migrations for the
    // spatial policy), drop some, then rebalance.
    for (i, u) in (0..sharded.user_count() as u32).step_by(3).enumerate() {
        let p = Point::new(
            ((i as f64) * 0.37 + 0.05) % 1.0,
            ((i as f64) * 0.61 + 0.11) % 1.0,
        );
        sharded.update_location(u, p).unwrap();
    }
    sharded
        .remove_location((user + 1) % sharded.user_count() as u32)
        .unwrap();
    let report = sharded.rebalance();
    assert_eq!(report.occupancy.len(), 4);

    for s in 0..sharded.shard_count() {
        let shard = sharded.shard_engine(s);
        assert!(shard.dataset().shares_core_with(&core_witness));
        assert!(Arc::ptr_eq(&shard.shared_landmarks(), &landmarks));
        assert!(Arc::ptr_eq(
            &shard.shared_contraction_hierarchy().unwrap(),
            &ch
        ));
    }
    // And the engine still answers exactly after all of it.
    let oracle = sharded
        .run(&request(user, 6, 0.5, Algorithm::Exhaustive))
        .unwrap();
    let got = sharded
        .run(&request(user, 6, 0.5, Algorithm::TsaCh))
        .unwrap();
    assert!(got.same_users_and_scores(&oracle, 1e-9));
}

/// Two sharded engines built independently from (clones of) the same
/// dataset race their `ChBuild::Lazy` builds from different threads:
/// exactly one build may run — proven by every handle, across both
/// deployments, resolving to the same `Arc` (the write-once slot lives in
/// the shared dataset core, so a second build could not be observed).
#[test]
fn two_sharded_engines_race_one_lazy_ch_build() {
    let dataset = DatasetConfig::gowalla_like(160).with_seed(55).generate();
    let user = QueryWorkload::generate(&dataset, 1, 9).users[0];
    let build = |policy| {
        ShardedEngine::builder(dataset.clone())
            .shards(2)
            .partitioning(policy)
            .configure_engines(|b| b.with_ch(ChBuild::Lazy))
            .build()
            .unwrap()
    };
    let a = build(Partitioning::UserHash);
    let b = build(Partitioning::SpatialGrid { cells_per_axis: 8 });
    assert!(a.shard_engine(0).contraction_hierarchy().is_none());
    assert!(b.shard_engine(0).contraction_hierarchy().is_none());

    let req = request(user, 6, 0.4, Algorithm::SfaCh);
    std::thread::scope(|scope| {
        let ra = scope.spawn(|| a.run(&req).unwrap());
        let rb = scope.spawn(|| b.run(&req).unwrap());
        let (ra, rb) = (ra.join().unwrap(), rb.join().unwrap());
        assert_eq!(ra.ranked, rb.ranked);
    });

    let ch = a
        .shard_engine(0)
        .shared_contraction_hierarchy()
        .expect("built by the race");
    for engine in [&a, &b] {
        for s in 0..engine.shard_count() {
            assert!(
                Arc::ptr_eq(
                    &ch,
                    &engine
                        .shard_engine(s)
                        .shared_contraction_hierarchy()
                        .expect("every handle observes the build")
                ),
                "a second CH build was observable"
            );
        }
    }
}

/// Plain (unsharded) engines built from clones of one dataset also race
/// into a single lazy CH — the slot lives in the dataset core, not in the
/// engine.
#[test]
fn independent_engines_over_one_dataset_share_the_lazy_ch() {
    let dataset = DatasetConfig::gowalla_like(150).with_seed(71).generate();
    let user = QueryWorkload::generate(&dataset, 1, 2).users[0];
    let make = || {
        GeoSocialEngine::builder(dataset.clone())
            .with_ch(ChBuild::Lazy)
            .build()
            .unwrap()
    };
    let e1 = make();
    let e2 = make();
    std::thread::scope(|scope| {
        for engine in [&e1, &e2] {
            scope.spawn(move || {
                engine
                    .run(&request(user, 5, 0.5, Algorithm::SpaCh))
                    .unwrap()
            });
        }
    });
    assert!(Arc::ptr_eq(
        &e1.shared_contraction_hierarchy().unwrap(),
        &e2.shared_contraction_hierarchy().unwrap()
    ));
}

/// Lazy arm admission: a `take(1)` consumer on a spatially spread dataset
/// opens strictly fewer shard arms than the shard count, while a full
/// drain still replays exactly the eager scatter-gather result.
#[test]
fn lazy_arm_admission_saves_opens_and_stays_exact() {
    let dataset = DatasetConfig::gowalla_like(900).with_seed(123).generate();
    let workload = QueryWorkload::generate(&dataset, 4, 19);
    let sharded = ShardedEngine::builder(dataset)
        .shards(8)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 16 })
        .build()
        .unwrap();
    let mut session = sharded.session();
    let mut saved_anywhere = false;
    for &user in &workload.users {
        for algorithm in [Algorithm::Sfa, Algorithm::Ais] {
            let req = request(user, 12, 0.3, algorithm);
            let eager = session.run(&req).unwrap();

            // Full drain: identical entries, identical order, and no arm
            // beyond the non-skipped set was opened.
            {
                let mut stream = session.stream(&req).unwrap();
                let drained: Vec<_> = stream.by_ref().collect();
                assert_eq!(drained, eager.ranked, "{} drain != run", algorithm.name());
                assert!(stream.opened_shards() + stream.skipped_shards() <= sharded.shard_count());
            }

            // Truncated consumption: opening every arm cannot be necessary
            // for the global minimum when the shards' rect lower bounds
            // separate them from the head.
            let mut stream = session.stream(&req).unwrap();
            let first = stream.next().expect("non-empty result");
            assert_eq!(first, eager.ranked[0]);
            if stream.opened_shards() + stream.skipped_shards() < sharded.shard_count() {
                saved_anywhere = true;
            }
        }
    }
    assert!(
        saved_anywhere,
        "take(1) never avoided opening a shard arm on a 16x16 spatial tiling"
    );
}
