//! Cross-crate integration test: every SSRQ processing algorithm must return
//! exactly the same result as the brute-force oracle on realistic generated
//! datasets, across the paper's parameter ranges.

use geosocial_ssrq::core::{Algorithm, EngineConfig, GeoSocialEngine, QueryParams};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};

fn build_engine(users: usize, config: EngineConfig) -> GeoSocialEngine {
    let dataset = DatasetConfig::gowalla_like(users).with_seed(77).generate();
    GeoSocialEngine::build(dataset, config).expect("engine builds")
}

#[test]
fn indexed_algorithms_agree_with_the_oracle_across_k_and_alpha() {
    let engine = build_engine(1_200, EngineConfig::default());
    let workload = QueryWorkload::generate(engine.dataset(), 4, 11);
    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
    ];
    for &user in &workload.users {
        for k in [1usize, 30] {
            for alpha in [0.1, 0.5, 0.9] {
                let params = QueryParams::new(user, k, alpha);
                let oracle = engine.query(Algorithm::Exhaustive, &params).unwrap();
                for algorithm in algorithms {
                    let result = engine.query(algorithm, &params).unwrap();
                    assert!(
                        result.same_users_and_scores(&oracle, 1e-9),
                        "{} disagrees with the oracle (user {user}, k {k}, alpha {alpha}):\n  got      {:?}\n  expected {:?}",
                        algorithm.name(),
                        result.users(),
                        oracle.users()
                    );
                }
            }
        }
    }
}

#[test]
fn ch_and_cached_variants_agree_with_the_oracle() {
    // CH construction on the hub-heavy synthetic graphs is by far the most
    // expensive step of the suite (quadratic-ish witness-search blowup, as
    // the paper observes for social networks), so this test keeps the CH
    // engine small; tests/batch_query.rs covers the CH variants too.
    let mut engine = build_engine(160, EngineConfig::default());
    engine.build_contraction_hierarchy();
    let workload = QueryWorkload::generate(engine.dataset(), 3, 23);
    engine.build_social_cache(&workload.users, 100);
    for &user in &workload.users {
        for alpha in [0.3, 0.7] {
            let params = QueryParams::new(user, 20, alpha);
            let oracle = engine.query(Algorithm::Exhaustive, &params).unwrap();
            for algorithm in [
                Algorithm::SfaCh,
                Algorithm::SpaCh,
                Algorithm::TsaCh,
                Algorithm::SfaCached,
            ] {
                let result = engine.query(algorithm, &params).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees with the oracle (user {user}, alpha {alpha})",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn different_index_granularities_do_not_change_results() {
    for granularity in [3u32, 6, 12] {
        let config = EngineConfig {
            granularity,
            ..EngineConfig::default()
        };
        let engine = build_engine(700, config);
        let workload = QueryWorkload::generate(engine.dataset(), 3, 5);
        for &user in &workload.users {
            let params = QueryParams::new(user, 15, 0.3);
            let oracle = engine.query(Algorithm::Exhaustive, &params).unwrap();
            for algorithm in [Algorithm::Spa, Algorithm::Ais] {
                let result = engine.query(algorithm, &params).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees at granularity {granularity}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn different_landmark_configurations_do_not_change_results() {
    use geosocial_ssrq::graph::LandmarkSelection;
    for (m, selection) in [
        (1usize, LandmarkSelection::Random),
        (4, LandmarkSelection::HighestDegree),
        (12, LandmarkSelection::FarthestFirst),
    ] {
        let config = EngineConfig {
            num_landmarks: m,
            landmark_selection: selection,
            ..EngineConfig::default()
        };
        let engine = build_engine(700, config);
        let workload = QueryWorkload::generate(engine.dataset(), 3, 9);
        for &user in &workload.users {
            let params = QueryParams::new(user, 10, 0.5);
            let oracle = engine.query(Algorithm::Exhaustive, &params).unwrap();
            for algorithm in [Algorithm::Tsa, Algorithm::Ais] {
                let result = engine.query(algorithm, &params).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees with M = {m}, selection {selection:?}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn high_degree_network_results_stay_exact() {
    let dataset = DatasetConfig::twitter_like(900).with_seed(3).generate();
    let engine = GeoSocialEngine::build(dataset, EngineConfig::default()).unwrap();
    let workload = QueryWorkload::generate(engine.dataset(), 3, 31);
    for &user in &workload.users {
        let params = QueryParams::new(user, 30, 0.3);
        let oracle = engine.query(Algorithm::Exhaustive, &params).unwrap();
        for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
            let result = engine.query(algorithm, &params).unwrap();
            assert!(result.same_users_and_scores(&oracle, 1e-9));
        }
    }
}

#[test]
fn stats_show_ais_settles_fewer_vertices_than_single_domain_baselines() {
    // The AIS advantage comes from locality: on larger graphs the one-domain
    // approaches expand most of the network while AIS touches a small
    // neighbourhood (Figure 8(c)/(d) of the paper).  Use a graph that is
    // large enough for the effect to be visible but still quick to query.
    let engine = build_engine(12_000, EngineConfig::default());
    let workload = QueryWorkload::generate(engine.dataset(), 3, 13);
    let mut sfa_pops = 0usize;
    let mut spa_pops = 0usize;
    let mut ais_pops = 0usize;
    for params in workload.params() {
        sfa_pops += engine
            .query(Algorithm::Sfa, &params)
            .unwrap()
            .stats
            .vertex_pops;
        spa_pops += engine
            .query(Algorithm::Spa, &params)
            .unwrap()
            .stats
            .vertex_pops;
        ais_pops += engine
            .query(Algorithm::Ais, &params)
            .unwrap()
            .stats
            .vertex_pops;
    }
    // The headline claim of the paper: the aggregate index search expands
    // fewer vertices than the one-domain approaches.
    assert!(
        ais_pops < sfa_pops,
        "AIS settled {ais_pops} vs SFA {sfa_pops}"
    );
    assert!(
        ais_pops < spa_pops,
        "AIS settled {ais_pops} vs SPA {spa_pops}"
    );
}
