//! Cross-crate integration test: every SSRQ processing algorithm must return
//! exactly the same result as the brute-force oracle on realistic generated
//! datasets, across the paper's parameter ranges — and under every request
//! scenario option (spatial filter, exclusions, score cutoff).
//!
//! `QueryResult::same_users_and_scores` compares the *user sets* of every
//! score-tie group (not just the score sequence), so two results can only
//! pass as interchangeable when they genuinely report the same users.

use geosocial_ssrq::core::{Algorithm, ChBuild, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::{Point, Rect};

fn build_engine(users: usize, granularity: u32) -> GeoSocialEngine {
    let dataset = DatasetConfig::gowalla_like(users).with_seed(77).generate();
    GeoSocialEngine::builder(dataset)
        .granularity(granularity)
        .build()
        .expect("engine builds")
}

fn request(user: u32, k: usize, alpha: f64) -> QueryRequest {
    QueryRequest::for_user(user)
        .k(k)
        .alpha(alpha)
        .build()
        .expect("valid request")
}

#[test]
fn indexed_algorithms_agree_with_the_oracle_across_k_and_alpha() {
    let engine = build_engine(1_200, 10);
    let workload = QueryWorkload::generate(engine.dataset(), 4, 11);
    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
    ];
    for &user in &workload.users {
        for k in [1usize, 30] {
            for alpha in [0.1, 0.5, 0.9] {
                let base = request(user, k, alpha);
                let oracle = engine
                    .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                    .unwrap();
                for algorithm in algorithms {
                    let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                    assert!(
                        result.same_users_and_scores(&oracle, 1e-9),
                        "{} disagrees with the oracle (user {user}, k {k}, alpha {alpha}):\n  got      {:?}\n  expected {:?}",
                        algorithm.name(),
                        result.users(),
                        oracle.users()
                    );
                }
            }
        }
    }
}

#[test]
fn request_scenario_options_agree_across_all_algorithms() {
    // The acceptance bar: spatial filters and exclusion sets must produce
    // identical answers across (at least) EXH, TSA and AIS.  We run the
    // whole non-auxiliary line-up, plus a score cutoff, for good measure.
    let engine = build_engine(900, 10);
    let workload = QueryWorkload::generate(engine.dataset(), 4, 51);
    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
    ];
    let windows = [
        Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5)),
        Rect::new(Point::new(0.2, 0.1), Point::new(0.9, 0.8)),
    ];
    for &user in &workload.users {
        for window in windows {
            let excluded: Vec<u32> = (0..engine.dataset().user_count() as u32)
                .filter(|u| u % 7 == user % 7)
                .collect();
            let base = QueryRequest::for_user(user)
                .k(15)
                .alpha(0.4)
                .within(window)
                .exclude(excluded)
                .max_score(0.55)
                .build()
                .unwrap();
            let oracle = engine
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            // The oracle honours the filters itself.
            assert!(oracle.users().iter().all(|&u| u % 7 != user % 7));
            for entry in &oracle.ranked {
                let loc = engine.dataset().location(entry.user).unwrap();
                assert!(window.contains(loc));
                assert!(entry.score < 0.55);
            }
            for algorithm in algorithms {
                let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees under filters (user {user}, window {window}):\n  got      {:?}\n  expected {:?}",
                    algorithm.name(),
                    result.users(),
                    oracle.users()
                );
            }
        }
    }
}

#[test]
fn ch_and_cached_variants_agree_with_the_oracle() {
    // CH construction on the hub-heavy synthetic graphs is by far the most
    // expensive step of the suite (quadratic-ish witness-search blowup, as
    // the paper observes for social networks), so this test keeps the CH
    // engine small; tests/batch_query.rs covers the CH variants too.  The
    // auxiliary indexes are declared lazily: the first *-CH / cached query
    // triggers their construction.
    let dataset = DatasetConfig::gowalla_like(160).with_seed(77).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 23);
    let engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(workload.users.clone(), 100)
        .build()
        .expect("engine builds");
    assert!(engine.contraction_hierarchy().is_none());
    assert!(engine.social_cache().is_none());
    for &user in &workload.users {
        for alpha in [0.3, 0.7] {
            let base = request(user, 20, alpha);
            let oracle = engine
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            for algorithm in [
                Algorithm::SfaCh,
                Algorithm::SpaCh,
                Algorithm::TsaCh,
                Algorithm::SfaCached,
            ] {
                let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees with the oracle (user {user}, alpha {alpha})",
                    algorithm.name()
                );
            }
        }
    }
    // Both lazy indexes were built exactly when first needed.
    assert!(engine.contraction_hierarchy().is_some());
    assert!(engine.social_cache().is_some());
}

#[test]
fn different_index_granularities_do_not_change_results() {
    for granularity in [3u32, 6, 12] {
        let engine = build_engine(700, granularity);
        let workload = QueryWorkload::generate(engine.dataset(), 3, 5);
        for &user in &workload.users {
            let base = request(user, 15, 0.3);
            let oracle = engine
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            for algorithm in [Algorithm::Spa, Algorithm::Ais] {
                let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees at granularity {granularity}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn different_landmark_configurations_do_not_change_results() {
    use geosocial_ssrq::graph::LandmarkSelection;
    for (m, selection) in [
        (1usize, LandmarkSelection::Random),
        (4, LandmarkSelection::HighestDegree),
        (12, LandmarkSelection::FarthestFirst),
    ] {
        let dataset = DatasetConfig::gowalla_like(700).with_seed(77).generate();
        let engine = GeoSocialEngine::builder(dataset)
            .landmarks(m)
            .landmark_selection(selection)
            .build()
            .expect("engine builds");
        let workload = QueryWorkload::generate(engine.dataset(), 3, 9);
        for &user in &workload.users {
            let base = request(user, 10, 0.5);
            let oracle = engine
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            for algorithm in [Algorithm::Tsa, Algorithm::Ais] {
                let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} disagrees with M = {m}, selection {selection:?}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn high_degree_network_results_stay_exact() {
    let dataset = DatasetConfig::twitter_like(900).with_seed(3).generate();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let workload = QueryWorkload::generate(engine.dataset(), 3, 31);
    for &user in &workload.users {
        let base = request(user, 30, 0.3);
        let oracle = engine
            .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
            .unwrap();
        for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
            let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
            assert!(result.same_users_and_scores(&oracle, 1e-9));
        }
    }
}

#[test]
fn stats_show_ais_settles_fewer_vertices_than_single_domain_baselines() {
    // The AIS advantage comes from locality: on larger graphs the one-domain
    // approaches expand most of the network while AIS touches a small
    // neighbourhood (Figure 8(c)/(d) of the paper).  Use a graph that is
    // large enough for the effect to be visible but still quick to query.
    let engine = build_engine(12_000, 10);
    let workload = QueryWorkload::generate(engine.dataset(), 3, 13);
    let mut sfa_pops = 0usize;
    let mut spa_pops = 0usize;
    let mut ais_pops = 0usize;
    let mut session = engine.session();
    for base in workload.requests(Algorithm::Sfa) {
        sfa_pops += session.run(&base).unwrap().stats.vertex_pops;
        spa_pops += session
            .run(&base.clone().with_algorithm(Algorithm::Spa))
            .unwrap()
            .stats
            .vertex_pops;
        ais_pops += session
            .run(&base.with_algorithm(Algorithm::Ais))
            .unwrap()
            .stats
            .vertex_pops;
    }
    // The headline claim of the paper: the aggregate index search expands
    // fewer vertices than the one-domain approaches.
    assert!(
        ais_pops < sfa_pops,
        "AIS settled {ais_pops} vs SFA {sfa_pops}"
    );
    assert!(
        ais_pops < spa_pops,
        "AIS settled {ais_pops} vs SPA {spa_pops}"
    );
}
