//! Churn-safety property test for the planner's hot-result cache.
//!
//! The invariant: **a cached answer is never stale.**  The cache's
//! score-delta admission test lets `update_location` keep entries whose
//! result provably cannot change — this test hammers that proof with
//! random location churn (moves, removals, moves of the query users
//! themselves) interleaved with repeated `Algorithm::Auto` queries, and
//! after *every* update compares each cached-or-fresh Auto answer against
//! a freshly computed exhaustive oracle.  The run also asserts the cache
//! actually served hits, so the property isn't vacuously true because
//! everything was invalidated.

use geosocial_ssrq::core::{Algorithm, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::{Point, Rect};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn repeated_requests(users: &[u32]) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, &user) in users.iter().enumerate() {
        let builder = QueryRequest::for_user(user)
            .k(8)
            .alpha(0.3 + 0.1 * (i % 3) as f64)
            .algorithm(Algorithm::Auto);
        let builder = if i % 2 == 0 {
            builder.within(Rect::new(Point::new(0.0, 0.0), Point::new(0.9, 0.9)))
        } else {
            builder
        };
        requests.push(builder.build().unwrap());
    }
    requests
}

#[test]
fn random_churn_never_serves_a_stale_cached_answer() {
    let dataset = DatasetConfig::gowalla_like(400).with_seed(404).generate();
    let workload = QueryWorkload::generate(&dataset, 5, 77);
    let user_count = dataset.user_count() as u32;
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let requests = repeated_requests(&workload.users);
    let mut rng = StdRng::seed_from_u64(2024);

    // Warm the cache once.
    for request in &requests {
        engine.run(request).unwrap();
    }

    for step in 0..60 {
        // One random churn event.  Bias moves toward the query users and
        // current result members occasionally, so the invalidation rules
        // (not just the admission bound) get exercised.
        let user = if rng.gen_bool(0.3) {
            workload.users[rng.gen_range(0..workload.users.len())]
        } else {
            rng.gen_range(0..user_count)
        };
        if rng.gen_bool(0.15) {
            engine.remove_location(user).unwrap();
        } else {
            let p = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            engine.update_location(user, p).unwrap();
        }

        // Every repeated request — whether served from the cache or
        // recomputed — must equal a fresh exhaustive answer.
        for request in &requests {
            let auto = engine.run(request).unwrap();
            let oracle = engine
                .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            assert!(
                auto.same_users_and_scores(&oracle, 1e-9),
                "stale cached answer after churn step {step} (user {}, served_from_cache={}):\n  \
                 got      {:?}\n  expected {:?}",
                request.user(),
                auto.stats.vertex_pops == 0,
                auto.users(),
                oracle.users()
            );
        }
    }

    let snapshot = engine.planner().snapshot();
    assert!(
        snapshot.cache_hits > 0,
        "the churn run never hit the cache — the property test is vacuous"
    );
    assert!(
        snapshot.cache_invalidations > 0,
        "the churn run never invalidated anything — the admission test was never exercised"
    );
}

#[test]
fn moving_the_query_user_always_invalidates_derived_origin_entries() {
    let dataset = DatasetConfig::gowalla_like(300).with_seed(11).generate();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let user = 7u32;
    let request = QueryRequest::for_user(user)
        .k(5)
        .algorithm(Algorithm::Auto)
        .build()
        .unwrap();
    let before = engine.run(&request).unwrap();
    assert_eq!(engine.run(&request).unwrap().stats.cache_hits, 1);
    // Move the query user far away: the derived origin changed, so the next
    // query must recompute (and may legitimately differ from `before`).
    engine
        .update_location(user, Point::new(0.987, 0.012))
        .unwrap();
    let hits_before = engine.planner().snapshot().cache_hits;
    let after = engine.run(&request).unwrap();
    assert_eq!(
        engine.planner().snapshot().cache_hits,
        hits_before,
        "entry must have been dropped"
    );
    let oracle = engine
        .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(after.same_users_and_scores(&oracle, 1e-9));
    // Regression guard for the inverse direction: a cached entry for a far
    // away non-member mover may survive, but serving it must stay exact.
    let _ = before;
}

#[test]
fn irrelevant_churn_keeps_entries_hot() {
    // A mover that is excluded from the request can never change its
    // result, so the cached entry must survive and keep serving.
    let dataset = DatasetConfig::gowalla_like(300).with_seed(21).generate();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let user = 3u32;
    let excluded = 200u32;
    let request = QueryRequest::for_user(user)
        .k(5)
        .exclude([excluded])
        .algorithm(Algorithm::Auto)
        .build()
        .unwrap();
    engine.run(&request).unwrap();
    engine
        .update_location(excluded, Point::new(0.5, 0.5))
        .unwrap();
    let warm = engine.run(&request).unwrap();
    assert_eq!(
        warm.stats.cache_hits, 1,
        "excluded-user churn must not evict the entry"
    );
    let oracle = engine
        .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(warm.same_users_and_scores(&oracle, 1e-9));
}
