//! Property-based tests over randomly generated geo-social datasets.
//!
//! These cover the core invariants of the system:
//! * every processing algorithm returns the oracle answer on arbitrary
//!   (connected or disconnected) weighted graphs with arbitrary partial
//!   location assignments;
//! * landmark and AIS lower bounds never exceed true distances;
//! * the incremental spatial NN stream is sorted and complete.

use geosocial_ssrq::core::{
    Algorithm, EngineConfig, GeoSocialDataset, GeoSocialEngine, QueryParams,
};
use geosocial_ssrq::graph::{
    dijkstra_all, GraphBuilder, LandmarkSelection, LandmarkSet, SocialGraph,
};
use geosocial_ssrq::spatial::{Point, Rect, UniformGrid};
use proptest::prelude::*;

/// Strategy: a random undirected weighted graph of 2..=40 vertices.
fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..2.0);
        proptest::collection::vec(edge, 0..(n * 3)).prop_map(move |edges| {
            let mut builder = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    let _ = builder.add_edge(u, v, w);
                }
            }
            builder.build()
        })
    })
}

/// Strategy: a dataset pairing a random graph with partially-known
/// locations (at least one located user).
fn arb_dataset() -> impl Strategy<Value = GeoSocialDataset> {
    arb_graph().prop_flat_map(|graph| {
        let n = graph.node_count();
        let locations = proptest::collection::vec(
            proptest::option::weighted(0.8, (0.0f64..1.0, 0.0f64..1.0)),
            n,
        );
        (Just(graph), locations).prop_filter_map(
            "needs at least one located user",
            |(graph, locations)| {
                let locations: Vec<Option<Point>> = locations
                    .into_iter()
                    .map(|opt| opt.map(|(x, y)| Point::new(x, y)))
                    .collect();
                if locations.iter().all(Option::is_none) {
                    return None;
                }
                GeoSocialDataset::new(graph, locations).ok()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_match_the_oracle_on_arbitrary_datasets(
        dataset in arb_dataset(),
        user_pick in 0usize..40,
        k in 1usize..8,
        alpha in 0.05f64..0.95,
    ) {
        let user = (user_pick % dataset.user_count()) as u32;
        let config = EngineConfig { granularity: 3, num_landmarks: 3, ..EngineConfig::default() };
        let engine = GeoSocialEngine::build(dataset, config).unwrap();
        let params = QueryParams::new(user, k, alpha);
        let oracle = engine.query(Algorithm::Exhaustive, &params).unwrap();
        for algorithm in [
            Algorithm::Sfa,
            Algorithm::Spa,
            Algorithm::Tsa,
            Algorithm::TsaQc,
            Algorithm::AisBid,
            Algorithm::AisMinus,
            Algorithm::Ais,
        ] {
            let result = engine.query(algorithm, &params).unwrap();
            prop_assert!(
                result.same_users_and_scores(&oracle, 1e-9),
                "{} disagreed: got {:?}, expected {:?}",
                algorithm.name(),
                result.users(),
                oracle.users()
            );
        }
    }

    #[test]
    fn ranked_results_are_sorted_and_within_k(
        dataset in arb_dataset(),
        k in 1usize..10,
        alpha in 0.05f64..0.95,
    ) {
        let user = 0u32;
        let config = EngineConfig { granularity: 3, num_landmarks: 2, ..EngineConfig::default() };
        let engine = GeoSocialEngine::build(dataset, config).unwrap();
        let result = engine.query(Algorithm::Ais, &QueryParams::new(user, k, alpha)).unwrap();
        prop_assert!(result.ranked.len() <= k);
        for pair in result.ranked.windows(2) {
            prop_assert!(pair[0].score <= pair[1].score + 1e-12);
        }
        for entry in &result.ranked {
            prop_assert!(entry.user != user);
            prop_assert!(entry.score.is_finite());
            let expected = alpha * entry.social + (1.0 - alpha) * entry.spatial;
            prop_assert!((entry.score - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn landmark_lower_bounds_never_exceed_true_distances(
        graph in arb_graph(),
        m in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let landmarks = LandmarkSet::build(&graph, m, LandmarkSelection::FarthestFirst, seed);
        prop_assume!(landmarks.is_ok());
        let landmarks = landmarks.unwrap();
        let source = 0u32;
        let truth = dijkstra_all(&graph, source);
        for v in graph.nodes() {
            let lb = landmarks.lower_bound(source, v);
            if truth[v as usize].is_finite() {
                prop_assert!(lb <= truth[v as usize] + 1e-9);
            }
        }
    }

    #[test]
    fn incremental_nn_is_sorted_and_complete(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..120),
        qx in 0.0f64..1.0,
        qy in 0.0f64..1.0,
        side in 1u32..12,
    ) {
        let items: Vec<(u32, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i as u32, Point::new(x, y)))
            .collect();
        let grid = UniformGrid::bulk_load(Rect::unit(), side, items.clone()).unwrap();
        let query = Point::new(qx, qy);
        let stream: Vec<_> = grid.nearest_neighbors(query).collect();
        prop_assert_eq!(stream.len(), items.len());
        for pair in stream.windows(2) {
            prop_assert!(pair[0].distance <= pair[1].distance + 1e-12);
        }
        // The first reported neighbour is a true nearest neighbour.
        let best = items
            .iter()
            .map(|(_, p)| p.distance(query))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((stream[0].distance - best).abs() < 1e-12);
    }

    #[test]
    fn query_results_are_deterministic(
        dataset in arb_dataset(),
        alpha in 0.05f64..0.95,
    ) {
        let config = EngineConfig { granularity: 4, num_landmarks: 2, ..EngineConfig::default() };
        let engine = GeoSocialEngine::build(dataset, config).unwrap();
        let params = QueryParams::new(0, 5, alpha);
        let a = engine.query(Algorithm::Ais, &params).unwrap();
        let b = engine.query(Algorithm::Ais, &params).unwrap();
        prop_assert_eq!(a.ranked, b.ranked);
    }
}
