//! Randomized property tests over generated geo-social datasets.
//!
//! These cover the core invariants of the system:
//! * every processing algorithm returns the oracle answer on arbitrary
//!   (connected or disconnected) weighted graphs with arbitrary partial
//!   location assignments;
//! * landmark lower bounds never exceed true distances;
//! * the incremental spatial NN stream is sorted and complete;
//! * the resumable query drivers tolerate arbitrary `step()` suspension
//!   schedules, interleaved concurrent streams, and abandonment mid-search
//!   without ever changing an already-finalized prefix or a later query.
//!
//! The cases are drawn from a seeded RNG (no external property-testing
//! framework is available offline), so failures are reproducible: every
//! assertion message carries the case number, and the generator for case
//! `i` is fully determined by `BASE_SEED + i`.

use geosocial_ssrq::core::{
    Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest, StepOutcome,
};
use geosocial_ssrq::graph::{
    dijkstra_all, GraphBuilder, LandmarkSelection, LandmarkSet, SocialGraph,
};
use geosocial_ssrq::spatial::{Point, Rect, UniformGrid};
use rand::prelude::*;
use rand::rngs::StdRng;

const BASE_SEED: u64 = 0x5542_0001;
const CASES: u64 = 24;

/// A random undirected weighted graph of 2..=40 vertices, possibly
/// disconnected, possibly with parallel-edge attempts and isolated vertices.
fn arb_graph(rng: &mut StdRng) -> SocialGraph {
    let n = rng.gen_range(2usize..40);
    let edge_count = rng.gen_range(0..n * 3);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..edge_count {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let _ = builder.add_edge(u, v, rng.gen_range(0.05f64..2.0));
        }
    }
    builder.build()
}

/// A dataset pairing a random graph with partially-known locations (at least
/// one located user, ~80 % coverage).
fn arb_dataset(rng: &mut StdRng) -> GeoSocialDataset {
    loop {
        let graph = arb_graph(rng);
        let n = graph.node_count();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    Some(Point::new(rng.gen(), rng.gen()))
                } else {
                    None
                }
            })
            .collect();
        if locations.iter().all(Option::is_none) {
            continue;
        }
        match GeoSocialDataset::new(graph, locations) {
            Ok(dataset) => return dataset,
            Err(_) => continue,
        }
    }
}

#[test]
fn all_algorithms_match_the_oracle_on_arbitrary_datasets() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(BASE_SEED + case);
        let dataset = arb_dataset(&mut rng);
        let user = rng.gen_range(0..dataset.user_count()) as u32;
        let k = rng.gen_range(1usize..8);
        let alpha = rng.gen_range(0.05f64..0.95);
        let engine = GeoSocialEngine::builder(dataset)
            .granularity(3)
            .landmarks(3)
            .build()
            .unwrap();
        let request = QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap();
        let oracle = engine
            .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
            .unwrap();
        for algorithm in [
            Algorithm::Sfa,
            Algorithm::Spa,
            Algorithm::Tsa,
            Algorithm::TsaQc,
            Algorithm::AisBid,
            Algorithm::AisMinus,
            Algorithm::Ais,
        ] {
            let result = engine
                .run(&request.clone().with_algorithm(algorithm))
                .unwrap();
            assert!(
                result.same_users_and_scores(&oracle, 1e-9),
                "case {case}: {} disagreed (user {user}, k {k}, alpha {alpha}): got {:?}, expected {:?}",
                algorithm.name(),
                result.users(),
                oracle.users()
            );
        }
    }
}

#[test]
fn ranked_results_are_sorted_and_within_k() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0xA5A5) + case);
        let dataset = arb_dataset(&mut rng);
        let k = rng.gen_range(1usize..10);
        let alpha = rng.gen_range(0.05f64..0.95);
        let user = 0u32;
        let engine = GeoSocialEngine::builder(dataset)
            .granularity(3)
            .landmarks(2)
            .build()
            .unwrap();
        let result = engine
            .run(
                &QueryRequest::for_user(user)
                    .k(k)
                    .alpha(alpha)
                    .algorithm(Algorithm::Ais)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert!(result.ranked.len() <= k, "case {case}");
        for pair in result.ranked.windows(2) {
            assert!(pair[0].score <= pair[1].score + 1e-12, "case {case}");
        }
        for entry in &result.ranked {
            assert!(entry.user != user, "case {case}");
            assert!(entry.score.is_finite(), "case {case}");
            let expected = alpha * entry.social + (1.0 - alpha) * entry.spatial;
            assert!((entry.score - expected).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn landmark_lower_bounds_never_exceed_true_distances() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0x1B1B) + case);
        let graph = arb_graph(&mut rng);
        let m = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1_000);
        let Ok(landmarks) = LandmarkSet::build(&graph, m, LandmarkSelection::FarthestFirst, seed)
        else {
            continue;
        };
        let source = 0u32;
        let truth = dijkstra_all(&graph, source);
        for v in graph.nodes() {
            let lb = landmarks.lower_bound(source, v);
            if truth[v as usize].is_finite() {
                assert!(
                    lb <= truth[v as usize] + 1e-9,
                    "case {case}: lb {lb} exceeds d(0,{v}) = {}",
                    truth[v as usize]
                );
            }
        }
    }
}

#[test]
fn incremental_nn_is_sorted_and_complete() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0x33CC) + case);
        let count = rng.gen_range(1usize..120);
        let items: Vec<(u32, Point)> = (0..count)
            .map(|i| (i as u32, Point::new(rng.gen(), rng.gen())))
            .collect();
        let side = rng.gen_range(1u32..12);
        let grid = UniformGrid::bulk_load(Rect::unit(), side, items.clone()).unwrap();
        let query = Point::new(rng.gen(), rng.gen());
        let stream: Vec<_> = grid.nearest_neighbors(query).collect();
        assert_eq!(stream.len(), items.len(), "case {case}");
        for pair in stream.windows(2) {
            assert!(pair[0].distance <= pair[1].distance + 1e-12, "case {case}");
        }
        // The first reported neighbour is a true nearest neighbour.
        let best = items
            .iter()
            .map(|(_, p)| p.distance(query))
            .fold(f64::INFINITY, f64::min);
        assert!((stream[0].distance - best).abs() < 1e-12, "case {case}");
    }
}

/// The algorithms whose drivers are exercised by the pause/resume
/// properties (no auxiliary-index requirements).
const STREAMABLE: [Algorithm; 8] = [
    Algorithm::Exhaustive,
    Algorithm::Sfa,
    Algorithm::Spa,
    Algorithm::Tsa,
    Algorithm::TsaQc,
    Algorithm::AisBid,
    Algorithm::AisMinus,
    Algorithm::Ais,
];

#[test]
fn driver_drains_are_stable_under_arbitrary_suspension_schedules() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0x57E9) + case);
        let dataset = arb_dataset(&mut rng);
        let user = rng.gen_range(0..dataset.user_count()) as u32;
        let k = rng.gen_range(1usize..8);
        let alpha = rng.gen_range(0.05f64..0.95);
        let algorithm = STREAMABLE[rng.gen_range(0..STREAMABLE.len())];
        let engine = GeoSocialEngine::builder(dataset)
            .granularity(3)
            .landmarks(2)
            .build()
            .unwrap();
        let request = QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .algorithm(algorithm)
            .build()
            .unwrap();
        let expected = engine.run(&request).unwrap();

        // Drive the raw state machine with a random schedule: bursts of
        // steps separated by suspension points, draining at arbitrary
        // moments.  Whatever the schedule, the concatenated drains must
        // form a stable prefix of the final result.
        let mut ctx = engine.make_context();
        let mut driver = engine.begin_stream(&request, &mut ctx).unwrap();
        let mut drained: Vec<_> = Vec::new();
        let mut out = Vec::new();
        loop {
            let burst = rng.gen_range(0usize..5);
            let mut complete = false;
            for _ in 0..burst {
                if let StepOutcome::Complete = driver.step() {
                    complete = true;
                    break;
                }
            }
            if rng.gen_bool(0.7) {
                out.clear();
                driver.drain_finalized(&mut out);
                // A drain after suspension never rewrites what was already
                // drained — it only appends.
                drained.extend(out.iter().copied());
                assert_eq!(
                    drained[..],
                    expected.ranked[..drained.len()],
                    "case {case}: {} drained a non-prefix under suspension",
                    algorithm.name()
                );
            }
            if complete {
                break;
            }
        }
        let result = driver.take_result().unwrap();
        assert_eq!(
            result.ranked,
            expected.ranked,
            "case {case}: {} step-driven result diverges from run()",
            algorithm.name()
        );
        assert!(drained.len() <= result.ranked.len(), "case {case}");
    }
}

#[test]
fn interleaved_streams_on_two_sessions_yield_identical_results() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0x1E8A) + case);
        let dataset = arb_dataset(&mut rng);
        let n = dataset.user_count() as u32;
        let engine = GeoSocialEngine::builder(dataset)
            .granularity(3)
            .landmarks(2)
            .build()
            .unwrap();
        let request_a = QueryRequest::for_user(rng.gen_range(0..n))
            .k(rng.gen_range(1usize..8))
            .alpha(rng.gen_range(0.05f64..0.95))
            .algorithm(STREAMABLE[rng.gen_range(0..STREAMABLE.len())])
            .build()
            .unwrap();
        let request_b = QueryRequest::for_user(rng.gen_range(0..n))
            .k(rng.gen_range(1usize..8))
            .alpha(rng.gen_range(0.05f64..0.95))
            .algorithm(STREAMABLE[rng.gen_range(0..STREAMABLE.len())])
            .build()
            .unwrap();
        let expected_a = engine.run(&request_a).unwrap();
        let expected_b = engine.run(&request_b).unwrap();

        // Two concurrent streams on two sessions, pulled in a random
        // interleaving: each must deliver its own result untouched by the
        // other's progress.
        let mut session_a = engine.session();
        let mut session_b = engine.session();
        let mut stream_a = session_a.stream(&request_a).unwrap();
        let mut stream_b = session_b.stream(&request_b).unwrap();
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        let (mut done_a, mut done_b) = (false, false);
        while !(done_a && done_b) {
            if !done_a && (done_b || rng.gen_bool(0.5)) {
                match stream_a.next() {
                    Some(entry) => got_a.push(entry),
                    None => done_a = true,
                }
            } else if !done_b {
                match stream_b.next() {
                    Some(entry) => got_b.push(entry),
                    None => done_b = true,
                }
            }
        }
        assert_eq!(got_a, expected_a.ranked, "case {case}: stream A diverged");
        assert_eq!(got_b, expected_b.ranked, "case {case}: stream B diverged");
    }
}

#[test]
fn abandoned_streams_leave_later_queries_bit_identical() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0xAB4D) + case);
        let dataset = arb_dataset(&mut rng);
        let n = dataset.user_count() as u32;
        let engine = GeoSocialEngine::builder(dataset)
            .granularity(3)
            .landmarks(2)
            .build()
            .unwrap();
        let abandoned = QueryRequest::for_user(rng.gen_range(0..n))
            .k(rng.gen_range(1usize..8))
            .alpha(rng.gen_range(0.05f64..0.95))
            .algorithm(STREAMABLE[rng.gen_range(0..STREAMABLE.len())])
            .build()
            .unwrap();
        let followup = QueryRequest::for_user(rng.gen_range(0..n))
            .k(rng.gen_range(1usize..8))
            .alpha(rng.gen_range(0.05f64..0.95))
            .algorithm(STREAMABLE[rng.gen_range(0..STREAMABLE.len())])
            .build()
            .unwrap();
        let baseline = engine.run(&followup).unwrap();

        // Drop a stream mid-query (after a random number of pulls), then
        // reuse the same session context for the follow-up query.
        let mut session = engine.session();
        {
            let mut stream = session.stream(&abandoned).unwrap();
            for _ in 0..rng.gen_range(0usize..4) {
                if stream.next().is_none() {
                    break;
                }
            }
        }
        let result = session.run(&followup).unwrap();
        assert_eq!(
            result.ranked, baseline.ranked,
            "case {case}: an abandoned stream changed a later query"
        );
        // And an abandoned stream doesn't disturb a later *stream* either.
        {
            let mut stream = session.stream(&abandoned).unwrap();
            let _ = stream.next();
        }
        let streamed: Vec<_> = session.stream(&followup).unwrap().collect();
        assert_eq!(streamed, baseline.ranked, "case {case}");
    }
}

#[test]
fn query_results_are_deterministic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64((BASE_SEED ^ 0x77EE) + case);
        let dataset = arb_dataset(&mut rng);
        let alpha = rng.gen_range(0.05f64..0.95);
        let engine = GeoSocialEngine::builder(dataset)
            .granularity(4)
            .landmarks(2)
            .build()
            .unwrap();
        let request = QueryRequest::for_user(0)
            .k(5)
            .alpha(alpha)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let a = engine.run(&request).unwrap();
        let b = engine.run(&request).unwrap();
        assert_eq!(a.ranked, b.ranked, "case {case}");
    }
}
