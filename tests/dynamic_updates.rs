//! Integration test of the dynamic-location path: the engine's indexes must
//! stay exact while users move, appear and disappear.

use geosocial_ssrq::core::{Algorithm, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::spatial::Point;
use rand::prelude::*;
use rand::rngs::StdRng;

#[test]
fn indexes_stay_exact_under_random_location_churn() {
    let dataset = DatasetConfig::gowalla_like(1_500).with_seed(41).generate();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let workload = QueryWorkload::generate(engine.dataset(), 5, 3);
    let mut rng = StdRng::seed_from_u64(99);

    for round in 0..8 {
        // Random churn: moves, fresh appearances, disappearances.
        for _ in 0..200 {
            let user = rng.gen_range(0..engine.dataset().user_count()) as u32;
            match rng.gen_range(0..10) {
                0 => engine.remove_location(user).unwrap(),
                _ => engine
                    .update_location(user, Point::new(rng.gen(), rng.gen()))
                    .unwrap(),
            }
        }
        for &user in &workload.users {
            // A query user may itself have lost its location; both the
            // oracle and the indexed algorithms must then agree on the
            // (possibly empty) answer.
            let request = QueryRequest::for_user(user)
                .k(12)
                .alpha(0.3)
                .build()
                .unwrap();
            let oracle = engine
                .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            for algorithm in [Algorithm::Spa, Algorithm::Tsa, Algorithm::Ais] {
                let result = engine
                    .run(&request.clone().with_algorithm(algorithm))
                    .unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} diverged in round {round} for user {user}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn moving_a_result_user_far_away_changes_the_answer() {
    let dataset = DatasetConfig::gowalla_like(1_000).with_seed(8).generate();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let query_user = QueryWorkload::generate(engine.dataset(), 1, 17).users[0];
    let request = QueryRequest::for_user(query_user)
        .k(5)
        .alpha(0.2)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();

    let before = engine.run(&request).unwrap();
    assert!(!before.ranked.is_empty());
    let top = before.ranked[0].user;

    // Push the current best companion to the opposite corner of the map.
    let query_loc = engine.dataset().location(query_user).unwrap();
    let far_corner = Point::new(
        if query_loc.x < 0.5 { 1.0 } else { 0.0 },
        if query_loc.y < 0.5 { 1.0 } else { 0.0 },
    );
    engine.update_location(top, far_corner).unwrap();

    let after = engine.run(&request).unwrap();
    let oracle = engine
        .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(after.same_users_and_scores(&oracle, 1e-9));
    // The moved user's spatial distance grew, so its score must be worse (or
    // it dropped out of the top-k entirely).
    let old_score = before.ranked[0].score;
    // The user may also have dropped out of the top-k entirely.
    if let Some(entry) = after.ranked.iter().find(|r| r.user == top) {
        assert!(entry.score > old_score);
    }
}

#[test]
fn removing_every_location_yields_empty_results() {
    let dataset = DatasetConfig::gowalla_like(300).with_seed(4).generate();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let query_user = QueryWorkload::generate(engine.dataset(), 1, 2).users[0];
    let users: Vec<u32> = engine.dataset().graph().nodes().collect();
    for user in users {
        engine.remove_location(user).unwrap();
    }
    let request = QueryRequest::for_user(query_user)
        .k(10)
        .alpha(0.5)
        .build()
        .unwrap();
    for algorithm in [Algorithm::Exhaustive, Algorithm::Spa, Algorithm::Ais] {
        let result = engine
            .run(&request.clone().with_algorithm(algorithm))
            .unwrap();
        assert!(
            result.ranked.is_empty(),
            "{} returned results without any located user",
            algorithm.name()
        );
    }
}

#[test]
fn repeated_updates_of_the_same_user_are_idempotent_for_queries() {
    let dataset = DatasetConfig::gowalla_like(500).with_seed(21).generate();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let query_user = QueryWorkload::generate(engine.dataset(), 1, 6).users[0];
    let request = QueryRequest::for_user(query_user)
        .k(8)
        .alpha(0.4)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();

    // Thrash one user's location and finally park it at a fixed point; a
    // freshly built engine over the same final state must agree.
    let victim = (query_user + 1) % engine.dataset().user_count() as u32;
    for i in 0..50 {
        let p = Point::new((i as f64 * 0.019) % 1.0, (i as f64 * 0.037) % 1.0);
        engine.update_location(victim, p).unwrap();
    }
    let final_location = Point::new(0.123, 0.456);
    engine.update_location(victim, final_location).unwrap();

    let mut fresh_dataset = engine.dataset().clone();
    fresh_dataset
        .set_location(victim, Some(final_location))
        .unwrap();
    let fresh_engine = GeoSocialEngine::builder(fresh_dataset).build().unwrap();

    let incremental = engine.run(&request).unwrap();
    let rebuilt = fresh_engine.run(&request).unwrap();
    assert!(incremental.same_users_and_scores(&rebuilt, 1e-9));
}

#[test]
fn lazy_ch_and_social_cache_stay_fresh_across_location_churn() {
    // Staleness audit (regression test): the lazily-built Contraction
    // Hierarchies index and the pre-computed social neighbour cache are
    // functions of the social graph only, so location churn must never
    // invalidate them.  Exercise both orders — churn *before* the lazy
    // builds and churn *after* they exist — and require oracle agreement
    // each time.  (Kept tiny: CH construction is quadratic-ish on these
    // hub-heavy graphs.)
    use geosocial_ssrq::core::ChBuild;
    let dataset = DatasetConfig::gowalla_like(150).with_seed(77).generate();
    let workload = QueryWorkload::generate(&dataset, 2, 61);
    let mut engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(workload.users.clone(), 80)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(1717);
    let churn = |engine: &mut GeoSocialEngine, rng: &mut StdRng| {
        for _ in 0..60 {
            let user = rng.gen_range(0..engine.dataset().user_count()) as u32;
            if rng.gen_bool(0.2) {
                engine.remove_location(user).unwrap();
            } else {
                let p = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
                engine.update_location(user, p).unwrap();
            }
        }
    };
    let verify = |engine: &GeoSocialEngine, label: &str| {
        for &user in &workload.users {
            let base = QueryRequest::for_user(user)
                .k(15)
                .alpha(0.4)
                .build()
                .unwrap();
            let oracle = engine
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            for algorithm in [
                Algorithm::SfaCh,
                Algorithm::SpaCh,
                Algorithm::TsaCh,
                Algorithm::SfaCached,
            ] {
                let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                assert!(
                    result.same_users_and_scores(&oracle, 1e-9),
                    "{} went stale {label} (user {user})",
                    algorithm.name()
                );
            }
        }
    };

    // Churn first: the lazy indexes are built *after* the updates.
    churn(&mut engine, &mut rng);
    assert!(engine.contraction_hierarchy().is_none());
    verify(&engine, "when built after churn");
    assert!(engine.contraction_hierarchy().is_some());
    assert!(engine.social_cache().is_some());

    // Churn again with the indexes installed: location updates must leave
    // the graph-only indexes valid.
    churn(&mut engine, &mut rng);
    verify(&engine, "after churn on built indexes");
}
