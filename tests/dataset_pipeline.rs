//! Integration test of the dataset-generation pipeline used by the
//! experiment harness: presets, forest-fire sampling, correlation-controlled
//! locations and workloads must all compose with the query engine.

use geosocial_ssrq::core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::correlation::measure_correlation;
use geosocial_ssrq::data::{
    correlated_locations, forest_fire_sample, jaccard, Correlation, DataStatistics, DatasetConfig,
    QueryWorkload,
};

#[test]
fn table2_statistics_reflect_the_presets() {
    let gowalla = DatasetConfig::gowalla_like(2_000).generate();
    let foursquare = DatasetConfig::foursquare_like(4_000).generate();
    let g_stats = DataStatistics::compute("gowalla-like", &gowalla);
    let f_stats = DataStatistics::compute("foursquare-like", &foursquare);
    assert_eq!(g_stats.vertices, 2_000);
    assert_eq!(f_stats.vertices, 4_000);
    assert!((g_stats.average_degree - 9.7).abs() < 2.0);
    assert!((f_stats.average_degree - 9.5).abs() < 2.0);
    assert!((g_stats.location_coverage - 0.544).abs() < 0.06);
    assert!((f_stats.location_coverage - 0.603).abs() < 0.06);
    // Rows render without panicking and carry the dataset names.
    assert!(g_stats.table_row().contains("gowalla-like"));
    assert!(DataStatistics::table_header().contains("|V|"));
}

#[test]
fn forest_fire_samples_compose_with_the_engine() {
    let base = DatasetConfig::foursquare_like(3_000).generate();
    let (sampled_graph, mapping) = forest_fire_sample(base.graph(), 1_000, 0.7, 5);
    // Carry the original locations over to the sampled vertices.
    let locations = mapping
        .iter()
        .map(|&old| base.location(old))
        .collect::<Vec<_>>();
    let dataset = GeoSocialDataset::new(sampled_graph, locations).unwrap();
    assert_eq!(dataset.user_count(), 1_000);
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let workload = QueryWorkload::generate(engine.dataset(), 3, 7);
    for request in workload.requests(Algorithm::Ais) {
        let oracle = engine
            .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
            .unwrap();
        let ais = engine.run(&request).unwrap();
        assert!(ais.same_users_and_scores(&oracle, 1e-9));
    }
}

#[test]
fn correlated_datasets_behave_as_figure_14a_expects() {
    let base = DatasetConfig::foursquare_like(2_000).generate();
    let anchor = QueryWorkload::generate(&base, 1, 3).users[0];
    let mut effort = Vec::new();
    for correlation in Correlation::ALL {
        let locations = correlated_locations(base.graph(), anchor, correlation, 13);
        let r = measure_correlation(base.graph(), anchor, &locations);
        match correlation {
            Correlation::Positive => assert!(r > 0.5, "positive correlation measured {r}"),
            Correlation::Negative => assert!(r < -0.5, "negative correlation measured {r}"),
            Correlation::Independent => assert!(r.abs() < 0.25, "independent correlation {r}"),
        }
        let dataset = GeoSocialDataset::new(base.graph().clone(), locations).unwrap();
        let engine = GeoSocialEngine::builder(dataset).build().unwrap();
        let request = QueryRequest::for_user(anchor)
            .k(20)
            .alpha(0.5)
            .build()
            .unwrap();
        let oracle = engine
            .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
            .unwrap();
        let result = engine.run(&request.with_algorithm(Algorithm::Ais)).unwrap();
        assert!(result.same_users_and_scores(&oracle, 1e-9));
        effort.push((correlation, result.stats.evaluated_users.max(1)));
    }
    // Positively correlated data is the easiest case: the search needs to
    // evaluate no more users than under negative correlation (paper,
    // Figure 14(a)).
    let positive = effort[0].1;
    let negative = effort[2].1;
    assert!(
        positive <= negative,
        "positive correlation required {positive} evaluations, negative {negative}"
    );
}

#[test]
fn ssrq_results_differ_from_single_domain_topk() {
    // The Figure 7(b) insight: the SSRQ answer overlaps little with either
    // the purely social or the purely spatial top-k.
    let dataset = DatasetConfig::foursquare_like(2_500).generate();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let workload = QueryWorkload::generate(engine.dataset(), 10, 19);
    let k = 20;
    let mut avg_vs_spatial = 0.0;
    for &user in &workload.users {
        let ssrq = engine
            .run(
                &QueryRequest::for_user(user)
                    .k(k)
                    .alpha(0.5)
                    .algorithm(Algorithm::Ais)
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .users();
        let location = engine.dataset().location(user).unwrap();
        let spatial: Vec<u32> = engine
            .grid()
            .k_nearest(location, k + 1)
            .into_iter()
            .map(|n| n.id)
            .filter(|&u| u != user)
            .take(k)
            .collect();
        avg_vs_spatial += jaccard(&ssrq, &spatial);
    }
    avg_vs_spatial /= workload.len() as f64;
    assert!(
        avg_vs_spatial < 0.55,
        "SSRQ should differ substantially from spatial top-k (Jaccard {avg_vs_spatial})"
    );
}

#[test]
fn workload_parameters_round_trip_through_queries() {
    let dataset = DatasetConfig::gowalla_like(800).generate();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let workload = QueryWorkload::generate(engine.dataset(), 6, 29)
        .with_k(7)
        .with_alpha(0.9);
    for request in workload.requests(Algorithm::Ais) {
        let result = engine.run(&request).unwrap();
        assert!(result.ranked.len() <= 7);
    }
}
