//! Integration tests of the service-grade query API: builder-configured
//! engines, typed requests, strategy dispatch, sessions/streaming — and
//! every error path a service handler has to care about (typed errors, not
//! panics).

use geosocial_ssrq::core::{
    Algorithm, AlgorithmStrategy, ChBuild, CoreError, GeoSocialEngine, QueryContext, QueryRequest,
    QueryResult, SocialCachePlan,
};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::{Point, Rect};
use std::sync::Arc;

// CH construction is ~quadratic on these hub-heavy synthetic graphs, so the
// engines that may build one stay at 160 users (same scale as
// tests/algorithm_agreement.rs).
fn engine_with(ch: ChBuild) -> GeoSocialEngine {
    let dataset = DatasetConfig::gowalla_like(160).with_seed(9).generate();
    GeoSocialEngine::builder(dataset)
        .with_ch(ch)
        .build()
        .unwrap()
}

fn query_user(engine: &GeoSocialEngine) -> u32 {
    QueryWorkload::generate(engine.dataset(), 1, 5).users[0]
}

// ---------------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------------

#[test]
fn unknown_query_user_is_a_typed_error() {
    let engine = engine_with(ChBuild::Disabled);
    let ghost = engine.dataset().user_count() as u32 + 7;
    let request = QueryRequest::for_user(ghost).build().unwrap();
    assert!(matches!(
        engine.run(&request),
        Err(CoreError::UnknownUser(u)) if u == ghost
    ));
}

#[test]
fn degenerate_parameters_fail_at_request_build_time() {
    assert!(matches!(
        QueryRequest::for_user(0).k(0).build(),
        Err(CoreError::InvalidParameter(_))
    ));
    for alpha in [0.0, 1.0, -0.2, 1.7, f64::NAN] {
        assert!(
            matches!(
                QueryRequest::for_user(0).alpha(alpha).build(),
                Err(CoreError::InvalidParameter(_))
            ),
            "alpha {alpha} must be rejected"
        );
    }
}

#[test]
fn ch_strategy_without_ch_is_a_typed_error_not_a_panic() {
    let engine = engine_with(ChBuild::Disabled);
    let user = query_user(&engine);
    for algorithm in [Algorithm::SfaCh, Algorithm::SpaCh, Algorithm::TsaCh] {
        let request = QueryRequest::for_user(user)
            .algorithm(algorithm)
            .build()
            .unwrap();
        assert!(matches!(
            engine.run(&request),
            Err(CoreError::MissingIndex(_))
        ));
    }
    // Nothing was built as a side effect of the failures.
    assert!(engine.contraction_hierarchy().is_none());
}

#[test]
fn ch_strategy_with_lazy_ch_builds_and_answers() {
    let engine = engine_with(ChBuild::Lazy);
    let user = query_user(&engine);
    let request = QueryRequest::for_user(user)
        .k(8)
        .alpha(0.4)
        .algorithm(Algorithm::SfaCh)
        .build()
        .unwrap();
    let oracle = engine
        .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(engine.contraction_hierarchy().is_none());
    let got = engine.run(&request).unwrap();
    assert!(engine.contraction_hierarchy().is_some());
    assert!(got.same_users_and_scores(&oracle, 1e-9));
}

#[test]
fn social_cache_plan_gates_the_cached_algorithm() {
    let dataset = DatasetConfig::gowalla_like(250).with_seed(3).generate();
    let users = QueryWorkload::generate(&dataset, 3, 8).users;
    let without = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let request = QueryRequest::for_user(users[0])
        .k(10)
        .alpha(0.3)
        .algorithm(Algorithm::SfaCached)
        .build()
        .unwrap();
    assert!(matches!(
        without.run(&request),
        Err(CoreError::MissingIndex(_))
    ));

    let with = GeoSocialEngine::builder(dataset)
        .with_social_cache(SocialCachePlan::Lazy {
            users: users.clone(),
            t: 80,
        })
        .build()
        .unwrap();
    assert!(with.social_cache().is_none());
    let got = with.run(&request).unwrap();
    assert!(with.social_cache().is_some());
    let oracle = with
        .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(got.same_users_and_scores(&oracle, 1e-9));
}

#[test]
fn empty_window_spatial_filters_return_empty_results() {
    let engine = engine_with(ChBuild::Disabled);
    let user = query_user(&engine);
    // A window far outside the data bounds admits nobody.
    let nowhere = Rect::new(Point::new(40.0, 40.0), Point::new(41.0, 41.0));
    for algorithm in [
        Algorithm::Exhaustive,
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::Ais,
    ] {
        let request = QueryRequest::for_user(user)
            .k(10)
            .alpha(0.5)
            .within(nowhere)
            .algorithm(algorithm)
            .build()
            .unwrap();
        let result = engine.run(&request).unwrap();
        assert!(
            result.ranked.is_empty(),
            "{} returned users from an empty window",
            algorithm.name()
        );
        assert!(result.is_complete());
    }
}

#[test]
fn invalid_filter_values_fail_at_build_time() {
    assert!(QueryRequest::for_user(0).max_score(-1.0).build().is_err());
    assert!(QueryRequest::for_user(0)
        .max_score(f64::NAN)
        .build()
        .is_err());
    // `Rect::new` normalizes corners through f64::min/max (which drop NaN),
    // so build the malformed rectangle directly.
    let bad_rect = Rect {
        min: Point::new(f64::NAN, 0.0),
        max: Point::new(1.0, 1.0),
    };
    assert!(QueryRequest::for_user(0).within(bad_rect).build().is_err());
}

// ---------------------------------------------------------------------------
// Sessions and streaming
// ---------------------------------------------------------------------------

#[test]
fn session_run_matches_engine_run() {
    let engine = engine_with(ChBuild::Disabled);
    let user = query_user(&engine);
    let mut session = engine.session();
    for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
        let request = QueryRequest::for_user(user)
            .k(12)
            .alpha(0.4)
            .algorithm(algorithm)
            .build()
            .unwrap();
        let via_session = session.run(&request).unwrap();
        let via_engine = engine.run(&request).unwrap();
        assert_eq!(via_session.ranked, via_engine.ranked);
    }
    assert!(session.searches() > 0);
}

#[test]
fn streams_yield_the_full_result_in_rank_order() {
    let engine = engine_with(ChBuild::Disabled);
    let user = query_user(&engine);
    let mut session = engine.session();
    for algorithm in Algorithm::ALL {
        if algorithm.needs_ch() || algorithm.needs_social_cache() {
            continue;
        }
        let request = QueryRequest::for_user(user)
            .k(10)
            .alpha(0.3)
            .algorithm(algorithm)
            .build()
            .unwrap();
        let expected = session.run(&request).unwrap();
        let mut stream = session.stream(&request).unwrap();
        let streamed: Vec<_> = stream.by_ref().collect();
        assert_eq!(streamed, expected.ranked, "{}", algorithm.name());
        assert!(stream.finalized_early() <= expected.ranked.len());
        assert!(stream.error().is_none());
    }
}

#[test]
fn incremental_threshold_algorithms_finalize_results_before_completion() {
    let engine = engine_with(ChBuild::Disabled);
    let workload = QueryWorkload::generate(engine.dataset(), 5, 77);
    let mut session = engine.session();
    // The exhaustive oracle can never finalize early (drain-after-complete).
    for &user in &workload.users {
        let mut exh = session
            .stream(
                &QueryRequest::for_user(user)
                    .k(10)
                    .alpha(0.3)
                    .algorithm(Algorithm::Exhaustive)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let drained = exh.by_ref().count();
        assert!(drained <= 10);
        assert_eq!(exh.finalized_early(), 0);
    }
    // The incremental-threshold methods do, on a typical workload (summed
    // over several queries so a single degenerate query cannot flake).
    for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
        let mut finalized = 0usize;
        let mut total = 0usize;
        for &user in &workload.users {
            let mut stream = session
                .stream(
                    &QueryRequest::for_user(user)
                        .k(10)
                        .alpha(0.3)
                        .algorithm(algorithm)
                        .build()
                        .unwrap(),
                )
                .unwrap();
            total += stream.by_ref().count();
            finalized += stream.finalized_early();
        }
        assert!(
            finalized > 0,
            "{} never finalized a result before completion ({total} results)",
            algorithm.name()
        );
    }
}

#[test]
fn exhausted_streams_finalize_their_entire_result() {
    // When an algorithm's candidate stream runs dry (disconnected
    // component, every located user scanned, drained search heap), no
    // future candidate exists, so *every* entry must count as finalized —
    // consistently across the threshold algorithms.
    use geosocial_ssrq::graph::GraphBuilder;
    let graph =
        GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, 0.5), (3, 4, 1.0), (4, 5, 0.5)])
            .unwrap();
    let locations = vec![Some(Point::new(0.1, 0.1)); 6];
    let dataset = geosocial_ssrq::core::GeoSocialDataset::new(graph, locations).unwrap();
    let engine = GeoSocialEngine::builder(dataset)
        .granularity(2)
        .landmarks(2)
        .build()
        .unwrap();
    let mut session = engine.session();
    // k exceeds the query user's component: every stream exhausts before
    // the threshold condition can hold.
    for algorithm in [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::Ais,
    ] {
        let mut stream = session
            .stream(
                &QueryRequest::for_user(0)
                    .k(5)
                    .alpha(0.5)
                    .algorithm(algorithm)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let drained = stream.by_ref().count();
        assert_eq!(drained, 2, "{}", algorithm.name());
        assert_eq!(
            stream.finalized_early(),
            drained,
            "{} must finalize its whole result when the stream exhausts",
            algorithm.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Custom strategies from outside the core crate
// ---------------------------------------------------------------------------

/// A downstream strategy: delegates to the built-in AIS search but clamps
/// `k` (a service-side result cap) — exactly the kind of wrapper the
/// registry exists for.
struct CappedAis {
    cap: usize,
}

impl AlgorithmStrategy for CappedAis {
    fn name(&self) -> &str {
        "AIS-CAPPED"
    }

    fn execute(
        &self,
        engine: &GeoSocialEngine,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        let capped = QueryRequest::for_user(request.user())
            .k(request.k().min(self.cap))
            .alpha(request.alpha())
            .algorithm(Algorithm::Ais)
            .build()?;
        engine.run_with(&capped, ctx)
    }
}

#[test]
fn downstream_crates_can_register_custom_strategies() {
    let mut engine = engine_with(ChBuild::Disabled);
    let user = query_user(&engine);
    engine.register_strategy(Arc::new(CappedAis { cap: 3 }));
    let request = QueryRequest::for_user(user)
        .k(25)
        .alpha(0.4)
        .algorithm("AIS-CAPPED")
        .build()
        .unwrap();
    let result = engine.run(&request).unwrap();
    assert_eq!(result.ranked.len(), 3);
    let reference = engine
        .run(&request.clone().with_algorithm(Algorithm::Ais))
        .unwrap();
    assert_eq!(&reference.ranked[..3], &result.ranked[..]);
}
