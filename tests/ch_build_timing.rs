//! Manual timing probe for `ContractionHierarchy::build` on the 160-user
//! test graph (the scale `tests/algorithm_agreement.rs` uses for the `*-CH`
//! variants).  Ignored by default; run with
//!
//! ```sh
//! cargo test --release --test ch_build_timing -- --ignored --nocapture
//! ```

use geosocial_ssrq::data::DatasetConfig;
use geosocial_ssrq::graph::{ChParams, ContractionHierarchy};
use std::time::Instant;

#[test]
#[ignore = "timing probe, run manually with --nocapture"]
fn ch_build_timing_on_160_user_graph() {
    let dataset = DatasetConfig::gowalla_like(160).with_seed(77).generate();
    // Warm-up build, then timed builds.
    let _ = ContractionHierarchy::build(dataset.graph(), ChParams::default());
    let rounds = 5;
    let start = Instant::now();
    let mut shortcuts = 0;
    for _ in 0..rounds {
        let ch = ContractionHierarchy::build(dataset.graph(), ChParams::default());
        shortcuts = ch.shortcut_count();
    }
    let avg = start.elapsed() / rounds;
    println!(
        "CH build on gowalla_like(160): avg {avg:?} over {rounds} rounds, {shortcuts} shortcuts"
    );
}
