//! Regression suite for the memory-lean substrate: the sparse
//! (occupancy-aware) AIS layout and the compressed CSR adjacency must be
//! pure storage changes — every answer stays bit-identical to the oracle
//! and to the standard layout, under every request filter, and the indexes
//! of empty or fully-migrated engines must actually be cheap.

use geosocial_ssrq::core::{Algorithm, ChBuild, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::graph::CsrLayout;
use geosocial_ssrq::prelude::{Partitioning, Point, Rect, ShardedEngine};

/// The empty-index byte ceiling of the sparse AIS layout (the pre-refactor
/// dense layout cost ~2 MiB regardless of residency).
const EMPTY_AIS_BUDGET: usize = 16 * 1024;

/// Every processing algorithm, the exhaustive oracle included.
const ALL_TWELVE: [Algorithm; 12] = [
    Algorithm::Exhaustive,
    Algorithm::Sfa,
    Algorithm::Spa,
    Algorithm::Tsa,
    Algorithm::TsaQc,
    Algorithm::AisBid,
    Algorithm::AisMinus,
    Algorithm::Ais,
    Algorithm::SfaCh,
    Algorithm::SpaCh,
    Algorithm::TsaCh,
    Algorithm::SfaCached,
];

#[test]
fn all_twelve_algorithms_agree_under_filters_on_the_sparse_ais_index() {
    // Small graph so the CH baselines stay affordable (their witness search
    // blows up on hub-heavy synthetic networks).
    let dataset = DatasetConfig::gowalla_like(160).with_seed(77).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 29);
    let engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(workload.users.clone(), 100)
        .build()
        .expect("engine builds");
    let window = Rect::new(Point::new(0.05, 0.05), Point::new(0.9, 0.95));
    for &user in &workload.users {
        let excluded: Vec<u32> = (0..engine.dataset().user_count() as u32)
            .filter(|u| u % 5 == user % 5)
            .collect();
        let base = QueryRequest::for_user(user)
            .k(12)
            .alpha(0.4)
            .within(window)
            .exclude(excluded)
            .max_score(0.6)
            .build()
            .expect("valid request");
        let oracle = engine
            .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
            .expect("oracle runs");
        for algorithm in ALL_TWELVE {
            let result = engine
                .run(&base.clone().with_algorithm(algorithm))
                .expect("algorithm runs");
            assert!(
                result.same_users_and_scores(&oracle, 1e-9),
                "{} disagrees with the oracle under filters (user {user}):\n  got      {:?}\n  expected {:?}",
                algorithm.name(),
                result.users(),
                oracle.users()
            );
        }
    }
}

#[test]
fn compressed_layout_answers_are_bit_identical_through_the_full_engine() {
    // Same topology and locations, two physical graph layouts: every ranked
    // score must be exactly equal (==, not within-tolerance) — the layout
    // is storage, not semantics.
    let config = DatasetConfig::gowalla_like(700).with_seed(9);
    let graph = config.generate_graph();
    let locations = config.generate_social_locations(&graph);
    let standard = GeoSocialDataset::new(graph.clone(), locations.clone()).unwrap();
    let compressed =
        GeoSocialDataset::new(graph.with_layout(CsrLayout::Compressed), locations).unwrap();
    let a = GeoSocialEngine::builder(standard).build().unwrap();
    let b = GeoSocialEngine::builder(compressed).build().unwrap();
    let workload = QueryWorkload::generate(a.dataset(), 4, 41);
    for &user in &workload.users {
        for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
            let request = QueryRequest::for_user(user)
                .k(15)
                .alpha(0.3)
                .algorithm(algorithm)
                .build()
                .unwrap();
            let left = a.run(&request).unwrap();
            let right = b.run(&request).unwrap();
            assert_eq!(
                left.users(),
                right.users(),
                "{} user lists diverge across layouts",
                algorithm.name()
            );
            for (l, r) in left.ranked.iter().zip(&right.ranked) {
                assert!(
                    l.score == r.score,
                    "{} score for user {} differs across layouts: {} vs {}",
                    algorithm.name(),
                    l.user,
                    l.score,
                    r.score
                );
            }
        }
    }
}

#[test]
fn fully_migrated_engine_shrinks_and_keeps_answering_exactly() {
    let dataset = DatasetConfig::gowalla_like(400).with_seed(5).generate();
    let users: Vec<u32> = (0..dataset.user_count() as u32).collect();
    let mut engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let populated = engine.memory_breakdown();
    assert!(populated.ais_occupied_cells > 0);

    // Migrate every resident away, as a shard drain would.
    for &user in &users {
        engine.remove_location(user).expect("removal succeeds");
    }
    let drained = engine.memory_breakdown();
    assert_eq!(drained.ais_occupied_cells, 0);
    assert!(
        drained.ais_bytes <= EMPTY_AIS_BUDGET,
        "drained AIS index still costs {} bytes",
        drained.ais_bytes
    );
    assert_eq!(drained.ais_occupancy_ratio(), 0.0);

    // With nobody located, every algorithm must agree on the empty answer.
    let query_user = users[7];
    let base = QueryRequest::for_user(query_user)
        .k(10)
        .alpha(0.3)
        .origin(Point::new(0.5, 0.5))
        .build()
        .unwrap();
    let oracle = engine
        .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(oracle.ranked.is_empty());
    for algorithm in [Algorithm::Spa, Algorithm::Tsa, Algorithm::Ais] {
        let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
        assert!(result.same_users_and_scores(&oracle, 1e-9));
    }

    // Re-populating recycles the vacated slots and restores exact answers.
    for &user in users.iter().take(60) {
        let x = 0.1 + (user as f64 % 9.0) / 10.0;
        let y = 0.1 + (user as f64 % 7.0) / 8.0;
        engine
            .update_location(user, Point::new(x, y))
            .expect("re-insert succeeds");
    }
    let repopulated = engine.memory_breakdown();
    assert!(repopulated.ais_occupied_cells > 0);
    let oracle = engine
        .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
        .unwrap();
    assert!(!oracle.ranked.is_empty());
    for algorithm in [Algorithm::Spa, Algorithm::Tsa, Algorithm::Ais] {
        let result = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
        assert!(
            result.same_users_and_scores(&oracle, 1e-9),
            "{} disagrees after drain + re-populate",
            algorithm.name()
        );
    }
}

#[test]
fn restrict_locations_to_nothing_builds_a_featherweight_engine() {
    let dataset = DatasetConfig::gowalla_like(500).with_seed(13).generate();
    let empty = dataset.restrict_locations(|_| false);
    assert!(empty.shares_core_with(&dataset));
    assert_eq!(empty.located_user_count(), 0);

    let engine = GeoSocialEngine::builder(empty)
        .build()
        .expect("engine builds");
    let memory = engine.memory_breakdown();
    assert_eq!(memory.ais_occupied_cells, 0);
    assert!(
        memory.ais_bytes <= EMPTY_AIS_BUDGET,
        "empty-view AIS index costs {} bytes",
        memory.ais_bytes
    );
    assert!(
        memory.grid_bytes <= EMPTY_AIS_BUDGET,
        "empty-view grid costs {} bytes",
        memory.grid_bytes
    );

    let request = QueryRequest::for_user(3)
        .k(5)
        .alpha(0.5)
        .origin(Point::new(0.4, 0.6))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let result = engine.run(&request).expect("query over empty view runs");
    assert!(result.ranked.is_empty());
}

#[test]
fn zero_resident_shards_stay_cheap_at_high_shard_counts() {
    // Confine all locations to one tight cluster: the spatial partitioner
    // balances *occupied* cells across shards, so with fewer occupied cells
    // than shards several shards must end up without residents.
    let base = DatasetConfig::gowalla_like(600).with_seed(21).generate();
    let locations: Vec<(u32, Point)> = base.located_users().collect();
    // Center the keep-window on the densest spot so enough users survive.
    let half = 0.05;
    let (center, _) = locations
        .iter()
        .map(|&(_, c)| {
            let inside = locations
                .iter()
                .filter(|&&(_, p)| (p.x - c.x).abs() <= half && (p.y - c.y).abs() <= half)
                .count();
            (c, inside)
        })
        .max_by_key(|&(_, inside)| inside)
        .unwrap();
    let window = Rect::new(
        Point::new(center.x - half, center.y - half),
        Point::new(center.x + half, center.y + half),
    );
    let kept: Vec<u32> = locations
        .iter()
        .filter(|&&(_, p)| window.contains(p))
        .map(|&(u, _)| u)
        .collect();
    assert!(kept.len() >= 10, "cluster too thin: {} users", kept.len());
    let dataset = base.restrict_locations(|u| kept.contains(&u));
    assert_eq!(dataset.located_user_count(), kept.len());

    let single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    for shards in [12usize, 24] {
        let engine = ShardedEngine::builder(dataset.clone())
            .shards(shards)
            .partitioning(Partitioning::SpatialGrid { cells_per_axis: 16 })
            .build()
            .expect("sharded engine builds");
        let occupancy = engine.occupancy();
        assert_eq!(occupancy.iter().sum::<usize>(), kept.len());
        let empty_shards: Vec<usize> = (0..engine.shard_count())
            .filter(|&s| occupancy[s] == 0)
            .collect();
        assert!(
            !empty_shards.is_empty(),
            "expected zero-resident shards at {shards} shards, occupancy {occupancy:?}"
        );
        for &s in &empty_shards {
            let memory = engine.shard_engine(s).memory_breakdown();
            assert_eq!(memory.ais_occupied_cells, 0, "shard {s} occupancy");
            assert!(
                memory.ais_bytes <= EMPTY_AIS_BUDGET,
                "zero-resident shard {s} AIS index costs {} bytes",
                memory.ais_bytes
            );
            assert!(
                memory.grid_bytes <= EMPTY_AIS_BUDGET,
                "zero-resident shard {s} SPA grid costs {} bytes",
                memory.grid_bytes
            );
        }
        // Cross-shard answers stay exact even though most shards are thin
        // or empty.
        for &user in kept.iter().take(4) {
            let request = QueryRequest::for_user(user)
                .k(10)
                .alpha(0.3)
                .algorithm(Algorithm::Ais)
                .build()
                .unwrap();
            let sharded = engine.run(&request).expect("sharded query runs");
            let reference = single.run(&request).expect("single query runs");
            assert!(
                sharded.same_users_and_scores(&reference, 1e-9),
                "sharded answer diverges at {shards} shards (user {user})"
            );
        }
    }
}
