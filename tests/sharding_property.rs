//! Property test: a `ShardedEngine` under random location churn (updates,
//! removals, re-appearances — including user migration across spatial
//! partition boundaries) must keep answering every query identically to a
//! single `GeoSocialEngine` receiving the same churn, for both partitioning
//! policies, across interleaved rebalance passes.

use geosocial_ssrq::core::{Algorithm, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::Point;
use geosocial_ssrq::shard::{Partitioning, ShardedEngine};
use rand::prelude::*;
use rand::rngs::StdRng;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Exhaustive,
    Algorithm::Sfa,
    Algorithm::Tsa,
    Algorithm::Ais,
];

fn assert_agreement(sharded: &ShardedEngine, single: &GeoSocialEngine, users: &[u32], label: &str) {
    for &user in users {
        for algorithm in ALGORITHMS {
            let request = QueryRequest::for_user(user)
                .k(12)
                .alpha(0.4)
                .algorithm(algorithm)
                .build()
                .unwrap();
            let expected = single.run(&request).unwrap();
            let got = sharded.run(&request).unwrap();
            assert_eq!(
                got.ranked,
                expected.ranked,
                "{} diverged {label} (user {user})",
                algorithm.name()
            );
        }
    }
}

fn churn_round(
    rng: &mut StdRng,
    sharded: &mut ShardedEngine,
    single: &mut GeoSocialEngine,
    ops: usize,
) -> usize {
    let n = sharded.user_count() as u32;
    let mut migrations = 0usize;
    for _ in 0..ops {
        let user = rng.gen_range(0..n);
        if rng.gen_bool(0.15) {
            sharded.remove_location(user).unwrap();
            single.remove_location(user).unwrap();
        } else {
            // Uniform over the domain: most moves cross a tiling cell
            // boundary, so the spatial policy migrates users routinely.
            let p = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let before = sharded.owner_of(user).unwrap();
            sharded.update_location(user, p).unwrap();
            single.update_location(user, p).unwrap();
            if sharded.owner_of(user).unwrap() != before {
                migrations += 1;
            }
        }
    }
    migrations
}

fn run_property(policy: Partitioning, shards: usize, seed: u64) -> usize {
    let dataset = DatasetConfig::gowalla_like(450).with_seed(321).generate();
    let workload = QueryWorkload::generate(&dataset, 3, seed);
    let mut single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let mut sharded = ShardedEngine::builder(dataset)
        .shards(shards)
        .partitioning(policy)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut migrations = 0usize;
    assert_agreement(&sharded, &single, &workload.users, "before any churn");
    for round in 0..4 {
        migrations += churn_round(&mut rng, &mut sharded, &mut single, 40);
        assert_agreement(
            &sharded,
            &single,
            &workload.users,
            &format!("after churn round {round} ({policy:?})"),
        );
        if round == 2 {
            let report = sharded.rebalance();
            assert_eq!(
                report.occupancy.iter().sum::<usize>(),
                single.dataset().located_user_count(),
                "rebalance must not lose residents"
            );
            assert_agreement(
                &sharded,
                &single,
                &workload.users,
                &format!("after rebalance ({policy:?})"),
            );
        }
    }
    // Location state ends identical on both sides.
    for user in 0..sharded.user_count() as u32 {
        assert_eq!(sharded.location(user), single.dataset().location(user));
    }
    migrations
}

#[test]
fn hash_partitioning_survives_random_churn() {
    let migrations = run_property(Partitioning::UserHash, 3, 0xC0FFEE);
    // Hash ownership follows the user id, never the location.
    assert_eq!(migrations, 0);
}

#[test]
fn spatial_partitioning_survives_random_churn_with_migration() {
    let migrations = run_property(Partitioning::SpatialGrid { cells_per_axis: 6 }, 3, 0xBEEF);
    assert!(
        migrations > 0,
        "uniform churn should push users across cell boundaries"
    );
}

#[test]
fn rebalance_repairs_heavy_skew() {
    // Start balanced, then crowd everyone into one corner: the spatial
    // partition skews badly; a rebalance pass spreads the hot cells again.
    let dataset = DatasetConfig::gowalla_like(400).with_seed(5).generate();
    let mut single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let mut sharded = ShardedEngine::builder(dataset)
        .shards(4)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 8 })
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let n = sharded.user_count() as u32;
    for user in 0..n {
        if user % 2 == 0 {
            let p = Point::new(rng.gen_range(0.0..0.05), rng.gen_range(0.0..0.05));
            sharded.update_location(user, p).unwrap();
            single.update_location(user, p).unwrap();
        }
    }
    let before = sharded.occupancy();
    let spread = |occ: &[usize]| occ.iter().max().unwrap() - occ.iter().min().unwrap();
    let report = sharded.rebalance();
    assert!(
        spread(&report.occupancy) <= spread(&before),
        "rebalance should not worsen the occupancy spread: {before:?} -> {:?}",
        report.occupancy
    );
    // Exactness is preserved through the mass migration.
    let workload = QueryWorkload::generate(single.dataset(), 3, 44);
    assert_agreement(&sharded, &single, &workload.users, "after skew rebalance");
}
