//! Adaptive planner exactness: `Algorithm::Auto` must be a pure
//! *performance* decision — whatever the planner picks, the answer must be
//! the one every concrete algorithm computes.
//!
//! The pin knob steers `Auto` through each of the twelve candidates under
//! every request scenario (plain, spatial window, exclusion set, score
//! cutoff): for single-mechanism paths the ranked vector must be
//! `assert_eq!`-identical to running the algorithm directly, for the
//! `*-CH` / `AIS-Cache` paths (whose scores are recombined from different
//! distance modules) `same_users_and_scores` against the oracle.  Unpinned
//! adaptive runs, streams, sharded scatters and hot-cache hits are all
//! checked against the same bar.

use geosocial_ssrq::core::{
    Algorithm, ChBuild, ChoiceReason, GeoSocialEngine, PlannerConfig, QueryPlanner, QueryRequest,
    SignalBucket,
};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::{Point, Rect};
use geosocial_ssrq::shard::{Partitioning, ShardedEngine};

/// The four request scenarios of the agreement sweep.
fn scenarios(user: u32) -> Vec<(&'static str, QueryRequest)> {
    let plain = QueryRequest::for_user(user).k(12).alpha(0.4);
    vec![
        ("plain", plain.clone().build().unwrap()),
        (
            "rect",
            plain
                .clone()
                .within(Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.7)))
                .build()
                .unwrap(),
        ),
        (
            "exclusion",
            plain
                .clone()
                .exclude((0..40u32).filter(|u| *u != user))
                .build()
                .unwrap(),
        ),
        ("max_score", plain.max_score(0.6).build().unwrap()),
    ]
}

#[test]
fn pinned_auto_matches_every_single_mechanism_algorithm_exactly() {
    let dataset = DatasetConfig::gowalla_like(800).with_seed(101).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 7);
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    // Identical repeated requests must hit the concrete algorithms, not the
    // hot cache, for the ranked vectors to be freshly computed every time.
    engine.planner().set_cache_capacity(0);
    let algorithms = [
        Algorithm::Exhaustive,
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
    ];
    for &user in &workload.users {
        for (label, base) in scenarios(user) {
            for algorithm in algorithms {
                let fixed = engine.run(&base.clone().with_algorithm(algorithm)).unwrap();
                engine.planner().pin(Some(algorithm));
                let auto = engine
                    .run(&base.clone().with_algorithm(Algorithm::Auto))
                    .unwrap();
                // Same delegate, same engine, same request: the ranked
                // vector (users, scores, score components) is bit-identical.
                assert_eq!(
                    auto.ranked,
                    fixed.ranked,
                    "Auto pinned to {} diverged (user {user}, scenario {label})",
                    algorithm.name()
                );
            }
        }
    }
    let snapshot = engine.planner().snapshot();
    assert!(snapshot.decisions() > 0);
    assert!(snapshot
        .choices
        .iter()
        .all(|(_, reason, _)| *reason == "pinned"));
}

#[test]
fn pinned_auto_agrees_for_index_backed_algorithms() {
    // CH construction on hub-heavy synthetic graphs is expensive, so the
    // CH-capable engine stays small (mirrors tests/algorithm_agreement.rs).
    let dataset = DatasetConfig::gowalla_like(160).with_seed(77).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 23);
    let engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(workload.users.clone(), 100)
        .build()
        .unwrap();
    engine.planner().set_cache_capacity(0);
    for &user in &workload.users {
        for (label, base) in scenarios(user) {
            let oracle = engine
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            for algorithm in [
                Algorithm::SfaCh,
                Algorithm::SpaCh,
                Algorithm::TsaCh,
                Algorithm::SfaCached,
            ] {
                engine.planner().pin(Some(algorithm));
                let auto = engine
                    .run(&base.clone().with_algorithm(Algorithm::Auto))
                    .unwrap();
                assert!(
                    auto.same_users_and_scores(&oracle, 1e-9),
                    "Auto pinned to {} disagrees with the oracle (user {user}, scenario {label})",
                    algorithm.name()
                );
            }
        }
    }
    // The pinned CH/cache choices built the lazy indexes on demand.
    assert!(engine.contraction_hierarchy().is_some());
    assert!(engine.social_cache().is_some());
}

#[test]
fn adaptive_auto_always_returns_the_exact_answer() {
    let dataset = DatasetConfig::gowalla_like(700).with_seed(55).generate();
    let workload = QueryWorkload::generate(&dataset, 4, 19);
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    engine.planner().set_cache_capacity(0);
    let mut session = engine.session();
    for &user in &workload.users {
        for (label, base) in scenarios(user) {
            let oracle = session
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            // Drive the same request through Auto repeatedly so the planner
            // walks its whole explore-then-exploit arc.
            for round in 0..10 {
                let auto = session
                    .run(&base.clone().with_algorithm(Algorithm::Auto))
                    .unwrap();
                assert!(
                    auto.same_users_and_scores(&oracle, 1e-9),
                    "adaptive Auto disagrees (user {user}, scenario {label}, round {round})"
                );
            }
        }
    }
    let snapshot = engine.planner().snapshot();
    assert!(snapshot.decisions() >= 160);
    // The oracle is not an adaptive candidate; everything the planner chose
    // was a real (indexed or index-free) method.
    assert_eq!(snapshot.choices_for(Algorithm::Exhaustive), 0);
    // The feedback loop engaged: after the one-shot exploration of each
    // bucket the EWMA model made choices of its own.
    assert!(snapshot
        .choices
        .iter()
        .any(|(_, reason, _)| *reason == "feedback"));
    assert!(snapshot
        .choices
        .iter()
        .any(|(_, reason, _)| *reason == "explore" || *reason == "heuristic"));
}

#[test]
fn auto_streams_exactly_like_its_eager_execution() {
    let dataset = DatasetConfig::gowalla_like(500).with_seed(31).generate();
    let workload = QueryWorkload::generate(&dataset, 4, 3);
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    engine.planner().set_cache_capacity(0);
    for &user in &workload.users {
        let base = QueryRequest::for_user(user)
            .k(15)
            .alpha(0.3)
            .algorithm(Algorithm::Auto)
            .build()
            .unwrap();
        let eager = engine.run(&base).unwrap();
        let mut ctx = engine.make_context();
        let streamed: Vec<_> = engine.stream_with(&base, &mut ctx).unwrap().collect();
        assert_eq!(
            streamed
                .iter()
                .map(|e| (e.user, e.score))
                .collect::<Vec<_>>(),
            eager
                .ranked
                .iter()
                .map(|e| (e.user, e.score))
                .collect::<Vec<_>>(),
            "streamed Auto diverged from eager Auto (user {user})"
        );
    }
}

#[test]
fn hot_cache_serves_repeats_and_survives_resizing() {
    let dataset = DatasetConfig::gowalla_like(600).with_seed(13).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 29);
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let mut session = engine.session();
    for &user in &workload.users {
        let base = QueryRequest::for_user(user)
            .k(10)
            .alpha(0.5)
            .algorithm(Algorithm::Auto)
            .build()
            .unwrap();
        let cold = session.run(&base).unwrap();
        let warm = session.run(&base).unwrap();
        // A cache hit replaces the stats wholesale: no search work at all.
        assert_eq!(warm.stats.cache_hits, 1, "second identical query must hit");
        assert_eq!(warm.stats.vertex_pops, 0);
        assert_eq!(warm.ranked, cold.ranked);
        // Streamed repeats hit the cache too.
        let mut ctx = engine.make_context();
        let streamed: Vec<_> = engine.stream_with(&base, &mut ctx).unwrap().collect();
        assert_eq!(streamed.len(), cold.ranked.len());
    }
    let snapshot = engine.planner().snapshot();
    assert!(snapshot.cache_hits >= 2 * workload.users.len() as u64);
    assert!(snapshot.cache_len > 0);
    // Shrinking to zero empties the cache and disables admission.
    engine.planner().set_cache_capacity(0);
    assert_eq!(engine.planner().cache_len(), 0);
    let base = QueryRequest::for_user(workload.users[0])
        .k(10)
        .alpha(0.5)
        .algorithm(Algorithm::Auto)
        .build()
        .unwrap();
    session.run(&base).unwrap();
    let hits_before = engine.planner().snapshot().cache_hits;
    session.run(&base).unwrap();
    assert_eq!(
        engine.planner().snapshot().cache_hits,
        hits_before,
        "disabled cache must not serve"
    );
}

#[test]
fn cloned_engines_get_independent_planners() {
    let dataset = DatasetConfig::gowalla_like(300).with_seed(2).generate();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let base = QueryRequest::for_user(5)
        .k(5)
        .algorithm(Algorithm::Auto)
        .build()
        .unwrap();
    engine.run(&base).unwrap();
    engine.run(&base).unwrap();
    assert!(engine.planner().snapshot().cache_hits > 0);
    let clone = engine.clone();
    // The clone neither shares decision history nor cached results.
    let snapshot = clone.planner().snapshot();
    assert_eq!(snapshot.decisions(), 0);
    assert_eq!(snapshot.cache_len, 0);
    clone.run(&base).unwrap();
    let after = clone.planner().snapshot();
    // The clone's first query ran fresh — no hot-cache hit was possible.
    assert_eq!(after.cache_hits, 0);
    assert_eq!(after.decisions(), 1);
    // ...and it never bled into the original planner's counters (the
    // original made one decision — its second run was a cache hit, which
    // never reaches the choice logic).
    assert_eq!(engine.planner().snapshot().decisions(), 1);
}

#[test]
fn sharded_auto_agrees_with_the_single_engine_oracle() {
    let dataset = DatasetConfig::gowalla_like(600).with_seed(4242).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 17);
    let single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    for policy in [
        Partitioning::UserHash,
        Partitioning::SpatialGrid { cells_per_axis: 8 },
    ] {
        let sharded = ShardedEngine::builder(dataset.clone())
            .shards(3)
            .partitioning(policy)
            .build()
            .unwrap();
        for &user in &workload.users {
            let base = QueryRequest::for_user(user)
                .k(20)
                .alpha(0.3)
                .algorithm(Algorithm::Auto)
                .build()
                .unwrap();
            let reference = single
                .run(&base.clone().with_algorithm(Algorithm::Exhaustive))
                .unwrap();
            // Run the scatter repeatedly: per-shard planners explore
            // different delegates across rounds and repeats may come from
            // per-shard hot caches — the merged answer must never move.
            for round in 0..4 {
                let result = sharded.run(&base).unwrap();
                assert!(
                    result.same_users_and_scores(&reference, 1e-9),
                    "sharded Auto diverged (policy {policy:?}, user {user}, round {round})"
                );
            }
        }
    }
}

#[test]
fn planner_unit_behaviour_pins_explores_and_converges() {
    // Direct QueryPlanner checks that need no engine-level sweep.
    let planner = QueryPlanner::new(PlannerConfig {
        cache_capacity: 4,
        ..PlannerConfig::default()
    });
    assert_eq!(planner.config().cache_capacity, 4);
    assert_eq!(planner.cache_len(), 0);
    assert_eq!(planner.snapshot().decisions(), 0);
    assert_eq!(ChoiceReason::Pinned.as_str(), "pinned");
    assert_eq!(ChoiceReason::Feedback.as_str(), "feedback");
    // Signal buckets are value types usable as map keys.
    let bucket = SignalBucket {
        k: 1,
        rect: 0,
        degree: 2,
    };
    assert_eq!(bucket, bucket);

    let dataset = DatasetConfig::gowalla_like(250).with_seed(9).generate();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    // No CH / social cache installed: the candidate set is the seven
    // index-free methods, oracle excluded.
    let candidates = QueryPlanner::candidates(&engine);
    assert_eq!(candidates.len(), 7);
    assert!(!candidates.contains(&Algorithm::Exhaustive));
    assert!(!candidates.contains(&Algorithm::SfaCh));
    assert!(!candidates.contains(&Algorithm::SfaCached));

    let request = QueryRequest::for_user(3).k(5).build().unwrap();
    let (_, first_reason, _) = engine.planner().choose(&engine, &request);
    assert_eq!(first_reason, ChoiceReason::Heuristic);
    // The next seven choices sample the untried candidates, then the EWMA
    // takes over (all with zero recorded work, so ties resolve by order —
    // any candidate is fine, the reason is what we assert).
    let mut seen = std::collections::HashSet::new();
    seen.insert(engine.planner().snapshot().choices[0].0.clone());
    // The heuristic pick recorded no feedback, so the explore pass still
    // has all seven candidates to sample.
    for _ in 0..7 {
        let (algorithm, reason, bucket) = engine.planner().choose(&engine, &request);
        assert_eq!(reason, ChoiceReason::Explore);
        engine.planner().record_feedback(
            bucket,
            algorithm,
            &geosocial_ssrq::core::QueryStats::default(),
        );
        seen.insert(algorithm.name().to_owned());
    }
    let (_, reason, _) = engine.planner().choose(&engine, &request);
    assert_eq!(reason, ChoiceReason::Feedback);

    engine.planner().pin(Some(Algorithm::Sfa));
    let (algorithm, reason, _) = engine.planner().choose(&engine, &request);
    assert_eq!((algorithm, reason), (Algorithm::Sfa, ChoiceReason::Pinned));
    engine.planner().pin(None);
}

#[test]
fn pinning_an_index_backed_algorithm_without_its_index_errors() {
    let dataset = DatasetConfig::gowalla_like(200).with_seed(8).generate();
    // CH disabled entirely: a pinned *-CH choice must surface MissingIndex,
    // not panic or silently fall back.
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    engine.planner().pin(Some(Algorithm::SfaCh));
    let request = QueryRequest::for_user(1)
        .k(5)
        .algorithm(Algorithm::Auto)
        .build()
        .unwrap();
    assert!(engine.run(&request).is_err());
    engine.planner().pin(None);
    assert!(engine.run(&request).is_ok());
}
