//! Integration tests of the parallel batch-query path and the reusable
//! search-scratch substrate:
//!
//! * `query_batch` must return exactly the results of sequential `query`
//!   execution, for every algorithm, at any thread count;
//! * reusing one `QueryContext` across queries must never change an answer
//!   (the stale-scratch regression guard).
//!
//! Contraction Hierarchies construction is expensive on the hub-heavy
//! synthetic graphs (the paper makes the same observation about CH on
//! social networks), so the fully-indexed engine is built once and shared
//! across tests — which `GeoSocialEngine: Send + Sync` makes trivially
//! safe.

use geosocial_ssrq::core::{Algorithm, EngineConfig, GeoSocialEngine, QueryContext, QueryParams};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use std::sync::OnceLock;

const USERS: usize = 150;
const SEED: u64 = 7;

/// An engine with every auxiliary index built, so all `Algorithm::ALL`
/// variants are runnable.
fn full_engine() -> (GeoSocialEngine, Vec<u32>) {
    let dataset = DatasetConfig::gowalla_like(USERS)
        .with_seed(SEED)
        .generate();
    let mut engine = GeoSocialEngine::build(dataset, EngineConfig::default()).unwrap();
    engine.build_contraction_hierarchy();
    let workload = QueryWorkload::generate(engine.dataset(), 6, SEED ^ 0xBA7C).users;
    engine.build_social_cache(&workload, 60);
    (engine, workload)
}

fn shared_engine() -> &'static (GeoSocialEngine, Vec<u32>) {
    static ENGINE: OnceLock<(GeoSocialEngine, Vec<u32>)> = OnceLock::new();
    ENGINE.get_or_init(full_engine)
}

fn mixed_batch(users: &[u32]) -> Vec<QueryParams> {
    users
        .iter()
        .enumerate()
        .map(|(i, &user)| QueryParams::new(user, 3 + i % 5, [0.2, 0.5, 0.8][i % 3]))
        .collect()
}

#[test]
fn batch_results_are_identical_to_sequential_for_every_algorithm() {
    let (engine, users) = shared_engine();
    let batch = mixed_batch(users);

    for algorithm in Algorithm::ALL {
        let sequential: Vec<_> = batch
            .iter()
            .map(|params| engine.query(algorithm, params).unwrap())
            .collect();
        for threads in [1usize, 2, 4] {
            let parallel = engine.query_batch_with_threads(algorithm, &batch, threads);
            assert_eq!(parallel.len(), batch.len());
            for (i, (seq, par)) in sequential.iter().zip(parallel.iter()).enumerate() {
                let par = par.as_ref().unwrap_or_else(|e| {
                    panic!("{} query {i} failed in batch mode: {e:?}", algorithm.name())
                });
                // Bit-exact: each query computes the same floating-point
                // operations in the same order regardless of which worker
                // runs it.
                assert_eq!(
                    seq.ranked,
                    par.ranked,
                    "{} query {i} differs between sequential and {threads}-thread batch",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn query_batch_uses_default_parallelism_and_matches_sequential() {
    let (engine, users) = shared_engine();
    let batch = mixed_batch(users);
    let results = engine.query_batch(Algorithm::Ais, &batch);
    assert_eq!(results.len(), batch.len());
    for (params, result) in batch.iter().zip(&results) {
        let expected = engine.query(Algorithm::Ais, params).unwrap();
        assert_eq!(expected.ranked, result.as_ref().unwrap().ranked);
    }
}

#[test]
fn batch_reports_per_query_errors_in_place() {
    let (engine, users) = shared_engine();
    let unknown_user = engine.dataset().user_count() as u32 + 50;
    let batch = vec![
        QueryParams::new(users[0], 5, 0.5),
        QueryParams::new(unknown_user, 5, 0.5), // unknown user
        QueryParams::new(users[1], 0, 0.5),     // invalid k
        QueryParams::new(users[2], 5, 0.5),
    ];
    let results = engine.query_batch_with_threads(Algorithm::Ais, &batch, 2);
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_err());
    assert!(results[3].is_ok());
}

#[test]
fn empty_batch_is_a_no_op() {
    let (engine, _) = shared_engine();
    assert!(engine.query_batch(Algorithm::Ais, &[]).is_empty());
    assert!(engine
        .query_batch_with_threads(Algorithm::Sfa, &[], 8)
        .is_empty());
}

/// The stale-scratch regression guard: run queries back-to-back through one
/// engine and one reused context, and require every answer to match a
/// freshly built engine queried with a fresh context.  Catches state
/// leaking between queries via the epoch-versioned scratch (distances,
/// settled marks, heap entries) for every algorithm, including algorithm
/// interleavings.
#[test]
fn reused_scratch_matches_fresh_engine_query_by_query() {
    let (engine, users) = shared_engine();
    // Same configuration and seed build an identical, independent engine.
    let (fresh_engine, _) = full_engine();
    let mut ctx = engine.make_context();

    // Query sequence chosen to stress reuse: same user twice, different
    // users, different alpha/k, and algorithm switches in between.
    let mut plan: Vec<(Algorithm, QueryParams)> = Vec::new();
    for (i, &user) in users.iter().enumerate() {
        let alpha = [0.2, 0.5, 0.8][i % 3];
        for algorithm in Algorithm::ALL {
            plan.push((algorithm, QueryParams::new(user, 4 + i % 5, alpha)));
        }
        // Back-to-back repeat of the same query through the dirty context.
        plan.push((Algorithm::Ais, QueryParams::new(user, 4 + i % 5, alpha)));
    }

    for (step, (algorithm, params)) in plan.iter().enumerate() {
        let reused = engine.query_with(*algorithm, params, &mut ctx).unwrap();
        let fresh = fresh_engine
            .query_with(*algorithm, params, &mut fresh_engine.make_context())
            .unwrap();
        assert_eq!(
            reused.ranked,
            fresh.ranked,
            "step {step}: {} with a reused context diverged from a fresh engine \
             (user {}, k {}, alpha {})",
            algorithm.name(),
            params.user,
            params.k,
            params.alpha
        );
    }
    assert!(
        ctx.searches() > plan.len() as u64 / 2,
        "the reused context should have backed most searches"
    );
}

#[test]
fn one_context_serves_queries_across_engines_of_different_sizes() {
    // A worker context outliving an engine (e.g. on re-shard) must keep
    // giving correct answers when the graph size changes under it.  No CH
    // indexes here — only scratch-backed algorithms are exercised.
    let small_dataset = DatasetConfig::gowalla_like(120).with_seed(31).generate();
    let small = GeoSocialEngine::build(small_dataset, EngineConfig::default()).unwrap();
    let small_user = QueryWorkload::generate(small.dataset(), 1, 1).users[0];
    let large_dataset = DatasetConfig::gowalla_like(600).with_seed(37).generate();
    let large = GeoSocialEngine::build(large_dataset, EngineConfig::default()).unwrap();
    let large_user = QueryWorkload::generate(large.dataset(), 1, 1).users[0];
    let mut ctx = QueryContext::new();

    let params_small = QueryParams::new(small_user, 5, 0.4);
    let params_large = QueryParams::new(large_user, 5, 0.4);
    for _ in 0..3 {
        let a = small
            .query_with(Algorithm::Ais, &params_small, &mut ctx)
            .unwrap();
        let b = small.query(Algorithm::Ais, &params_small).unwrap();
        assert_eq!(a.ranked, b.ranked);
        let a = large
            .query_with(Algorithm::Tsa, &params_large, &mut ctx)
            .unwrap();
        let b = large.query(Algorithm::Tsa, &params_large).unwrap();
        assert_eq!(a.ranked, b.ranked);
    }
    assert!(ctx.capacity() >= 600);
}
