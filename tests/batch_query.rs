//! Integration tests of the parallel batch-query path and the reusable
//! search-scratch substrate:
//!
//! * `run_batch` must return exactly the results of sequential `run`
//!   execution, for every algorithm, at any thread count — including when
//!   the first batch triggers *lazy* auxiliary-index initialization from
//!   multiple workers at once;
//! * reusing one `QueryContext` across queries must never change an answer
//!   (the stale-scratch regression guard).
//!
//! Contraction Hierarchies construction is expensive on the hub-heavy
//! synthetic graphs (the paper makes the same observation about CH on
//! social networks), so the fully-indexed engine is built once and shared
//! across tests — which `GeoSocialEngine: Send + Sync` makes trivially
//! safe.

use geosocial_ssrq::core::{Algorithm, ChBuild, GeoSocialEngine, QueryContext, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use std::sync::OnceLock;

const USERS: usize = 150;
const SEED: u64 = 7;

/// An engine with every auxiliary index *declared* (lazily), so all
/// `Algorithm::ALL` variants are runnable; nothing auxiliary is built until
/// first use.
fn full_engine() -> (GeoSocialEngine, Vec<u32>) {
    let dataset = DatasetConfig::gowalla_like(USERS)
        .with_seed(SEED)
        .generate();
    let workload = QueryWorkload::generate(&dataset, 6, SEED ^ 0xBA7C).users;
    let engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(workload.clone(), 60)
        .build()
        .unwrap();
    (engine, workload)
}

fn shared_engine() -> &'static (GeoSocialEngine, Vec<u32>) {
    static ENGINE: OnceLock<(GeoSocialEngine, Vec<u32>)> = OnceLock::new();
    ENGINE.get_or_init(full_engine)
}

fn mixed_batch(users: &[u32], algorithm: Algorithm) -> Vec<QueryRequest> {
    users
        .iter()
        .enumerate()
        .map(|(i, &user)| {
            QueryRequest::for_user(user)
                .k(3 + i % 5)
                .alpha([0.2, 0.5, 0.8][i % 3])
                .algorithm(algorithm)
                .build()
                .unwrap()
        })
        .collect()
}

#[test]
fn batch_results_are_identical_to_sequential_for_every_algorithm() {
    let (engine, users) = shared_engine();

    for algorithm in Algorithm::ALL {
        // A fresh engine per algorithm/thread-count pass would re-run the
        // expensive CH build; the shared engine's lazy indexes are instead
        // initialized by whichever path (sequential here, or a batch worker
        // below) first needs them — results must be unaffected either way.
        let batch = mixed_batch(users, algorithm);
        let sequential: Vec<_> = batch
            .iter()
            .map(|request| engine.run(request).unwrap())
            .collect();
        for threads in [1usize, 2, 4] {
            let parallel = engine.run_batch_with_threads(&batch, threads);
            assert_eq!(parallel.len(), batch.len());
            for (i, (seq, par)) in sequential.iter().zip(parallel.iter()).enumerate() {
                let par = par.as_ref().unwrap_or_else(|e| {
                    panic!("{} query {i} failed in batch mode: {e:?}", algorithm.name())
                });
                // Bit-exact: each query computes the same floating-point
                // operations in the same order regardless of which worker
                // runs it.
                assert_eq!(
                    seq.ranked,
                    par.ranked,
                    "{} query {i} differs between sequential and {threads}-thread batch",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn parallel_batch_triggers_lazy_ch_init_exactly_once_and_stays_exact() {
    // A dedicated engine whose very first queries are a *parallel* batch of
    // CH-requiring requests: the workers race into the lazy `OnceLock`
    // build, exactly one build runs, and every result matches a
    // sequentially-queried twin engine.
    let (engine, users) = full_engine();
    let (twin, _) = full_engine();
    assert!(engine.contraction_hierarchy().is_none());
    let batch = mixed_batch(&users, Algorithm::TsaCh);
    let parallel = engine.run_batch_with_threads(&batch, 4);
    assert!(engine.contraction_hierarchy().is_some());
    for (request, result) in batch.iter().zip(parallel) {
        let expected = twin.run(request).unwrap();
        assert_eq!(expected.ranked, result.unwrap().ranked);
    }
}

#[test]
fn run_batch_uses_default_parallelism_and_matches_sequential() {
    let (engine, users) = shared_engine();
    let batch = mixed_batch(users, Algorithm::Ais);
    let results = engine.run_batch(&batch);
    assert_eq!(results.len(), batch.len());
    for (request, result) in batch.iter().zip(&results) {
        let expected = engine.run(request).unwrap();
        assert_eq!(expected.ranked, result.as_ref().unwrap().ranked);
    }
}

#[test]
fn batch_reports_per_query_errors_in_place() {
    let (engine, users) = shared_engine();
    let unknown_user = engine.dataset().user_count() as u32 + 50;
    let valid = |user: u32| {
        QueryRequest::for_user(user)
            .k(5)
            .alpha(0.5)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap()
    };
    // `k = 0` cannot pass the request builder; smuggle it through the
    // non-validating constructor to exercise execution-time checks.
    let invalid_k = QueryRequest::for_user(users[1])
        .k(0)
        .alpha(0.5)
        .build_unvalidated();
    let batch = vec![
        valid(users[0]),
        valid(unknown_user), // unknown user
        invalid_k.with_algorithm(Algorithm::Ais),
        valid(users[2]),
    ];
    let results = engine.run_batch_with_threads(&batch, 2);
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_err());
    assert!(results[3].is_ok());
}

#[test]
fn empty_batch_is_a_no_op() {
    let (engine, _) = shared_engine();
    assert!(engine.run_batch(&[]).is_empty());
    assert!(engine.run_batch_with_threads(&[], 8).is_empty());
}

/// The stale-scratch regression guard: run queries back-to-back through one
/// engine and one reused session, and require every answer to match a
/// freshly built engine queried with a fresh context.  Catches state
/// leaking between queries via the epoch-versioned scratch (distances,
/// settled marks, heap entries) for every algorithm, including algorithm
/// interleavings.
#[test]
fn reused_scratch_matches_fresh_engine_query_by_query() {
    let (engine, users) = shared_engine();
    // Same configuration and seed build an identical, independent engine.
    let (fresh_engine, _) = full_engine();
    let mut session = engine.session();

    // Query sequence chosen to stress reuse: same user twice, different
    // users, different alpha/k, and algorithm switches in between.
    let mut plan: Vec<QueryRequest> = Vec::new();
    for (i, &user) in users.iter().enumerate() {
        let alpha = [0.2, 0.5, 0.8][i % 3];
        for algorithm in Algorithm::ALL {
            plan.push(
                QueryRequest::for_user(user)
                    .k(4 + i % 5)
                    .alpha(alpha)
                    .algorithm(algorithm)
                    .build()
                    .unwrap(),
            );
        }
        // Back-to-back repeat of the same query through the dirty context.
        plan.push(
            QueryRequest::for_user(user)
                .k(4 + i % 5)
                .alpha(alpha)
                .algorithm(Algorithm::Ais)
                .build()
                .unwrap(),
        );
    }

    for (step, request) in plan.iter().enumerate() {
        let reused = session.run(request).unwrap();
        let fresh = fresh_engine
            .run_with(request, &mut fresh_engine.make_context())
            .unwrap();
        assert_eq!(
            reused.ranked,
            fresh.ranked,
            "step {step}: {} with a reused context diverged from a fresh engine \
             (user {}, k {}, alpha {})",
            request.algorithm().key(),
            request.user(),
            request.k(),
            request.alpha()
        );
    }
    assert!(
        session.searches() > plan.len() as u64 / 2,
        "the reused session should have backed most searches"
    );
}

#[test]
fn one_context_serves_queries_across_engines_of_different_sizes() {
    // A worker context outliving an engine (e.g. on re-shard) must keep
    // giving correct answers when the graph size changes under it.  No CH
    // indexes here — only scratch-backed algorithms are exercised.
    let small_dataset = DatasetConfig::gowalla_like(120).with_seed(31).generate();
    let small = GeoSocialEngine::builder(small_dataset).build().unwrap();
    let small_user = QueryWorkload::generate(small.dataset(), 1, 1).users[0];
    let large_dataset = DatasetConfig::gowalla_like(600).with_seed(37).generate();
    let large = GeoSocialEngine::builder(large_dataset).build().unwrap();
    let large_user = QueryWorkload::generate(large.dataset(), 1, 1).users[0];
    let mut ctx = QueryContext::new();

    let request_small = QueryRequest::for_user(small_user)
        .k(5)
        .alpha(0.4)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let request_large = QueryRequest::for_user(large_user)
        .k(5)
        .alpha(0.4)
        .algorithm(Algorithm::Tsa)
        .build()
        .unwrap();
    for _ in 0..3 {
        let a = small.run_with(&request_small, &mut ctx).unwrap();
        let b = small.run(&request_small).unwrap();
        assert_eq!(a.ranked, b.ranked);
        let a = large.run_with(&request_large, &mut ctx).unwrap();
        let b = large.run(&request_large).unwrap();
        assert_eq!(a.ranked, b.ranked);
    }
    assert!(ctx.capacity() >= 600);
}
