//! Stream ≡ run equivalence for the pull-lazy query drivers.
//!
//! `QuerySession::stream` runs the same resumable state machine the eager
//! entry points drive, so for **all twelve** registered algorithms — and
//! under every request scenario option — a fully drained stream must be
//! bit-identical to `QuerySession::run`, every prefix of length `j` must
//! equal the eager top-`j`, and an early-exited stream (`take(1)`) must do
//! strictly less search work than the full run.

use geosocial_ssrq::core::{
    Algorithm, AlgorithmStrategy, ChBuild, CoreError, GeoSocialEngine, QueryContext, QueryRequest,
    QueryResult,
};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::spatial::{Point, Rect};
use std::sync::Arc;

/// A small engine with every auxiliary index declared, so all twelve
/// algorithms are runnable (the CH build is quadratic-ish on hub-heavy
/// graphs — keep CH test engines at ≤ 160 users).
fn full_engine() -> (GeoSocialEngine, Vec<u32>) {
    let dataset = DatasetConfig::gowalla_like(160).with_seed(42).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 7);
    let engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(workload.users.clone(), 40)
        .build()
        .expect("engine builds");
    (engine, workload.users)
}

/// The request scenario shapes of the equivalence matrix: plain,
/// rect-filtered, exclusion-filtered, and score-capped.
fn request_shapes(engine: &GeoSocialEngine, user: u32) -> Vec<(&'static str, QueryRequest)> {
    let bounds = engine.dataset().bounds();
    let window = Rect::new(
        Point::new(
            bounds.min.x + bounds.width() * 0.1,
            bounds.min.y + bounds.height() * 0.1,
        ),
        Point::new(
            bounds.min.x + bounds.width() * 0.8,
            bounds.min.y + bounds.height() * 0.85,
        ),
    );
    vec![
        (
            "plain",
            QueryRequest::for_user(user)
                .k(10)
                .alpha(0.3)
                .build()
                .unwrap(),
        ),
        (
            "rect-filter",
            QueryRequest::for_user(user)
                .k(10)
                .alpha(0.3)
                .within(window)
                .build()
                .unwrap(),
        ),
        (
            "exclusion",
            QueryRequest::for_user(user)
                .k(10)
                .alpha(0.3)
                .exclude([1, 2, 3, 5, 8, 13])
                .build()
                .unwrap(),
        ),
        (
            "max_score",
            QueryRequest::for_user(user)
                .k(10)
                .alpha(0.3)
                .max_score(0.4)
                .build()
                .unwrap(),
        ),
    ]
}

#[test]
fn streamed_collection_is_bit_identical_to_run_for_all_algorithms_and_filters() {
    let (engine, users) = full_engine();
    let mut session = engine.session();
    for algorithm in Algorithm::ALL {
        for &user in &users {
            for (shape, base) in request_shapes(&engine, user) {
                let request = base.with_algorithm(algorithm);
                let expected = session.run(&request).unwrap();
                let mut stream = session.stream(&request).unwrap();
                let streamed: Vec<_> = stream.by_ref().collect();
                assert_eq!(
                    streamed,
                    expected.ranked,
                    "{} / {shape} (user {user}): stream order or scores diverge from run()",
                    algorithm.name()
                );
                assert!(stream.error().is_none());
                assert!(stream.finalized_early() <= streamed.len());
            }
        }
    }
}

#[test]
fn every_stream_prefix_equals_the_eager_top_j() {
    let (engine, users) = full_engine();
    let mut session = engine.session();
    for algorithm in Algorithm::ALL {
        let user = users[0];
        for (shape, base) in request_shapes(&engine, user) {
            let request = base.with_algorithm(algorithm);
            let expected = session.run(&request).unwrap();
            for j in 1..=expected.ranked.len() {
                let prefix: Vec<_> = session.stream(&request).unwrap().take(j).collect();
                assert_eq!(
                    prefix,
                    expected.ranked[..j],
                    "{} / {shape}: prefix of length {j} diverges from the eager top-{j}",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn early_exit_take_one_does_strictly_fewer_relaxed_edges() {
    let (engine, users) = full_engine();
    let mut session = engine.session();
    for algorithm in [Algorithm::Tsa, Algorithm::Ais] {
        let mut full_total = 0usize;
        let mut partial_total = 0usize;
        for &user in &users {
            let request = QueryRequest::for_user(user)
                .k(10)
                .alpha(0.3)
                .algorithm(algorithm)
                .build()
                .unwrap();
            let full = session.run(&request).unwrap();
            assert!(
                full.stats.relaxed_edges > 0,
                "{}: the full run must relax edges",
                algorithm.name()
            );
            let mut stream = session.stream(&request).unwrap();
            let first = stream.next();
            assert!(first.is_some(), "{}: query has results", algorithm.name());
            assert_eq!(first.as_ref(), full.ranked.first());
            let partial = stream.stats();
            assert!(
                partial.relaxed_edges <= full.stats.relaxed_edges,
                "{}: a truncated stream can never do more work (user {user})",
                algorithm.name()
            );
            full_total += full.stats.relaxed_edges;
            partial_total += partial.relaxed_edges;
        }
        assert!(
            partial_total < full_total,
            "{}: take(1) must relax strictly fewer edges over the workload \
             ({partial_total} vs {full_total})",
            algorithm.name()
        );
    }
}

#[test]
fn truncated_streams_do_not_corrupt_later_session_queries() {
    let (engine, users) = full_engine();
    let mut session = engine.session();
    let request = QueryRequest::for_user(users[0])
        .k(10)
        .alpha(0.3)
        .algorithm(Algorithm::Tsa)
        .build()
        .unwrap();
    let baseline = engine.run(&request).unwrap();
    // Abandon a stream after one entry, then re-run eagerly on the same
    // (now dirty) session context.
    let _ = session.stream(&request).unwrap().next();
    let after_abandon = session.run(&request).unwrap();
    assert_eq!(after_abandon.ranked, baseline.ranked);
}

/// A custom strategy without a `begin_stream` override: streaming must fall
/// back to the eager drain-after-complete driver and still be exact.
struct OracleAlias;

impl AlgorithmStrategy for OracleAlias {
    fn name(&self) -> &str {
        "ORACLE-ALIAS"
    }

    fn execute(
        &self,
        engine: &GeoSocialEngine,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        engine.run_with(&request.clone().with_algorithm(Algorithm::Exhaustive), ctx)
    }
}

#[test]
fn custom_strategies_stream_through_the_eager_fallback() {
    let (mut engine, users) = full_engine();
    engine.register_strategy(Arc::new(OracleAlias));
    let request = QueryRequest::for_user(users[0])
        .k(10)
        .alpha(0.3)
        .algorithm("ORACLE-ALIAS")
        .build()
        .unwrap();
    let expected = engine.run(&request).unwrap();
    let mut session = engine.session();
    let mut stream = session.stream(&request).unwrap();
    let streamed: Vec<_> = stream.by_ref().collect();
    assert_eq!(streamed, expected.ranked);
    // The eager fallback finalizes nothing before completion.
    assert_eq!(stream.finalized_early(), 0);
}
