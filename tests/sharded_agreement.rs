//! Scatter-gather exactness: for every algorithm, partitioning policy and
//! shard count, `ShardedEngine::run` must return a ranked list identical to
//! the single unpartitioned `GeoSocialEngine::run` — same users, same
//! scores, same order — and the cross-shard stream must replay exactly the
//! gathered result.
//!
//! Shard datasets inherit the global normalization constants and the
//! coordinator broadcasts the query user's location as the request origin,
//! so the comparison is `assert_eq!` on the ranked vectors (bit-identical
//! scores), not a tolerance check.

use geosocial_ssrq::core::{Algorithm, ChBuild, GeoSocialEngine, QueryRequest};
use geosocial_ssrq::data::{DatasetConfig, QueryWorkload};
use geosocial_ssrq::prelude::{Point, Rect};
use geosocial_ssrq::shard::{Partitioning, ShardedEngine};

const POLICIES: [Partitioning; 2] = [
    Partitioning::UserHash,
    Partitioning::SpatialGrid { cells_per_axis: 8 },
];

fn request(user: u32, k: usize, alpha: f64, algorithm: Algorithm) -> QueryRequest {
    QueryRequest::for_user(user)
        .k(k)
        .alpha(alpha)
        .algorithm(algorithm)
        .build()
        .expect("valid request")
}

#[test]
fn sharded_run_is_identical_to_the_single_engine_for_the_main_algorithms() {
    let dataset = DatasetConfig::gowalla_like(900).with_seed(4242).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 17);
    let single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let algorithms = [
        Algorithm::Exhaustive,
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
    ];
    for policy in POLICIES {
        for shards in [1usize, 3] {
            let sharded = ShardedEngine::builder(dataset.clone())
                .shards(shards)
                .partitioning(policy)
                .build()
                .unwrap();
            assert_eq!(sharded.shard_count(), shards);
            // Every user is owned by exactly one shard and located users
            // are distributed accordingly.
            let occupancy: usize = sharded.occupancy().iter().sum();
            assert_eq!(occupancy, dataset.located_user_count());
            for &user in &workload.users {
                for algorithm in algorithms {
                    for &(k, alpha) in &[(1usize, 0.5), (20, 0.3), (20, 0.8)] {
                        let req = request(user, k, alpha, algorithm);
                        let expected = single.run(&req).unwrap();
                        let (got, stats) = sharded.run_with_stats(&req).unwrap();
                        assert_eq!(
                            got.ranked,
                            expected.ranked,
                            "{} differs from the single engine ({policy:?}, {shards} shards, user {user}, k {k}, alpha {alpha})",
                            algorithm.name()
                        );
                        assert_eq!(got.k, expected.k);
                        assert_eq!(
                            stats.executed_shards() + stats.skipped_shards(),
                            shards,
                            "every shard needs an outcome"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sharded_run_honours_request_filters_identically() {
    let dataset = DatasetConfig::gowalla_like(700).with_seed(99).generate();
    let workload = QueryWorkload::generate(&dataset, 3, 5);
    let single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    for policy in POLICIES {
        let sharded = ShardedEngine::builder(dataset.clone())
            .shards(4)
            .partitioning(policy)
            .build()
            .unwrap();
        for &user in &workload.users {
            let excluded: Vec<u32> = (0..dataset.user_count() as u32)
                .filter(|u| u % 5 == user % 5)
                .collect();
            let base = QueryRequest::for_user(user)
                .k(12)
                .alpha(0.4)
                .within(Rect::new(Point::new(0.1, 0.1), Point::new(0.7, 0.8)))
                .exclude(excluded)
                .max_score(0.6)
                .build()
                .unwrap();
            for algorithm in [Algorithm::Exhaustive, Algorithm::Tsa, Algorithm::Ais] {
                let req = base.clone().with_algorithm(algorithm);
                let expected = single.run(&req).unwrap();
                let got = sharded.run(&req).unwrap();
                assert_eq!(
                    got.ranked,
                    expected.ranked,
                    "{} differs under filters ({policy:?}, user {user})",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn spatial_partitioning_skips_shards_the_threshold_proves_useless() {
    // A tight score cutoff plus spatially compact shards: the query's own
    // neighbourhood answers the query and remote shards are skipped by the
    // rect / threshold pruning (hash partitioning cannot skip — every
    // shard's rectangle spans the whole domain).
    let dataset = DatasetConfig::gowalla_like(1_500).with_seed(7).generate();
    let workload = QueryWorkload::generate(&dataset, 6, 3);
    let sharded = ShardedEngine::builder(dataset.clone())
        .shards(8)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 16 })
        .build()
        .unwrap();
    let single = GeoSocialEngine::builder(dataset).build().unwrap();
    let mut total_skipped = 0usize;
    for &user in &workload.users {
        let req = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.2) // spatial-heavy: rect bounds are informative
            .max_score(0.12)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let expected = single.run(&req).unwrap();
        let (got, stats) = sharded.run_with_stats(&req).unwrap();
        assert_eq!(got.ranked, expected.ranked, "user {user}");
        total_skipped += stats.skipped_shards();
    }
    assert!(
        total_skipped > 0,
        "expected the rect/threshold pruning to skip at least one shard"
    );
}

#[test]
fn sharded_ch_and_cached_variants_match_the_single_engine() {
    // CH construction is quadratic-ish on hub-heavy graphs, so this stays
    // tiny (each shard builds its own CH over the replicated graph).
    let dataset = DatasetConfig::gowalla_like(140).with_seed(77).generate();
    let workload = QueryWorkload::generate(&dataset, 2, 23);
    let cache_users = workload.users.clone();
    let single = GeoSocialEngine::builder(dataset.clone())
        .with_ch(ChBuild::Lazy)
        .cache_social_neighbors(cache_users.clone(), 80)
        .build()
        .unwrap();
    let sharded = ShardedEngine::builder(dataset)
        .shards(2)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 4 })
        .configure_engines(move |b| {
            b.with_ch(ChBuild::Lazy)
                .cache_social_neighbors(cache_users.clone(), 80)
        })
        .build()
        .unwrap();
    for &user in &workload.users {
        for algorithm in [
            Algorithm::SfaCh,
            Algorithm::SpaCh,
            Algorithm::TsaCh,
            Algorithm::SfaCached,
        ] {
            let req = request(user, 10, 0.4, algorithm);
            let expected = single.run(&req).unwrap();
            let got = sharded.run(&req).unwrap();
            // These algorithms mix *two* exact distance mechanisms (CH
            // point-to-point / cached lists alongside the live Dijkstra
            // expansion), and which mechanism evaluates a given user
            // depends on the candidate interleaving — which partitioning
            // legitimately changes.  Both mechanisms are exact but sum the
            // same path in different floating-point orders, so scores can
            // differ by an ulp; compare with the suite's standard
            // tolerance check instead of bitwise.
            assert!(
                got.same_users_and_scores(&expected, 1e-9),
                "{} differs from the single engine (user {user}):\n  got      {:?}\n  expected {:?}",
                algorithm.name(),
                got.users(),
                expected.users()
            );
        }
    }
    // The lazy per-shard CH indexes were built on demand.
    assert!(sharded.shard_engine(0).contraction_hierarchy().is_some());
}

#[test]
fn cross_shard_stream_replays_the_gathered_result_in_order() {
    let dataset = DatasetConfig::gowalla_like(800).with_seed(13).generate();
    let workload = QueryWorkload::generate(&dataset, 4, 29);
    for policy in POLICIES {
        let sharded = ShardedEngine::builder(dataset.clone())
            .shards(3)
            .partitioning(policy)
            .build()
            .unwrap();
        let mut session = sharded.session();
        for &user in &workload.users {
            for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
                let req = request(user, 15, 0.3, algorithm);
                let eager = session.run(&req).unwrap();
                // Full drain: identical entries, identical order.
                let streamed: Vec<_> = session.stream(&req).unwrap().collect();
                assert_eq!(
                    streamed,
                    eager.ranked,
                    "{} stream != run ({policy:?}, user {user})",
                    algorithm.name()
                );
                // Every prefix equals the eager top-j (the merge yields in
                // global ascending order, so this is a pure prefix check).
                let mut stream = session.stream(&req).unwrap();
                let prefix: Vec<_> = stream.by_ref().take(4).collect();
                assert_eq!(prefix.as_slice(), &eager.ranked[..prefix.len()]);
                // A truncated stream does no more search work than draining
                // it fully.  (The eager scatter is not the right baseline
                // here: its threshold forwarding may *skip* whole shards,
                // which the always-exact streaming merge cannot.)
                let prefix_work = stream.stats().relaxed_edges;
                let _rest: Vec<_> = stream.by_ref().collect();
                let drained_work = stream.stats().relaxed_edges;
                assert!(prefix_work <= drained_work);
            }
        }
    }
}

#[test]
fn single_shard_degenerates_to_the_plain_engine() {
    let dataset = DatasetConfig::gowalla_like(400).with_seed(1).generate();
    let single = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let sharded = ShardedEngine::builder(dataset)
        .shards(1)
        .partitioning(Partitioning::UserHash)
        .build()
        .unwrap();
    let workload = QueryWorkload::generate(single.dataset(), 3, 8);
    for &user in &workload.users {
        let req = request(user, 10, 0.3, Algorithm::Ais);
        assert_eq!(
            sharded.run(&req).unwrap().ranked,
            single.run(&req).unwrap().ranked
        );
    }
}

#[test]
fn sharded_batch_matches_per_query_runs_in_input_order() {
    let dataset = DatasetConfig::gowalla_like(600).with_seed(21).generate();
    let workload = QueryWorkload::generate(&dataset, 8, 2);
    let sharded = ShardedEngine::builder(dataset)
        .shards(3)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 8 })
        .build()
        .unwrap();
    let batch: Vec<QueryRequest> = workload
        .users
        .iter()
        .map(|&u| request(u, 10, 0.3, Algorithm::Ais))
        .collect();
    let sequential: Vec<_> = batch.iter().map(|r| sharded.run(r).unwrap()).collect();
    for threads in [1usize, 2, 4] {
        let results = sharded.run_batch_with_threads(&batch, threads);
        assert_eq!(results.len(), batch.len());
        for (got, expected) in results.iter().zip(sequential.iter()) {
            assert_eq!(got.as_ref().unwrap().ranked, expected.ranked);
        }
    }
}
