use crate::ais::AisIndex;
use crate::algorithms::SocialNeighborCache;
use crate::strategy::AlgorithmStrategy;
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QuerySession,
    StrategyRegistry, UserId,
};
use ssrq_graph::{ChParams, ContractionHierarchy, LandmarkSelection, LandmarkSet};
use ssrq_spatial::{Point, Rect, UniformGrid};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The SSRQ processing algorithm to run for a query.
///
/// All algorithms return the same (exact) result set; they differ only in
/// how much work they perform — which is precisely what the paper's
/// evaluation measures.
///
/// Each variant corresponds to a built-in
/// [`AlgorithmStrategy`](crate::AlgorithmStrategy) registered under
/// [`Algorithm::name`]; custom strategies live alongside them in the
/// engine's [`StrategyRegistry`] and are requested by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Brute-force oracle: full Dijkstra plus a linear scan.
    Exhaustive,
    /// Social First Approach (§4.1).
    Sfa,
    /// Spatial First Approach (§4.1).
    Spa,
    /// Twofold Search Approach with round-robin probing and landmark-based
    /// candidate pruning (the "TSA" configuration of the evaluation).
    Tsa,
    /// TSA probing with the Quick Combine heuristic.
    TsaQc,
    /// Aggregate Index Search without computation sharing (Figure 10's
    /// AIS-BID).
    AisBid,
    /// AIS with computation sharing but without delayed evaluation (AIS⁻).
    AisMinus,
    /// AIS with all optimizations — the paper's best method.
    Ais,
    /// SFA with a Contraction Hierarchies distance module (Figure 8).
    SfaCh,
    /// SPA with a Contraction Hierarchies distance module (Figure 8).
    SpaCh,
    /// TSA with a Contraction Hierarchies distance module (Figure 8).
    TsaCh,
    /// SFA over pre-computed social neighbour lists with AIS fallback
    /// (§5.4, "AIS-Cache" in Figure 11).
    SfaCached,
}

impl Algorithm {
    /// Every algorithm variant, in the order they appear in the paper.
    pub const ALL: [Algorithm; 12] = [
        Algorithm::Exhaustive,
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
        Algorithm::SfaCh,
        Algorithm::SpaCh,
        Algorithm::TsaCh,
        Algorithm::SfaCached,
    ];

    /// Short display name (matches the labels used in the paper's figures)
    /// and the key the built-in strategy is registered under.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Exhaustive => "EXH",
            Algorithm::Sfa => "SFA",
            Algorithm::Spa => "SPA",
            Algorithm::Tsa => "TSA",
            Algorithm::TsaQc => "TSA-QC",
            Algorithm::AisBid => "AIS-BID",
            Algorithm::AisMinus => "AIS-",
            Algorithm::Ais => "AIS",
            Algorithm::SfaCh => "SFA-CH",
            Algorithm::SpaCh => "SPA-CH",
            Algorithm::TsaCh => "TSA-CH",
            Algorithm::SfaCached => "AIS-Cache",
        }
    }

    /// Returns `true` when the algorithm needs a Contraction Hierarchies
    /// index (see [`ChBuild`]).
    pub fn needs_ch(&self) -> bool {
        matches!(self, Algorithm::SfaCh | Algorithm::SpaCh | Algorithm::TsaCh)
    }

    /// Returns `true` when the algorithm needs a pre-computed social
    /// neighbour cache (see [`SocialCachePlan`]).
    pub fn needs_social_cache(&self) -> bool {
        matches!(self, Algorithm::SfaCached)
    }
}

/// Index-construction parameters of a [`GeoSocialEngine`] (the system
/// parameters of Table 3 in the paper), as configured through
/// [`EngineBuilder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// Partitioning granularity `s`: every AIS index node has `s × s`
    /// children, and the single-level grid used by SPA/TSA has
    /// `s^levels × s^levels` cells (capped at 256 per axis).
    pub granularity: u32,
    /// Number of retained AIS grid levels (the paper keeps 2).
    pub ais_levels: u32,
    /// Number of landmarks `M` (the paper fine-tunes M = 8).
    pub num_landmarks: usize,
    /// Landmark selection strategy.
    pub landmark_selection: LandmarkSelection,
    /// Seed for randomized landmark selection.
    pub landmark_seed: u64,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            granularity: 10,
            ais_levels: 2,
            num_landmarks: 8,
            landmark_selection: LandmarkSelection::FarthestFirst,
            landmark_seed: 0x5537_2301,
        }
    }
}

impl IndexParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.granularity == 0 {
            return Err(CoreError::InvalidParameter(
                "granularity s must be at least 1".into(),
            ));
        }
        if self.ais_levels == 0 {
            return Err(CoreError::InvalidParameter(
                "the AIS index needs at least one level".into(),
            ));
        }
        if self.num_landmarks == 0 {
            return Err(CoreError::InvalidParameter(
                "at least one landmark is required".into(),
            ));
        }
        Ok(())
    }

    /// The side length (cells per axis) of the single-level grid used by the
    /// SPA/TSA spatial search.
    pub fn spa_grid_side(&self) -> u32 {
        let side = (self.granularity as u64).pow(self.ais_levels).min(256);
        side.max(1) as u32
    }
}

/// How (and whether) the engine provides the Contraction Hierarchies index
/// required by the `*-CH` baselines.
///
/// CH preprocessing is by far the most expensive index build (and, per the
/// paper, of little use on social networks), so it defaults to
/// [`ChBuild::Disabled`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ChBuild {
    /// No CH index: a CH-requiring strategy fails with
    /// [`CoreError::MissingIndex`].
    #[default]
    Disabled,
    /// Build the index on first use.  The build runs behind a `OnceLock`,
    /// so concurrent batch workers trigger exactly one build and the engine
    /// stays `Send + Sync`.
    Lazy,
    /// Build the index during [`EngineBuilder::build`].
    Eager,
}

/// How (and whether) the engine provides the pre-computed social neighbour
/// lists of §5.4 (required by [`Algorithm::SfaCached`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SocialCachePlan {
    /// No cache: [`Algorithm::SfaCached`] fails with
    /// [`CoreError::MissingIndex`].
    #[default]
    Disabled,
    /// Pre-compute the `t` socially closest vertices for each user in
    /// `users` on first use (behind a `OnceLock`, like [`ChBuild::Lazy`]).
    Lazy {
        /// The users to materialize lists for (typically the query
        /// workload).
        users: Vec<UserId>,
        /// List length `t`.
        t: usize,
    },
    /// Pre-compute the lists during [`EngineBuilder::build`].
    Eager {
        /// The users to materialize lists for.
        users: Vec<UserId>,
        /// List length `t`.
        t: usize,
    },
}

/// Fluent construction of a [`GeoSocialEngine`].
///
/// ```
/// use ssrq_core::{ChBuild, GeoSocialDataset, GeoSocialEngine};
/// use ssrq_graph::GraphBuilder;
/// use ssrq_spatial::Point;
///
/// let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
/// let locations = vec![
///     Some(Point::new(0.1, 0.5)),
///     Some(Point::new(0.9, 0.5)),
///     Some(Point::new(0.2, 0.5)),
/// ];
/// let dataset = GeoSocialDataset::new(graph, locations).unwrap();
/// let engine = GeoSocialEngine::builder(dataset)
///     .granularity(10)
///     .landmarks(4)
///     .with_ch(ChBuild::Lazy)
///     .build()
///     .unwrap();
/// assert!(engine.contraction_hierarchy().is_none()); // not built yet
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    dataset: GeoSocialDataset,
    params: IndexParams,
    ch: ChBuild,
    social_cache: SocialCachePlan,
}

impl EngineBuilder {
    /// Starts a builder over `dataset` with [`IndexParams::default`], no CH
    /// index and no social cache.
    pub fn new(dataset: GeoSocialDataset) -> Self {
        EngineBuilder {
            dataset,
            params: IndexParams::default(),
            ch: ChBuild::Disabled,
            social_cache: SocialCachePlan::Disabled,
        }
    }

    /// Sets the partitioning granularity `s`.
    pub fn granularity(mut self, s: u32) -> Self {
        self.params.granularity = s;
        self
    }

    /// Sets the number of retained AIS grid levels.
    pub fn ais_levels(mut self, levels: u32) -> Self {
        self.params.ais_levels = levels;
        self
    }

    /// Sets the number of landmarks `M`.
    pub fn landmarks(mut self, m: usize) -> Self {
        self.params.num_landmarks = m;
        self
    }

    /// Sets the landmark selection strategy.
    pub fn landmark_selection(mut self, selection: LandmarkSelection) -> Self {
        self.params.landmark_selection = selection;
        self
    }

    /// Sets the seed for randomized landmark selection.
    pub fn landmark_seed(mut self, seed: u64) -> Self {
        self.params.landmark_seed = seed;
        self
    }

    /// Replaces the full parameter record.
    pub fn index_params(mut self, params: IndexParams) -> Self {
        self.params = params;
        self
    }

    /// Declares the Contraction Hierarchies index ([`ChBuild::Disabled`] by
    /// default).
    pub fn with_ch(mut self, mode: ChBuild) -> Self {
        self.ch = mode;
        self
    }

    /// Declares the social neighbour cache ([`SocialCachePlan::Disabled`]
    /// by default).
    pub fn with_social_cache(mut self, plan: SocialCachePlan) -> Self {
        self.social_cache = plan;
        self
    }

    /// Convenience for [`EngineBuilder::with_social_cache`]: lazily
    /// materialize the `t` socially closest vertices of each user in
    /// `users` on first [`Algorithm::SfaCached`] query.
    pub fn cache_social_neighbors(self, users: impl Into<Vec<UserId>>, t: usize) -> Self {
        self.with_social_cache(SocialCachePlan::Lazy {
            users: users.into(),
            t,
        })
    }

    /// Builds the landmark tables, the SPA/TSA grid and the AIS aggregate
    /// index, plus any eagerly declared auxiliary index, and returns the
    /// engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for invalid index parameters,
    /// [`CoreError::InvalidDataset`] for an empty dataset.
    pub fn build(self) -> Result<GeoSocialEngine, CoreError> {
        let EngineBuilder {
            dataset,
            params,
            ch: ch_mode,
            social_cache: cache_plan,
        } = self;
        params.validate()?;
        if let SocialCachePlan::Lazy { t, .. } | SocialCachePlan::Eager { t, .. } = &cache_plan {
            if *t == 0 {
                return Err(CoreError::InvalidParameter(
                    "the social cache list length t must be at least 1".into(),
                ));
            }
        }
        if dataset.user_count() == 0 {
            return Err(CoreError::InvalidDataset("the dataset has no users".into()));
        }
        let landmarks = LandmarkSet::build(
            dataset.graph(),
            params.num_landmarks,
            params.landmark_selection,
            params.landmark_seed,
        )?;
        let bounds = expanded(dataset.bounds());
        let grid = UniformGrid::bulk_load(bounds, params.spa_grid_side(), dataset.located_users())?;
        let ais = AisIndex::build(&dataset, &landmarks, params.granularity, params.ais_levels)?;
        let engine = GeoSocialEngine {
            dataset,
            params,
            landmarks,
            grid,
            ais,
            ch_mode,
            ch: OnceLock::new(),
            cache_plan,
            social_cache: OnceLock::new(),
            strategies: StrategyRegistry::with_builtins(),
        };
        if engine.ch_mode == ChBuild::Eager {
            engine.require_contraction_hierarchy()?;
        }
        if matches!(engine.cache_plan, SocialCachePlan::Eager { .. }) {
            engine.require_social_cache()?;
        }
        Ok(engine)
    }
}

/// Index-construction parameters of a [`GeoSocialEngine`].
///
/// # Deprecated
///
/// `EngineConfig` is the legacy struct-literal configuration.  New code
/// should use the fluent [`EngineBuilder`]
/// (`GeoSocialEngine::builder(dataset).granularity(10).landmarks(8).build()?`),
/// which additionally supports *lazy* auxiliary indexes
/// ([`ChBuild::Lazy`] / [`SocialCachePlan::Lazy`]) instead of the eager
/// `build_ch` flag.
#[deprecated(
    since = "0.2.0",
    note = "use GeoSocialEngine::builder(dataset) and the fluent EngineBuilder instead"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Partitioning granularity `s` (see [`IndexParams::granularity`]).
    pub granularity: u32,
    /// Number of retained AIS grid levels.
    pub ais_levels: u32,
    /// Number of landmarks `M`.
    pub num_landmarks: usize,
    /// Landmark selection strategy.
    pub landmark_selection: LandmarkSelection,
    /// Seed for randomized landmark selection.
    pub landmark_seed: u64,
    /// Whether to eagerly build the Contraction Hierarchies index needed by
    /// the `*-CH` baselines (expensive; off by default).
    pub build_ch: bool,
}

#[allow(deprecated)]
impl Default for EngineConfig {
    fn default() -> Self {
        let params = IndexParams::default();
        EngineConfig {
            granularity: params.granularity,
            ais_levels: params.ais_levels,
            num_landmarks: params.num_landmarks,
            landmark_selection: params.landmark_selection,
            landmark_seed: params.landmark_seed,
            build_ch: false,
        }
    }
}

#[allow(deprecated)]
impl EngineConfig {
    /// The equivalent [`IndexParams`] record.
    pub fn index_params(&self) -> IndexParams {
        IndexParams {
            granularity: self.granularity,
            ais_levels: self.ais_levels,
            num_landmarks: self.num_landmarks,
            landmark_selection: self.landmark_selection,
            landmark_seed: self.landmark_seed,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.index_params().validate()
    }

    /// The side length (cells per axis) of the single-level grid used by the
    /// SPA/TSA spatial search.
    pub fn spa_grid_side(&self) -> u32 {
        self.index_params().spa_grid_side()
    }
}

/// The SSRQ query engine: owns the dataset, the spatial indexes, the
/// landmark tables and the (lazily built) auxiliary indexes, and dispatches
/// [`QueryRequest`]s through its [`StrategyRegistry`].
#[derive(Debug, Clone)]
pub struct GeoSocialEngine {
    dataset: GeoSocialDataset,
    params: IndexParams,
    landmarks: LandmarkSet,
    grid: UniformGrid,
    ais: AisIndex,
    ch_mode: ChBuild,
    ch: OnceLock<ContractionHierarchy>,
    cache_plan: SocialCachePlan,
    social_cache: OnceLock<SocialNeighborCache>,
    strategies: StrategyRegistry,
}

// The engine holds no interior mutability beyond `OnceLock` (write-once
// lazy index initialization, which is `Sync`): queries take `&self` and
// draw their mutable scratch from a caller-owned `QueryContext`, while
// location updates go through the explicit `&mut self` API.  That makes
// `&engine` safely shareable across the batch-query worker threads; this
// assertion turns any future regression (e.g. an `Rc` or `RefCell`
// slipping into an index) into a compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GeoSocialEngine>();
};

impl GeoSocialEngine {
    /// Starts fluent engine construction; see [`EngineBuilder`].
    pub fn builder(dataset: GeoSocialDataset) -> EngineBuilder {
        EngineBuilder::new(dataset)
    }

    /// Builds all indexes for `dataset` from a legacy [`EngineConfig`].
    #[deprecated(
        since = "0.2.0",
        note = "use GeoSocialEngine::builder(dataset)...build() instead"
    )]
    #[allow(deprecated)]
    pub fn build(dataset: GeoSocialDataset, config: EngineConfig) -> Result<Self, CoreError> {
        GeoSocialEngine::builder(dataset)
            .index_params(config.index_params())
            .with_ch(if config.build_ch {
                ChBuild::Eager
            } else {
                ChBuild::Disabled
            })
            .build()
    }

    /// The dataset the engine operates on.
    pub fn dataset(&self) -> &GeoSocialDataset {
        &self.dataset
    }

    /// The index-construction parameters.
    pub fn index_params(&self) -> &IndexParams {
        &self.params
    }

    /// The engine configuration as a legacy [`EngineConfig`] value.
    #[deprecated(since = "0.2.0", note = "use GeoSocialEngine::index_params instead")]
    #[allow(deprecated)]
    pub fn config(&self) -> EngineConfig {
        EngineConfig {
            granularity: self.params.granularity,
            ais_levels: self.params.ais_levels,
            num_landmarks: self.params.num_landmarks,
            landmark_selection: self.params.landmark_selection,
            landmark_seed: self.params.landmark_seed,
            build_ch: self.ch.get().is_some(),
        }
    }

    /// The landmark set shared by TSA and AIS.
    pub fn landmarks(&self) -> &LandmarkSet {
        &self.landmarks
    }

    /// The AIS aggregate index.
    pub fn ais_index(&self) -> &AisIndex {
        &self.ais
    }

    /// The single-level grid used by the SPA/TSA spatial search.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The Contraction Hierarchies index, when already built.
    ///
    /// Under [`ChBuild::Lazy`] the index only exists after the first query
    /// that needed it; use
    /// [`GeoSocialEngine::require_contraction_hierarchy`] to force it.
    pub fn contraction_hierarchy(&self) -> Option<&ContractionHierarchy> {
        self.ch.get()
    }

    /// Returns the Contraction Hierarchies index, building it on the spot
    /// when the engine was configured with [`ChBuild::Lazy`] or
    /// [`ChBuild::Eager`].
    ///
    /// Concurrent callers (e.g. parallel batch workers) trigger exactly one
    /// build; the rest block until it is ready.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingIndex`] under [`ChBuild::Disabled`] (unless an
    /// index was installed through the deprecated
    /// `build_contraction_hierarchy`).
    pub fn require_contraction_hierarchy(&self) -> Result<&ContractionHierarchy, CoreError> {
        match self.ch_mode {
            ChBuild::Disabled => self.ch.get().ok_or_else(|| {
                CoreError::MissingIndex(
                    "this algorithm needs a Contraction Hierarchies index; declare it \
                     with EngineBuilder::with_ch(ChBuild::Lazy) or ChBuild::Eager"
                        .into(),
                )
            }),
            ChBuild::Lazy | ChBuild::Eager => Ok(self.ch.get_or_init(|| {
                ContractionHierarchy::build(self.dataset.graph(), ChParams::default())
            })),
        }
    }

    /// Builds (or replaces) the Contraction Hierarchies index.
    #[deprecated(
        since = "0.2.0",
        note = "declare the index at construction time with EngineBuilder::with_ch(ChBuild::Lazy | ChBuild::Eager)"
    )]
    pub fn build_contraction_hierarchy(&mut self) {
        self.ch = OnceLock::new();
        let _ = self.ch.set(ContractionHierarchy::build(
            self.dataset.graph(),
            ChParams::default(),
        ));
    }

    /// The pre-computed social neighbour cache, when already built.
    ///
    /// Under [`SocialCachePlan::Lazy`] the cache only exists after the
    /// first query that needed it; use
    /// [`GeoSocialEngine::require_social_cache`] to force it.
    pub fn social_cache(&self) -> Option<&SocialNeighborCache> {
        self.social_cache.get()
    }

    /// Returns the social neighbour cache, building it on the spot when the
    /// engine was configured with a [`SocialCachePlan`].
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingIndex`] under [`SocialCachePlan::Disabled`]
    /// (unless a cache was installed through the deprecated
    /// `build_social_cache`).
    pub fn require_social_cache(&self) -> Result<&SocialNeighborCache, CoreError> {
        match &self.cache_plan {
            SocialCachePlan::Disabled => self.social_cache.get().ok_or_else(|| {
                CoreError::MissingIndex(
                    "Algorithm::SfaCached needs the pre-computed social neighbour lists; \
                     declare them with EngineBuilder::cache_social_neighbors(users, t)"
                        .into(),
                )
            }),
            SocialCachePlan::Lazy { users, t } | SocialCachePlan::Eager { users, t } => Ok(self
                .social_cache
                .get_or_init(|| SocialNeighborCache::build(self.dataset.graph(), users, *t))),
        }
    }

    /// Pre-computes the `t` socially closest vertices for each user in
    /// `users` (§5.4).
    #[deprecated(
        since = "0.2.0",
        note = "declare the cache at construction time with EngineBuilder::cache_social_neighbors(users, t)"
    )]
    pub fn build_social_cache(&mut self, users: &[UserId], t: usize) {
        self.install_social_cache(SocialNeighborCache::build(self.dataset.graph(), users, t));
    }

    /// Installs (or replaces) a pre-built social neighbour cache — e.g. one
    /// deserialized from disk, shared between engines, or swapped while
    /// sweeping the list length `t` without rebuilding the base indexes
    /// (the Figure 11 experiment).
    ///
    /// For caches derived from this engine's own graph, prefer declaring a
    /// [`SocialCachePlan`] at construction time.
    pub fn install_social_cache(&mut self, cache: SocialNeighborCache) {
        self.social_cache = OnceLock::new();
        let _ = self.social_cache.set(cache);
    }

    /// The strategy registry the engine dispatches through.
    pub fn strategies(&self) -> &StrategyRegistry {
        &self.strategies
    }

    /// Registers a custom [`AlgorithmStrategy`] (or replaces a built-in
    /// registered under the same name).  Requests select it with
    /// [`QueryRequestBuilder::algorithm`](crate::QueryRequestBuilder::algorithm)
    /// by name.
    ///
    /// Returns the strategy previously registered under that name, so
    /// wrappers can delegate to the original.
    pub fn register_strategy(
        &mut self,
        strategy: Arc<dyn AlgorithmStrategy>,
    ) -> Option<Arc<dyn AlgorithmStrategy>> {
        self.strategies.register(strategy)
    }

    /// A query context pre-sized for this engine's graph.
    ///
    /// Reuse it across queries via [`GeoSocialEngine::run_with`] (or hold a
    /// [`QuerySession`], which does so for you) to avoid the per-query
    /// `O(|V|)` scratch allocation.
    pub fn make_context(&self) -> QueryContext {
        QueryContext::with_capacity(self.dataset.user_count())
    }

    /// A [`QuerySession`] over this engine: the recommended per-worker
    /// query handle (owned reusable context, streaming support).
    pub fn session(&self) -> QuerySession<'_> {
        QuerySession::new(self)
    }

    /// Processes one request.
    ///
    /// This convenience entry point allocates a fresh [`QueryContext`] per
    /// call; query loops should prefer [`GeoSocialEngine::run_with`] / a
    /// [`QuerySession`] (one reused context) or
    /// [`GeoSocialEngine::run_batch`] (one context per worker thread).
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownAlgorithm`] when the request names an
    ///   unregistered strategy.
    /// * [`CoreError::MissingIndex`] when the strategy requires an index
    ///   the engine was not configured to provide.
    /// * [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for
    ///   invalid request fields.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.run_with(request, &mut QueryContext::new())
    }

    /// Processes one request, drawing all search scratch from `ctx`.
    ///
    /// The context is reset before use, so reusing one across queries (of
    /// any algorithm, in any order) never changes results — it only removes
    /// the `O(|V|)` allocation from the per-query hot path.
    pub fn run_with(
        &self,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        let strategy = self.strategies.resolve(request.algorithm().key())?;
        let requires = strategy.requires();
        if requires.contraction_hierarchy {
            self.require_contraction_hierarchy()?;
        }
        if requires.social_cache {
            self.require_social_cache()?;
        }
        strategy.execute(self, request, ctx)
    }

    /// Starts a pull-lazy execution of one request, returning a resumable
    /// [`QueryDriver`](crate::QueryDriver) that borrows this engine and
    /// `ctx` for its lifetime.
    ///
    /// This is the low-level streaming primitive: the caller steps the
    /// machine and drains finalized entries at its own pace (the
    /// property-based test-suite drives it with arbitrary suspension
    /// schedules).  Most callers want [`GeoSocialEngine::stream_with`] or
    /// [`QuerySession::stream`], which wrap the driver in an iterator.
    ///
    /// # Errors
    ///
    /// Same as [`GeoSocialEngine::run_with`].
    pub fn begin_stream<'a>(
        &'a self,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<Box<dyn crate::QueryDriver + 'a>, CoreError> {
        let strategy = self.strategies.resolve(request.algorithm().key())?;
        let requires = strategy.requires();
        if requires.contraction_hierarchy {
            self.require_contraction_hierarchy()?;
        }
        if requires.social_cache {
            self.require_social_cache()?;
        }
        strategy.begin_stream(self, request, ctx)
    }

    /// Processes one request as a pull-lazy [`QueryStream`](crate::QueryStream)
    /// drawing all search scratch from `ctx`; see [`QuerySession::stream`]
    /// for the semantics.
    ///
    /// # Errors
    ///
    /// Same as [`GeoSocialEngine::run_with`].
    pub fn stream_with<'a>(
        &'a self,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<crate::QueryStream<'a>, CoreError> {
        Ok(crate::QueryStream::new(
            self.begin_stream(request, ctx)?,
            request.k(),
        ))
    }

    /// Processes `request` once per algorithm in `algorithms`, returning
    /// `(algorithm, result)` pairs.  Used by the experiment harness to
    /// compare methods on identical queries (the request's own algorithm
    /// field is overridden).
    pub fn run_each(
        &self,
        algorithms: &[Algorithm],
        request: &QueryRequest,
    ) -> Result<Vec<(Algorithm, QueryResult)>, CoreError> {
        let mut ctx = self.make_context();
        algorithms
            .iter()
            .map(|&a| {
                let req = request.clone().with_algorithm(a);
                self.run_with(&req, &mut ctx).map(|r| (a, r))
            })
            .collect()
    }

    /// Processes a batch of requests in parallel across worker threads, one
    /// [`QueryContext`] per worker.
    ///
    /// Results arrive in input order and are identical to running
    /// [`GeoSocialEngine::run`] sequentially on each element — every query
    /// is computed independently from shared read-only indexes, so thread
    /// count and scheduling cannot affect answers (the test-suite asserts
    /// this, including under concurrent lazy index initialization).
    /// Per-element errors (e.g. an unknown user in the middle of a batch)
    /// are reported in place without failing the whole batch.
    ///
    /// Uses all available CPU parallelism; see
    /// [`GeoSocialEngine::run_batch_with_threads`] to pin the worker count.
    pub fn run_batch(&self, batch: &[QueryRequest]) -> Vec<Result<QueryResult, CoreError>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run_batch_with_threads(batch, threads)
    }

    /// [`GeoSocialEngine::run_batch`] with an explicit worker count
    /// (clamped to the batch size; `0` and `1` run inline on the calling
    /// thread).
    pub fn run_batch_with_threads(
        &self,
        batch: &[QueryRequest],
        threads: usize,
    ) -> Vec<Result<QueryResult, CoreError>> {
        let threads = threads.min(batch.len());
        if threads <= 1 {
            let mut ctx = self.make_context();
            return batch
                .iter()
                .map(|request| self.run_with(request, &mut ctx))
                .collect();
        }

        // Workers pull indices from a shared atomic counter (dynamic load
        // balancing: query cost varies wildly with the query user's
        // neighbourhood), collect `(index, result)` pairs locally, and the
        // batch is stitched back into input order at the end.
        let next = AtomicUsize::new(0);
        let mut results: Vec<(usize, Result<QueryResult, CoreError>)> =
            Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ctx = self.make_context();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(request) = batch.get(i) else { break };
                            local.push((i, self.run_with(request, &mut ctx)));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                results.extend(worker.join().expect("batch worker panicked"));
            }
        });
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, result)| result).collect()
    }

    /// Processes one SSRQ query with the chosen algorithm.
    #[deprecated(
        since = "0.2.0",
        note = "build a QueryRequest and use GeoSocialEngine::run instead"
    )]
    #[allow(deprecated)]
    pub fn query(
        &self,
        algorithm: Algorithm,
        params: &crate::QueryParams,
    ) -> Result<QueryResult, CoreError> {
        self.run(&QueryRequest::from(*params).with_algorithm(algorithm))
    }

    /// Processes one SSRQ query with the chosen algorithm, drawing all
    /// search scratch from `ctx`.
    #[deprecated(
        since = "0.2.0",
        note = "build a QueryRequest and use GeoSocialEngine::run_with instead"
    )]
    #[allow(deprecated)]
    pub fn query_with(
        &self,
        algorithm: Algorithm,
        params: &crate::QueryParams,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        self.run_with(&QueryRequest::from(*params).with_algorithm(algorithm), ctx)
    }

    /// Processes the same query with every algorithm in `algorithms`.
    #[deprecated(
        since = "0.2.0",
        note = "build a QueryRequest and use GeoSocialEngine::run_each instead"
    )]
    #[allow(deprecated)]
    pub fn query_all(
        &self,
        algorithms: &[Algorithm],
        params: &crate::QueryParams,
    ) -> Result<Vec<(Algorithm, QueryResult)>, CoreError> {
        self.run_each(algorithms, &QueryRequest::from(*params))
    }

    /// Processes a batch of legacy parameter triples in parallel.
    #[deprecated(
        since = "0.2.0",
        note = "build QueryRequests and use GeoSocialEngine::run_batch instead"
    )]
    #[allow(deprecated)]
    pub fn query_batch(
        &self,
        algorithm: Algorithm,
        batch: &[crate::QueryParams],
    ) -> Vec<Result<QueryResult, CoreError>> {
        let requests: Vec<QueryRequest> = batch
            .iter()
            .map(|&p| QueryRequest::from(p).with_algorithm(algorithm))
            .collect();
        self.run_batch(&requests)
    }

    /// [`GeoSocialEngine::query_batch`] with an explicit worker count.
    #[deprecated(
        since = "0.2.0",
        note = "build QueryRequests and use GeoSocialEngine::run_batch_with_threads instead"
    )]
    #[allow(deprecated)]
    pub fn query_batch_with_threads(
        &self,
        algorithm: Algorithm,
        batch: &[crate::QueryParams],
        threads: usize,
    ) -> Vec<Result<QueryResult, CoreError>> {
        let requests: Vec<QueryRequest> = batch
            .iter()
            .map(|&p| QueryRequest::from(p).with_algorithm(algorithm))
            .collect();
        self.run_batch_with_threads(&requests, threads)
    }

    /// Reports a new location for `user`, updating the dataset, the SPA/TSA
    /// grid and the AIS index (including its social summaries) — the
    /// location-update path of §5.1.
    ///
    /// # Auxiliary-index staleness
    ///
    /// The lazily-built Contraction Hierarchies index and the pre-computed
    /// social neighbour cache are functions of the **social graph only**
    /// (shortcuts and socially-closest lists never read a location), so
    /// location churn cannot invalidate them — whether they were built
    /// before or after the update.  `tests/dynamic_updates.rs` pins this
    /// down by checking `*-CH` and `AIS-Cache` queries against the
    /// exhaustive oracle across churn interleaved with lazy index builds.
    /// Any future mutation that *does* touch the graph (edge insertion,
    /// re-weighting) must reset the `OnceLock`-held indexes.
    pub fn update_location(&mut self, user: UserId, location: Point) -> Result<(), CoreError> {
        self.dataset.check_user(user)?;
        if !location.is_finite() {
            return Err(CoreError::InvalidParameter(format!(
                "non-finite location {location}"
            )));
        }
        self.dataset.set_location(user, Some(location))?;
        // The grids clamp points into their bounds, so a location slightly
        // outside the original bounding box is still handled.
        self.grid.insert(user, location);
        self.ais.update_location(user, location, &self.landmarks)?;
        Ok(())
    }

    /// Removes the location of `user` (the user becomes "infinitely far" in
    /// the spatial domain).
    ///
    /// Like [`GeoSocialEngine::update_location`], this refreshes every
    /// location-dependent index and leaves the graph-only auxiliary indexes
    /// (CH, social cache) untouched — they cannot go stale under location
    /// churn.
    pub fn remove_location(&mut self, user: UserId) -> Result<(), CoreError> {
        self.dataset.check_user(user)?;
        if self.dataset.location(user).is_some() {
            self.dataset.set_location(user, None)?;
            self.grid.remove(user)?;
            self.ais.remove_user(user, &self.landmarks)?;
        }
        Ok(())
    }
}

fn expanded(bounds: Rect) -> Rect {
    let margin = (bounds.width().max(bounds.height()) * 1e-6).max(1e-9);
    bounds.expanded(margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;

    fn request(user: UserId, k: usize, alpha: f64, algorithm: Algorithm) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .algorithm(algorithm)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 50u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.3 + (i % 6) as f64 * 0.2)
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            builder
                .add_edge(i, (i + 13) % n, 0.9 + (i % 3) as f64 * 0.4)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 10 == 9 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.618) % 1.0,
                        ((i as f64) * 0.382) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn engine() -> GeoSocialEngine {
        GeoSocialEngine::builder(dataset())
            .granularity(4)
            .build()
            .unwrap()
    }

    fn full_engine(query_users: &[UserId]) -> GeoSocialEngine {
        GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_ch(ChBuild::Lazy)
            .cache_social_neighbors(query_users.to_vec(), 60)
            .build()
            .unwrap()
    }

    #[test]
    fn every_algorithm_agrees_with_the_oracle() {
        let query_users = [0u32, 7, 23, 41];
        let engine = full_engine(&query_users);
        for &user in &query_users {
            for &alpha in &[0.3, 0.7] {
                let expected = engine
                    .run(&request(user, 6, alpha, Algorithm::Exhaustive))
                    .unwrap();
                for algorithm in Algorithm::ALL {
                    let got = engine.run(&request(user, 6, alpha, algorithm)).unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "{} disagrees with the oracle for user {user}, alpha {alpha}:\n  got {:?}\n  expected {:?}",
                        algorithm.name(),
                        got.users(),
                        expected.users()
                    );
                }
            }
        }
        // Both lazy indexes were built on demand.
        assert!(engine.contraction_hierarchy().is_some());
        assert!(engine.social_cache().is_some());
    }

    #[test]
    fn disabled_ch_yields_a_typed_missing_index_error() {
        let engine = engine();
        for algorithm in [Algorithm::SfaCh, Algorithm::SpaCh, Algorithm::TsaCh] {
            assert!(algorithm.needs_ch());
            assert!(matches!(
                engine.run(&request(0, 5, 0.5, algorithm)),
                Err(CoreError::MissingIndex(_))
            ));
        }
        assert!(engine.contraction_hierarchy().is_none());
    }

    #[test]
    fn lazy_ch_is_built_on_first_use_only() {
        let engine = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_ch(ChBuild::Lazy)
            .build()
            .unwrap();
        assert!(engine.contraction_hierarchy().is_none());
        let oracle = engine
            .run(&request(0, 5, 0.5, Algorithm::Exhaustive))
            .unwrap();
        // Non-CH queries must not trigger the build.
        assert!(engine.contraction_hierarchy().is_none());
        let got = engine.run(&request(0, 5, 0.5, Algorithm::SfaCh)).unwrap();
        assert!(engine.contraction_hierarchy().is_some());
        assert!(got.same_users_and_scores(&oracle, 1e-9));
    }

    #[test]
    fn disabled_social_cache_yields_a_typed_missing_index_error() {
        let engine = engine();
        assert!(Algorithm::SfaCached.needs_social_cache());
        assert!(matches!(
            engine.run(&request(0, 5, 0.5, Algorithm::SfaCached)),
            Err(CoreError::MissingIndex(_))
        ));
    }

    #[test]
    fn unknown_algorithm_names_are_rejected() {
        let engine = engine();
        let req = QueryRequest::for_user(0)
            .algorithm("NOT-REGISTERED")
            .build()
            .unwrap();
        assert!(matches!(
            engine.run(&req),
            Err(CoreError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn custom_strategies_can_be_registered_and_dispatched() {
        struct Oracle2;
        impl crate::AlgorithmStrategy for Oracle2 {
            fn name(&self) -> &str {
                "ORACLE-2"
            }
            fn execute(
                &self,
                engine: &GeoSocialEngine,
                request: &QueryRequest,
                ctx: &mut QueryContext,
            ) -> Result<QueryResult, CoreError> {
                crate::algorithms::exhaustive_query(engine.dataset(), request, ctx)
            }
        }
        let mut engine = engine();
        assert!(engine.register_strategy(Arc::new(Oracle2)).is_none());
        assert!(engine.strategies().names().contains(&"ORACLE-2"));
        let via_custom = engine
            .run(
                &QueryRequest::for_user(3)
                    .k(5)
                    .alpha(0.4)
                    .algorithm("ORACLE-2")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let via_builtin = engine
            .run(&request(3, 5, 0.4, Algorithm::Exhaustive))
            .unwrap();
        assert_eq!(via_custom.ranked, via_builtin.ranked);
    }

    #[test]
    fn index_params_validation_and_derived_grid_side() {
        assert!(IndexParams::default().validate().is_ok());
        let bad = IndexParams {
            granularity: 0,
            ..IndexParams::default()
        };
        assert!(bad.validate().is_err());
        let bad = IndexParams {
            num_landmarks: 0,
            ..IndexParams::default()
        };
        assert!(bad.validate().is_err());
        let cfg = IndexParams {
            granularity: 20,
            ais_levels: 2,
            ..IndexParams::default()
        };
        assert_eq!(cfg.spa_grid_side(), 256); // capped
        let cfg = IndexParams {
            granularity: 5,
            ais_levels: 2,
            ..IndexParams::default()
        };
        assert_eq!(cfg.spa_grid_side(), 25);
    }

    #[test]
    fn location_updates_keep_all_algorithms_consistent() {
        let mut engine = engine();
        // Move a handful of users around, including one that previously had
        // no location, then re-verify agreement between AIS and the oracle.
        engine.update_location(9, Point::new(0.42, 0.13)).unwrap();
        engine.update_location(3, Point::new(0.91, 0.88)).unwrap();
        engine.update_location(0, Point::new(0.05, 0.95)).unwrap();
        engine.remove_location(17).unwrap();
        for algorithm in [
            Algorithm::Sfa,
            Algorithm::Spa,
            Algorithm::Tsa,
            Algorithm::Ais,
        ] {
            let expected = engine
                .run(&request(0, 5, 0.5, Algorithm::Exhaustive))
                .unwrap();
            let got = engine.run(&request(0, 5, 0.5, algorithm)).unwrap();
            assert!(
                got.same_users_and_scores(&expected, 1e-9),
                "{} inconsistent after location updates",
                algorithm.name()
            );
        }
    }

    #[test]
    fn run_each_returns_one_result_per_algorithm() {
        let engine = engine();
        let results = engine
            .run_each(
                &[Algorithm::Sfa, Algorithm::Ais],
                &QueryRequest::for_user(5).k(4).alpha(0.4).build().unwrap(),
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, Algorithm::Sfa);
        assert!(results[0].1.same_users_and_scores(&results[1].1, 1e-9));
    }

    #[test]
    fn algorithm_names_are_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let graph = GraphBuilder::new(0).build();
        let err = GeoSocialDataset::new(graph, vec![]);
        // An empty dataset cannot even be constructed (no located user).
        assert!(err.is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_return_bit_identical_results() {
        let query_users = [0u32, 7, 23];
        let mut legacy = GeoSocialEngine::build(
            dataset(),
            EngineConfig {
                granularity: 4,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        legacy.build_contraction_hierarchy();
        legacy.build_social_cache(&query_users, 60);
        let modern = full_engine(&query_users);
        for &user in &query_users {
            let params = crate::QueryParams::new(user, 6, 0.4);
            for algorithm in Algorithm::ALL {
                let old = legacy.query(algorithm, &params).unwrap();
                let new = modern.run(&request(user, 6, 0.4, algorithm)).unwrap();
                assert_eq!(old.ranked, new.ranked, "{}", algorithm.name());
            }
        }
        // Legacy batch shim matches the request batch path bit for bit.
        let params: Vec<crate::QueryParams> = query_users
            .iter()
            .map(|&u| crate::QueryParams::new(u, 6, 0.4))
            .collect();
        let requests: Vec<QueryRequest> = query_users
            .iter()
            .map(|&u| request(u, 6, 0.4, Algorithm::Ais))
            .collect();
        let old = legacy.query_batch_with_threads(Algorithm::Ais, &params, 2);
        let new = modern.run_batch_with_threads(&requests, 2);
        for (o, n) in old.iter().zip(new.iter()) {
            assert_eq!(o.as_ref().unwrap().ranked, n.as_ref().unwrap().ranked);
        }
    }
}
