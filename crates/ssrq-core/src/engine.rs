use crate::ais::AisIndex;
use crate::algorithms::SocialNeighborCache;
use crate::planner::{PlannerStrategy, QueryPlanner};
use crate::strategy::AlgorithmStrategy;
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QuerySession,
    StrategyRegistry, UserId,
};
use ssrq_graph::{ContractionHierarchy, LandmarkSelection, LandmarkSet};
use ssrq_spatial::{Point, Rect, UniformGrid};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The SSRQ processing algorithm to run for a query.
///
/// All algorithms return the same (exact) result set; they differ only in
/// how much work they perform — which is precisely what the paper's
/// evaluation measures.
///
/// Each variant corresponds to a built-in
/// [`AlgorithmStrategy`](crate::AlgorithmStrategy) registered under
/// [`Algorithm::name`]; custom strategies live alongside them in the
/// engine's [`StrategyRegistry`] and are requested by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Brute-force oracle: full Dijkstra plus a linear scan.
    Exhaustive,
    /// Social First Approach (§4.1).
    Sfa,
    /// Spatial First Approach (§4.1).
    Spa,
    /// Twofold Search Approach with round-robin probing and landmark-based
    /// candidate pruning (the "TSA" configuration of the evaluation).
    Tsa,
    /// TSA probing with the Quick Combine heuristic.
    TsaQc,
    /// Aggregate Index Search without computation sharing (Figure 10's
    /// AIS-BID).
    AisBid,
    /// AIS with computation sharing but without delayed evaluation (AIS⁻).
    AisMinus,
    /// AIS with all optimizations — the paper's best method.
    Ais,
    /// SFA with a Contraction Hierarchies distance module (Figure 8).
    SfaCh,
    /// SPA with a Contraction Hierarchies distance module (Figure 8).
    SpaCh,
    /// TSA with a Contraction Hierarchies distance module (Figure 8).
    TsaCh,
    /// SFA over pre-computed social neighbour lists with AIS fallback
    /// (§5.4, "AIS-Cache" in Figure 11).
    SfaCached,
    /// Adaptive planner choice: pick the concrete algorithm per query from
    /// cheap signals plus online [`QueryStats`](crate::QueryStats) feedback,
    /// and serve repeated queries from a churn-aware hot-result cache.  Not
    /// a paper method (and therefore absent from [`Algorithm::ALL`]) — see
    /// [`QueryPlanner`](crate::QueryPlanner).
    Auto,
}

impl Algorithm {
    /// Every **paper** algorithm variant, in the order they appear in the
    /// paper.  [`Algorithm::Auto`] is deliberately not listed: it is a
    /// meta-strategy that delegates to one of these twelve, and every
    /// exactness/agreement sweep iterating `ALL` should compare concrete
    /// methods.
    pub const ALL: [Algorithm; 12] = [
        Algorithm::Exhaustive,
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
        Algorithm::SfaCh,
        Algorithm::SpaCh,
        Algorithm::TsaCh,
        Algorithm::SfaCached,
    ];

    /// Short display name (matches the labels used in the paper's figures)
    /// and the key the built-in strategy is registered under.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Exhaustive => "EXH",
            Algorithm::Sfa => "SFA",
            Algorithm::Spa => "SPA",
            Algorithm::Tsa => "TSA",
            Algorithm::TsaQc => "TSA-QC",
            Algorithm::AisBid => "AIS-BID",
            Algorithm::AisMinus => "AIS-",
            Algorithm::Ais => "AIS",
            Algorithm::SfaCh => "SFA-CH",
            Algorithm::SpaCh => "SPA-CH",
            Algorithm::TsaCh => "TSA-CH",
            Algorithm::SfaCached => "AIS-Cache",
            Algorithm::Auto => "AUTO",
        }
    }

    /// Resolves a display name (as produced by [`Algorithm::name`]) back to
    /// the variant — the lookup the wire protocol uses to decode built-in
    /// algorithm specs, covering the twelve paper methods *and*
    /// [`Algorithm::Auto`].
    pub fn from_name(name: &str) -> Option<Algorithm> {
        if name == Algorithm::Auto.name() {
            return Some(Algorithm::Auto);
        }
        Algorithm::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// Returns `true` when the algorithm needs a Contraction Hierarchies
    /// index (see [`ChBuild`]).
    pub fn needs_ch(&self) -> bool {
        matches!(self, Algorithm::SfaCh | Algorithm::SpaCh | Algorithm::TsaCh)
    }

    /// Returns `true` when the algorithm needs a pre-computed social
    /// neighbour cache (see [`SocialCachePlan`]).
    pub fn needs_social_cache(&self) -> bool {
        matches!(self, Algorithm::SfaCached)
    }
}

/// Index-construction parameters of a [`GeoSocialEngine`] (the system
/// parameters of Table 3 in the paper), as configured through
/// [`EngineBuilder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// Partitioning granularity `s`: every AIS index node has `s × s`
    /// children, and the single-level grid used by SPA/TSA has
    /// `s^levels × s^levels` cells (capped at 256 per axis).
    pub granularity: u32,
    /// Number of retained AIS grid levels (the paper keeps 2).
    pub ais_levels: u32,
    /// Number of landmarks `M` (the paper fine-tunes M = 8).
    pub num_landmarks: usize,
    /// Landmark selection strategy.
    pub landmark_selection: LandmarkSelection,
    /// Seed for randomized landmark selection.
    pub landmark_seed: u64,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            granularity: 10,
            ais_levels: 2,
            num_landmarks: 8,
            landmark_selection: LandmarkSelection::FarthestFirst,
            landmark_seed: 0x5537_2301,
        }
    }
}

impl IndexParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.granularity == 0 {
            return Err(CoreError::InvalidParameter(
                "granularity s must be at least 1".into(),
            ));
        }
        if self.ais_levels == 0 {
            return Err(CoreError::InvalidParameter(
                "the AIS index needs at least one level".into(),
            ));
        }
        if self.num_landmarks == 0 {
            return Err(CoreError::InvalidParameter(
                "at least one landmark is required".into(),
            ));
        }
        Ok(())
    }

    /// The side length (cells per axis) of the single-level grid used by the
    /// SPA/TSA spatial search.
    pub fn spa_grid_side(&self) -> u32 {
        let side = (self.granularity as u64).pow(self.ais_levels).min(256);
        side.max(1) as u32
    }
}

/// How (and whether) the engine provides the Contraction Hierarchies index
/// required by the `*-CH` baselines.
///
/// CH preprocessing is by far the most expensive index build (and, per the
/// paper, of little use on social networks), so it defaults to
/// [`ChBuild::Disabled`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ChBuild {
    /// No CH index: a CH-requiring strategy fails with
    /// [`CoreError::MissingIndex`].
    #[default]
    Disabled,
    /// Build the index on first use.  The build runs behind a `OnceLock`,
    /// so concurrent batch workers trigger exactly one build and the engine
    /// stays `Send + Sync`.
    Lazy,
    /// Build the index during [`EngineBuilder::build`].
    Eager,
}

/// How (and whether) the engine provides the pre-computed social neighbour
/// lists of §5.4 (required by [`Algorithm::SfaCached`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SocialCachePlan {
    /// No cache: [`Algorithm::SfaCached`] fails with
    /// [`CoreError::MissingIndex`].
    #[default]
    Disabled,
    /// Pre-compute the `t` socially closest vertices for each user in
    /// `users` on first use (behind a `OnceLock`, like [`ChBuild::Lazy`]).
    Lazy {
        /// The users to materialize lists for (typically the query
        /// workload).
        users: Vec<UserId>,
        /// List length `t`.
        t: usize,
    },
    /// Pre-compute the lists during [`EngineBuilder::build`].
    Eager {
        /// The users to materialize lists for.
        users: Vec<UserId>,
        /// List length `t`.
        t: usize,
    },
}

/// Fluent construction of a [`GeoSocialEngine`].
///
/// ```
/// use ssrq_core::{ChBuild, GeoSocialDataset, GeoSocialEngine};
/// use ssrq_graph::GraphBuilder;
/// use ssrq_spatial::Point;
///
/// let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
/// let locations = vec![
///     Some(Point::new(0.1, 0.5)),
///     Some(Point::new(0.9, 0.5)),
///     Some(Point::new(0.2, 0.5)),
/// ];
/// let dataset = GeoSocialDataset::new(graph, locations).unwrap();
/// let engine = GeoSocialEngine::builder(dataset)
///     .granularity(10)
///     .landmarks(4)
///     .with_ch(ChBuild::Lazy)
///     .build()
///     .unwrap();
/// assert!(engine.contraction_hierarchy().is_none()); // not built yet
/// ```
///
/// # Shared immutable artifacts
///
/// The graph-only artifacts of an engine — the landmark tables, the
/// Contraction Hierarchies index and the social neighbour cache — depend on
/// the social graph but never on user locations, so many engines over the
/// same graph (the shards of a partitioned deployment, an A/B pair, a
/// replica set) can consume **one** built instance through `Arc` handles
/// instead of building N identical copies:
///
/// * [`EngineBuilder::with_shared_landmarks`],
///   [`EngineBuilder::with_shared_ch`] and
///   [`EngineBuilder::with_shared_social_cache`] install a pre-built
///   artifact;
/// * [`EngineBuilder::share_graph_artifacts_with`] adopts everything
///   shareable from an already-built sibling engine at once — including
///   the *lazy* slots, so an index declared `Lazy` is still built at most
///   once across all adopters;
/// * the lazily built Contraction Hierarchies index additionally lives in
///   the dataset's `Arc`-backed core, so even engines built independently
///   from clones of one dataset race into a single build.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    dataset: GeoSocialDataset,
    params: IndexParams,
    ch: ChBuild,
    social_cache: SocialCachePlan,
    shared_landmarks: Option<Arc<LandmarkSet>>,
    shared_ch: Option<Arc<ContractionHierarchy>>,
    shared_social_cache: Option<Arc<SocialNeighborCache>>,
    /// Adopted social-cache *slot* (from a donor engine): lets two engines
    /// share one lazily built cache without building it up front.
    adopted_cache_slot: Option<Arc<OnceLock<Arc<SocialNeighborCache>>>>,
    /// The donor's dataset, kept to verify core identity at build time.
    donor_dataset: Option<GeoSocialDataset>,
}

impl EngineBuilder {
    /// Starts a builder over `dataset` with [`IndexParams::default`], no CH
    /// index and no social cache.
    pub fn new(dataset: GeoSocialDataset) -> Self {
        EngineBuilder {
            dataset,
            params: IndexParams::default(),
            ch: ChBuild::Disabled,
            social_cache: SocialCachePlan::Disabled,
            shared_landmarks: None,
            shared_ch: None,
            shared_social_cache: None,
            adopted_cache_slot: None,
            donor_dataset: None,
        }
    }

    /// Sets the partitioning granularity `s`.
    pub fn granularity(mut self, s: u32) -> Self {
        self.params.granularity = s;
        self
    }

    /// Sets the number of retained AIS grid levels.
    pub fn ais_levels(mut self, levels: u32) -> Self {
        self.params.ais_levels = levels;
        self
    }

    /// Sets the number of landmarks `M`.
    pub fn landmarks(mut self, m: usize) -> Self {
        self.params.num_landmarks = m;
        self
    }

    /// Sets the landmark selection strategy.
    pub fn landmark_selection(mut self, selection: LandmarkSelection) -> Self {
        self.params.landmark_selection = selection;
        self
    }

    /// Sets the seed for randomized landmark selection.
    pub fn landmark_seed(mut self, seed: u64) -> Self {
        self.params.landmark_seed = seed;
        self
    }

    /// Replaces the full parameter record.
    pub fn index_params(mut self, params: IndexParams) -> Self {
        self.params = params;
        self
    }

    /// Declares the Contraction Hierarchies index ([`ChBuild::Disabled`] by
    /// default).
    pub fn with_ch(mut self, mode: ChBuild) -> Self {
        self.ch = mode;
        self
    }

    /// Declares the social neighbour cache ([`SocialCachePlan::Disabled`]
    /// by default).
    pub fn with_social_cache(mut self, plan: SocialCachePlan) -> Self {
        self.social_cache = plan;
        self
    }

    /// Convenience for [`EngineBuilder::with_social_cache`]: lazily
    /// materialize the `t` socially closest vertices of each user in
    /// `users` on first [`Algorithm::SfaCached`] query.
    pub fn cache_social_neighbors(self, users: impl Into<Vec<UserId>>, t: usize) -> Self {
        self.with_social_cache(SocialCachePlan::Lazy {
            users: users.into(),
            t,
        })
    }

    /// Installs a pre-built, shared landmark set instead of building one —
    /// e.g. the set of a sibling engine over the same graph (a shard, a
    /// replica) or one deserialized from disk.
    ///
    /// The set must cover the dataset's graph: its
    /// [`node_count`](LandmarkSet::node_count) must equal the user count
    /// (checked at [`EngineBuilder::build`]).  A shared set takes precedence
    /// over the landmark fields of [`IndexParams`]; the caller is
    /// responsible for it matching the configuration it claims (the sharded
    /// coordinator guarantees this by configuring every shard identically).
    pub fn with_shared_landmarks(mut self, landmarks: Arc<LandmarkSet>) -> Self {
        self.shared_landmarks = Some(landmarks);
        self
    }

    /// Installs a pre-built, shared Contraction Hierarchies index instead
    /// of (lazily) building one — the `Arc` handle can simultaneously serve
    /// any number of engines over the same graph.
    ///
    /// An installed index takes precedence over the declared [`ChBuild`]
    /// mode: `require_contraction_hierarchy` returns it without ever
    /// building, even under [`ChBuild::Disabled`].
    pub fn with_shared_ch(mut self, ch: Arc<ContractionHierarchy>) -> Self {
        self.shared_ch = Some(ch);
        self
    }

    /// Installs a pre-built, shared social neighbour cache instead of
    /// (lazily) building one; see
    /// [`GeoSocialEngine::install_social_cache`] for the post-build
    /// equivalent.  Takes precedence over the declared [`SocialCachePlan`].
    pub fn with_shared_social_cache(mut self, cache: Arc<SocialNeighborCache>) -> Self {
        self.shared_social_cache = Some(cache);
        self
    }

    /// Adopts every shareable graph-only artifact of `donor` at once: its
    /// landmark set (by `Arc`), its installed Contraction Hierarchies index
    /// (if any; the *lazily* built CH is already shared through the dataset
    /// core), and its social-cache **slot** — so a cache declared `Lazy` on
    /// both engines is built at most once, by whichever engine first needs
    /// it, and both observe the same `Arc`.
    ///
    /// This is the constructor the sharded coordinator uses: shard 0 builds
    /// the graph-only indexes once and shards `1..n` adopt them.  The
    /// builder's dataset must share the donor's immutable core
    /// ([`GeoSocialDataset::shares_core_with`]); [`EngineBuilder::build`]
    /// fails with [`CoreError::InvalidParameter`] otherwise.  The caller
    /// must configure this builder with the same index parameters and cache
    /// plan as the donor — adopted artifacts take precedence over what the
    /// parameters would have built.
    pub fn share_graph_artifacts_with(mut self, donor: &GeoSocialEngine) -> Self {
        self.shared_landmarks = Some(Arc::clone(&donor.landmarks));
        if let Some(ch) = &donor.installed_ch {
            self.shared_ch = Some(Arc::clone(ch));
        }
        self.adopted_cache_slot = Some(Arc::clone(&donor.social_cache));
        self.donor_dataset = Some(donor.dataset.clone());
        self
    }

    /// Builds the landmark tables, the SPA/TSA grid and the AIS aggregate
    /// index — or adopts the shared instances installed through the
    /// `with_shared_*` methods — plus any eagerly declared auxiliary index,
    /// and returns the engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for invalid index parameters, a
    /// shared landmark set over the wrong graph size, or a
    /// [`EngineBuilder::share_graph_artifacts_with`] donor whose dataset
    /// does not share this builder's core;
    /// [`CoreError::InvalidDataset`] for an empty dataset.
    pub fn build(self) -> Result<GeoSocialEngine, CoreError> {
        let EngineBuilder {
            dataset,
            params,
            ch: ch_mode,
            social_cache: cache_plan,
            shared_landmarks,
            shared_ch,
            shared_social_cache,
            adopted_cache_slot,
            donor_dataset,
        } = self;
        params.validate()?;
        if let SocialCachePlan::Lazy { t, .. } | SocialCachePlan::Eager { t, .. } = &cache_plan {
            if *t == 0 {
                return Err(CoreError::InvalidParameter(
                    "the social cache list length t must be at least 1".into(),
                ));
            }
        }
        if dataset.user_count() == 0 {
            return Err(CoreError::InvalidDataset("the dataset has no users".into()));
        }
        if let Some(donor) = &donor_dataset {
            if !donor.shares_core_with(&dataset) {
                return Err(CoreError::InvalidParameter(
                    "share_graph_artifacts_with requires a dataset sharing the donor's \
                     immutable core (clone or restrict_locations view of the same dataset)"
                        .into(),
                ));
            }
        }
        if let Some(landmarks) = &shared_landmarks {
            if landmarks.node_count() != dataset.user_count() {
                return Err(CoreError::InvalidParameter(format!(
                    "shared landmark set covers {} vertices but the dataset has {} users",
                    landmarks.node_count(),
                    dataset.user_count()
                )));
            }
        }
        if let Some(ch) = &shared_ch {
            if ch.node_count() != dataset.user_count() {
                return Err(CoreError::InvalidParameter(format!(
                    "shared Contraction Hierarchies index covers {} vertices but the \
                     dataset has {} users",
                    ch.node_count(),
                    dataset.user_count()
                )));
            }
        }
        if let Some(cache) = &shared_social_cache {
            if let Some(bad) = cache
                .covered()
                .find(|&u| u as usize >= dataset.user_count())
            {
                return Err(CoreError::InvalidParameter(format!(
                    "shared social cache covers user {bad} but the dataset has only {} users",
                    dataset.user_count()
                )));
            }
        }
        let landmarks = match shared_landmarks {
            Some(landmarks) => landmarks,
            None => Arc::new(LandmarkSet::build(
                dataset.graph(),
                params.num_landmarks,
                params.landmark_selection,
                params.landmark_seed,
            )?),
        };
        let bounds = expanded(dataset.bounds());
        let grid = UniformGrid::bulk_load(bounds, params.spa_grid_side(), dataset.located_users())?;
        let ais = AisIndex::build(&dataset, &landmarks, params.granularity, params.ais_levels)?;
        let social_cache = match (shared_social_cache, adopted_cache_slot) {
            // An explicitly installed cache wins and detaches from any
            // adopted slot (the donor keeps its own).
            (Some(cache), _) => Arc::new(OnceLock::from(cache)),
            (None, Some(slot)) => slot,
            (None, None) => Arc::new(OnceLock::new()),
        };
        let planner = Arc::new(QueryPlanner::default());
        let mut strategies = StrategyRegistry::with_builtins();
        // Replace the detached built-in "AUTO" entry with a strategy wired
        // to *this* engine's planner, so location updates invalidate its
        // hot-result cache.
        strategies.register(Arc::new(PlannerStrategy::new(Arc::clone(&planner))));
        let engine = GeoSocialEngine {
            dataset,
            params,
            landmarks,
            grid,
            ais,
            ch_mode,
            installed_ch: shared_ch,
            cache_plan,
            social_cache,
            strategies,
            planner,
        };
        if engine.ch_mode == ChBuild::Eager {
            engine.require_contraction_hierarchy()?;
        }
        if matches!(engine.cache_plan, SocialCachePlan::Eager { .. }) {
            engine.require_social_cache()?;
        }
        Ok(engine)
    }
}

/// The SSRQ query engine: owns the dataset, the spatial indexes, the
/// landmark tables and the (lazily built) auxiliary indexes, and dispatches
/// [`QueryRequest`]s through its [`StrategyRegistry`].
///
/// # Memory model
///
/// The engine separates **shared immutable** artifacts from **per-engine
/// mutable** state.  The social graph (through the dataset's `Arc`-backed
/// core), the landmark set, the Contraction Hierarchies index and the
/// social neighbour cache are graph-only and held by `Arc` handles: clones
/// of the engine — and sibling engines built with
/// [`EngineBuilder::share_graph_artifacts_with`] — reference one instance.
/// The location vector, the SPA/TSA grid and the AIS aggregate index depend
/// on locations and stay per-engine (they are what
/// [`GeoSocialEngine::update_location`] mutates).
#[derive(Debug)]
pub struct GeoSocialEngine {
    dataset: GeoSocialDataset,
    params: IndexParams,
    landmarks: Arc<LandmarkSet>,
    grid: UniformGrid,
    ais: AisIndex,
    ch_mode: ChBuild,
    /// A pre-built CH installed through [`EngineBuilder::with_shared_ch`];
    /// takes precedence over the lazily built, core-shared index.
    installed_ch: Option<Arc<ContractionHierarchy>>,
    cache_plan: SocialCachePlan,
    /// Write-once slot for the social neighbour cache.  The slot itself is
    /// behind an `Arc` so sibling engines (shards) can adopt it and share
    /// one lazy build; see [`EngineBuilder::share_graph_artifacts_with`].
    social_cache: Arc<OnceLock<Arc<SocialNeighborCache>>>,
    strategies: StrategyRegistry,
    /// The adaptive planner behind [`Algorithm::Auto`] — per-engine, like
    /// every location-dependent structure (its hot-result cache is
    /// invalidated by *this* engine's location updates).
    planner: Arc<QueryPlanner>,
}

impl Clone for GeoSocialEngine {
    /// Cloning shares the graph-only `Arc` artifacts but gives the clone a
    /// **fresh planner** (and re-registers a fresh `"AUTO"` strategy over
    /// it): the clones' location vectors diverge independently, and a
    /// shared hot-result cache would let one clone serve answers computed
    /// in the other's world.  Custom strategies registered by name are
    /// carried over untouched.
    fn clone(&self) -> GeoSocialEngine {
        let planner = Arc::new(QueryPlanner::new(self.planner.config()));
        let mut strategies = self.strategies.clone();
        strategies.register(Arc::new(PlannerStrategy::new(Arc::clone(&planner))));
        GeoSocialEngine {
            dataset: self.dataset.clone(),
            params: self.params,
            landmarks: Arc::clone(&self.landmarks),
            grid: self.grid.clone(),
            ais: self.ais.clone(),
            ch_mode: self.ch_mode,
            installed_ch: self.installed_ch.clone(),
            cache_plan: self.cache_plan.clone(),
            social_cache: Arc::clone(&self.social_cache),
            strategies,
            planner,
        }
    }
}

// The engine holds no interior mutability beyond `OnceLock` (write-once
// lazy index initialization, which is `Sync`): queries take `&self` and
// draw their mutable scratch from a caller-owned `QueryContext`, while
// location updates go through the explicit `&mut self` API.  That makes
// `&engine` safely shareable across the batch-query worker threads; this
// assertion turns any future regression (e.g. an `Rc` or `RefCell`
// slipping into an index) into a compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GeoSocialEngine>();
};

impl GeoSocialEngine {
    /// Starts fluent engine construction; see [`EngineBuilder`].
    pub fn builder(dataset: GeoSocialDataset) -> EngineBuilder {
        EngineBuilder::new(dataset)
    }

    /// The dataset the engine operates on.
    pub fn dataset(&self) -> &GeoSocialDataset {
        &self.dataset
    }

    /// The index-construction parameters.
    pub fn index_params(&self) -> &IndexParams {
        &self.params
    }

    /// The landmark set shared by TSA and AIS.
    pub fn landmarks(&self) -> &LandmarkSet {
        &self.landmarks
    }

    /// The landmark set as a cheaply cloneable `Arc` handle — pass it to
    /// [`EngineBuilder::with_shared_landmarks`] to build sibling engines
    /// over the same graph without repeating the `M` Dijkstra sweeps.
    pub fn shared_landmarks(&self) -> Arc<LandmarkSet> {
        Arc::clone(&self.landmarks)
    }

    /// The AIS aggregate index.
    pub fn ais_index(&self) -> &AisIndex {
        &self.ais
    }

    /// The single-level grid used by the SPA/TSA spatial search.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The Contraction Hierarchies index, when already built.
    ///
    /// Under [`ChBuild::Lazy`] the index only exists after the first query
    /// (of *any* engine over the same dataset core) that needed it; use
    /// [`GeoSocialEngine::require_contraction_hierarchy`] to force it.
    /// Under [`ChBuild::Disabled`] only an index installed through
    /// [`EngineBuilder::with_shared_ch`] is visible.
    pub fn contraction_hierarchy(&self) -> Option<&ContractionHierarchy> {
        if let Some(ch) = &self.installed_ch {
            return Some(ch);
        }
        match self.ch_mode {
            ChBuild::Disabled => None,
            ChBuild::Lazy | ChBuild::Eager => self.dataset.shared_ch().map(|ch| &**ch),
        }
    }

    /// The Contraction Hierarchies index as a cheaply cloneable `Arc`
    /// handle, when already built — pass it to
    /// [`EngineBuilder::with_shared_ch`] to serve further engines from the
    /// same instance, or use `Arc::ptr_eq` to verify two engines share one
    /// build.
    pub fn shared_contraction_hierarchy(&self) -> Option<Arc<ContractionHierarchy>> {
        if let Some(ch) = &self.installed_ch {
            return Some(Arc::clone(ch));
        }
        match self.ch_mode {
            ChBuild::Disabled => None,
            ChBuild::Lazy | ChBuild::Eager => self.dataset.shared_ch().cloned(),
        }
    }

    /// Returns the Contraction Hierarchies index, building it on the spot
    /// when the engine was configured with [`ChBuild::Lazy`] or
    /// [`ChBuild::Eager`].
    ///
    /// The lazily built index lives in the dataset's shared core:
    /// concurrent callers — parallel batch workers, *and* other engines
    /// built over clones of the same dataset (e.g. the shards of one or
    /// several sharded deployments) — trigger exactly one build and observe
    /// the same instance; the rest block until it is ready.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingIndex`] under [`ChBuild::Disabled`] (unless an
    /// index was installed through [`EngineBuilder::with_shared_ch`]).
    pub fn require_contraction_hierarchy(&self) -> Result<&ContractionHierarchy, CoreError> {
        if let Some(ch) = &self.installed_ch {
            return Ok(ch);
        }
        match self.ch_mode {
            ChBuild::Disabled => Err(CoreError::MissingIndex(
                "this algorithm needs a Contraction Hierarchies index; declare it \
                 with EngineBuilder::with_ch(ChBuild::Lazy) or ChBuild::Eager, or \
                 install a shared one with EngineBuilder::with_shared_ch"
                    .into(),
            )),
            ChBuild::Lazy | ChBuild::Eager => Ok(&**self.dataset.shared_ch_or_init()),
        }
    }

    /// The pre-computed social neighbour cache, when already built.
    ///
    /// Under [`SocialCachePlan::Lazy`] the cache only exists after the
    /// first query that needed it; use
    /// [`GeoSocialEngine::require_social_cache`] to force it.
    pub fn social_cache(&self) -> Option<&SocialNeighborCache> {
        self.social_cache.get().map(|cache| &**cache)
    }

    /// The social neighbour cache as a cheaply cloneable `Arc` handle, when
    /// already built — pass it to
    /// [`EngineBuilder::with_shared_social_cache`] /
    /// [`GeoSocialEngine::install_social_cache`] to serve further engines
    /// from the same instance.
    pub fn shared_social_cache(&self) -> Option<Arc<SocialNeighborCache>> {
        self.social_cache.get().cloned()
    }

    /// Returns the social neighbour cache, building it on the spot when the
    /// engine was configured with a [`SocialCachePlan`].
    ///
    /// Engines that adopted this engine's cache slot
    /// ([`EngineBuilder::share_graph_artifacts_with`]) share the build:
    /// whichever engine first needs the cache builds it once, and every
    /// holder of the slot observes the same instance.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingIndex`] under [`SocialCachePlan::Disabled`]
    /// (unless a cache was installed through
    /// [`GeoSocialEngine::install_social_cache`] or a `with_shared_*`
    /// builder method).
    pub fn require_social_cache(&self) -> Result<&SocialNeighborCache, CoreError> {
        match &self.cache_plan {
            SocialCachePlan::Disabled => self.social_cache().ok_or_else(|| {
                CoreError::MissingIndex(
                    "Algorithm::SfaCached needs the pre-computed social neighbour lists; \
                     declare them with EngineBuilder::cache_social_neighbors(users, t)"
                        .into(),
                )
            }),
            SocialCachePlan::Lazy { users, t } | SocialCachePlan::Eager { users, t } => {
                Ok(&**self.social_cache.get_or_init(|| {
                    Arc::new(SocialNeighborCache::build(self.dataset.graph(), users, *t))
                }))
            }
        }
    }

    /// Installs (or replaces) a pre-built social neighbour cache — e.g. one
    /// deserialized from disk, shared between engines (pass an
    /// `Arc<SocialNeighborCache>`), or swapped while sweeping the list
    /// length `t` without rebuilding the base indexes (the Figure 11
    /// experiment).
    ///
    /// Installing detaches this engine from any previously shared cache
    /// slot: sibling engines that adopted the old slot keep (or lazily
    /// build) the old cache, unaffected.  For caches derived from this
    /// engine's own graph, prefer declaring a [`SocialCachePlan`] at
    /// construction time.
    pub fn install_social_cache(&mut self, cache: impl Into<Arc<SocialNeighborCache>>) {
        self.social_cache = Arc::new(OnceLock::from(cache.into()));
    }

    /// The strategy registry the engine dispatches through.
    pub fn strategies(&self) -> &StrategyRegistry {
        &self.strategies
    }

    /// Registers a custom [`AlgorithmStrategy`] (or replaces a built-in
    /// registered under the same name).  Requests select it with
    /// [`QueryRequestBuilder::algorithm`](crate::QueryRequestBuilder::algorithm)
    /// by name.
    ///
    /// Returns the strategy previously registered under that name, so
    /// wrappers can delegate to the original.
    pub fn register_strategy(
        &mut self,
        strategy: Arc<dyn AlgorithmStrategy>,
    ) -> Option<Arc<dyn AlgorithmStrategy>> {
        self.strategies.register(strategy)
    }

    /// A query context pre-sized for this engine's graph.
    ///
    /// Reuse it across queries via [`GeoSocialEngine::run_with`] (or hold a
    /// [`QuerySession`], which does so for you) to avoid the per-query
    /// `O(|V|)` scratch allocation.
    pub fn make_context(&self) -> QueryContext {
        QueryContext::with_capacity(self.dataset.user_count())
    }

    /// A [`QuerySession`] over this engine: the recommended per-worker
    /// query handle (owned reusable context, streaming support).
    pub fn session(&self) -> QuerySession<'_> {
        QuerySession::new(self)
    }

    /// Processes one request.
    ///
    /// This convenience entry point allocates a fresh [`QueryContext`] per
    /// call; query loops should prefer [`GeoSocialEngine::run_with`] / a
    /// [`QuerySession`] (one reused context) or
    /// [`GeoSocialEngine::run_batch`] (one context per worker thread).
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownAlgorithm`] when the request names an
    ///   unregistered strategy.
    /// * [`CoreError::MissingIndex`] when the strategy requires an index
    ///   the engine was not configured to provide.
    /// * [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for
    ///   invalid request fields.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.run_with(request, &mut QueryContext::new())
    }

    /// Processes one request, drawing all search scratch from `ctx`.
    ///
    /// The context is reset before use, so reusing one across queries (of
    /// any algorithm, in any order) never changes results — it only removes
    /// the `O(|V|)` allocation from the per-query hot path.
    pub fn run_with(
        &self,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        let strategy = self.strategies.resolve(request.algorithm().key())?;
        let requires = strategy.requires();
        if requires.contraction_hierarchy {
            self.require_contraction_hierarchy()?;
        }
        if requires.social_cache {
            self.require_social_cache()?;
        }
        let result = strategy.execute(self, request, ctx)?;
        crate::obs::record_query_metrics(request.algorithm().key(), &result.stats);
        Ok(result)
    }

    /// Starts a pull-lazy execution of one request, returning a resumable
    /// [`QueryDriver`](crate::QueryDriver) that borrows this engine and
    /// `ctx` for its lifetime.
    ///
    /// This is the low-level streaming primitive: the caller steps the
    /// machine and drains finalized entries at its own pace (the
    /// property-based test-suite drives it with arbitrary suspension
    /// schedules).  Most callers want [`GeoSocialEngine::stream_with`] or
    /// [`QuerySession::stream`], which wrap the driver in an iterator.
    ///
    /// # Errors
    ///
    /// Same as [`GeoSocialEngine::run_with`].
    pub fn begin_stream<'a>(
        &'a self,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<Box<dyn crate::QueryDriver + 'a>, CoreError> {
        let strategy = self.strategies.resolve(request.algorithm().key())?;
        let requires = strategy.requires();
        if requires.contraction_hierarchy {
            self.require_contraction_hierarchy()?;
        }
        if requires.social_cache {
            self.require_social_cache()?;
        }
        strategy.begin_stream(self, request, ctx)
    }

    /// Processes one request as a pull-lazy [`QueryStream`](crate::QueryStream)
    /// drawing all search scratch from `ctx`; see [`QuerySession::stream`]
    /// for the semantics.
    ///
    /// # Errors
    ///
    /// Same as [`GeoSocialEngine::run_with`].
    pub fn stream_with<'a>(
        &'a self,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<crate::QueryStream<'a>, CoreError> {
        Ok(crate::QueryStream::new(
            self.begin_stream(request, ctx)?,
            request.k(),
        ))
    }

    /// Processes `request` once per algorithm in `algorithms`, returning
    /// `(algorithm, result)` pairs.  Used by the experiment harness to
    /// compare methods on identical queries (the request's own algorithm
    /// field is overridden).
    pub fn run_each(
        &self,
        algorithms: &[Algorithm],
        request: &QueryRequest,
    ) -> Result<Vec<(Algorithm, QueryResult)>, CoreError> {
        let mut ctx = self.make_context();
        algorithms
            .iter()
            .map(|&a| {
                let req = request.clone().with_algorithm(a);
                self.run_with(&req, &mut ctx).map(|r| (a, r))
            })
            .collect()
    }

    /// Processes a batch of requests in parallel across worker threads, one
    /// [`QueryContext`] per worker.
    ///
    /// Results arrive in input order and are identical to running
    /// [`GeoSocialEngine::run`] sequentially on each element — every query
    /// is computed independently from shared read-only indexes, so thread
    /// count and scheduling cannot affect answers (the test-suite asserts
    /// this, including under concurrent lazy index initialization).
    /// Per-element errors (e.g. an unknown user in the middle of a batch)
    /// are reported in place without failing the whole batch.
    ///
    /// Uses all available CPU parallelism; see
    /// [`GeoSocialEngine::run_batch_with_threads`] to pin the worker count.
    pub fn run_batch(&self, batch: &[QueryRequest]) -> Vec<Result<QueryResult, CoreError>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run_batch_with_threads(batch, threads)
    }

    /// [`GeoSocialEngine::run_batch`] with an explicit worker count
    /// (clamped to the batch size; `0` and `1` run inline on the calling
    /// thread).
    pub fn run_batch_with_threads(
        &self,
        batch: &[QueryRequest],
        threads: usize,
    ) -> Vec<Result<QueryResult, CoreError>> {
        let threads = threads.min(batch.len());
        if threads <= 1 {
            let mut ctx = self.make_context();
            return batch
                .iter()
                .map(|request| self.run_with(request, &mut ctx))
                .collect();
        }

        // Workers pull indices from a shared atomic counter (dynamic load
        // balancing: query cost varies wildly with the query user's
        // neighbourhood), collect `(index, result)` pairs locally, and the
        // batch is stitched back into input order at the end.
        let next = AtomicUsize::new(0);
        let mut results: Vec<(usize, Result<QueryResult, CoreError>)> =
            Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ctx = self.make_context();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(request) = batch.get(i) else { break };
                            local.push((i, self.run_with(request, &mut ctx)));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                results.extend(worker.join().expect("batch worker panicked"));
            }
        });
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, result)| result).collect()
    }

    /// Reports a new location for `user`, updating the dataset, the SPA/TSA
    /// grid and the AIS index (including its social summaries) — the
    /// location-update path of §5.1.
    ///
    /// # Auxiliary-index staleness
    ///
    /// The lazily-built Contraction Hierarchies index and the pre-computed
    /// social neighbour cache are functions of the **social graph only**
    /// (shortcuts and socially-closest lists never read a location), so
    /// location churn cannot invalidate them — whether they were built
    /// before or after the update.  `tests/dynamic_updates.rs` pins this
    /// down by checking `*-CH` and `AIS-Cache` queries against the
    /// exhaustive oracle across churn interleaved with lazy index builds.
    /// The same argument is why those indexes can be *shared* across the
    /// shards of a partitioned deployment: per-shard location churn and
    /// cross-shard migration never touch them.  Any future mutation that
    /// *does* touch the graph (edge insertion, re-weighting) must replace
    /// the dataset core and the `Arc`-held graph artifacts wholesale.
    pub fn update_location(&mut self, user: UserId, location: Point) -> Result<(), CoreError> {
        self.dataset.check_user(user)?;
        if !location.is_finite() {
            return Err(CoreError::InvalidParameter(format!(
                "non-finite location {location}"
            )));
        }
        self.dataset.set_location(user, Some(location))?;
        // The grids clamp points into their bounds, so a location slightly
        // outside the original bounding box is still handled.
        self.grid.insert(user, location);
        self.ais.update_location(user, location, &self.landmarks)?;
        self.planner
            .note_location_change(user, Some(location), &self.dataset);
        Ok(())
    }

    /// Removes the location of `user` (the user becomes "infinitely far" in
    /// the spatial domain).
    ///
    /// Like [`GeoSocialEngine::update_location`], this refreshes every
    /// location-dependent index and leaves the graph-only auxiliary indexes
    /// (CH, social cache) untouched — they cannot go stale under location
    /// churn.
    pub fn remove_location(&mut self, user: UserId) -> Result<(), CoreError> {
        self.dataset.check_user(user)?;
        if self.dataset.location(user).is_some() {
            self.dataset.set_location(user, None)?;
            self.grid.remove(user)?;
            self.ais.remove_user(user, &self.landmarks)?;
            self.planner.note_location_change(user, None, &self.dataset);
        }
        Ok(())
    }

    /// The adaptive planner behind this engine's [`Algorithm::Auto`]
    /// strategy: pin it for tests, resize its hot-result cache, or read its
    /// decision/cache counters via [`QueryPlanner::snapshot`].
    pub fn planner(&self) -> &Arc<QueryPlanner> {
        &self.planner
    }
}

impl GeoSocialEngine {
    /// Approximate heap footprint of this engine, split into the bytes that
    /// are **shared** through `Arc` handles (graph, landmarks, CH, social
    /// cache — paid once no matter how many engines hold them) and the
    /// bytes that are **per-engine** (locations, SPA/TSA grid, AIS index).
    ///
    /// Capacity-based estimates; allocator overhead and the strategy
    /// registry are ignored.  This powers the `experiments -- memory`
    /// report of `ssrq-bench`.
    pub fn memory_breakdown(&self) -> EngineMemory {
        EngineMemory {
            graph_bytes: self.dataset.graph().approx_heap_bytes(),
            landmarks_bytes: self.landmarks.approx_heap_bytes(),
            ch_bytes: self
                .shared_contraction_hierarchy()
                .map(|ch| ch.approx_heap_bytes())
                .unwrap_or(0),
            social_cache_bytes: self
                .social_cache()
                .map(|cache| cache.memory_bytes())
                .unwrap_or(0),
            locations_bytes: self.dataset.locations_heap_bytes(),
            grid_bytes: self.grid.approx_heap_bytes(),
            ais_bytes: self.ais.approx_heap_bytes(),
            ais_occupied_cells: self.ais.occupied_cells(),
            ais_total_cells: self.ais.total_cells(),
        }
    }
}

/// Approximate heap footprint of a [`GeoSocialEngine`], split by sharing
/// class; see [`GeoSocialEngine::memory_breakdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMemory {
    /// CSR social graph (shared through the dataset core).
    pub graph_bytes: usize,
    /// Landmark distance tables (shared through an `Arc`).
    pub landmarks_bytes: usize,
    /// Contraction Hierarchies index, when built (shared through an `Arc`).
    pub ch_bytes: usize,
    /// Social neighbour cache, when built (shared through an `Arc`).
    pub social_cache_bytes: usize,
    /// Per-engine location vector.
    pub locations_bytes: usize,
    /// Per-engine SPA/TSA grid.
    pub grid_bytes: usize,
    /// Per-engine AIS aggregate index.
    pub ais_bytes: usize,
    /// AIS grid nodes carrying a materialised social summary (occupancy
    /// numerator — empty nodes share one static summary and cost nothing).
    pub ais_occupied_cells: usize,
    /// Total AIS grid nodes of the geometry (occupancy denominator).
    pub ais_total_cells: usize,
}

impl EngineMemory {
    /// Bytes held behind shared `Arc` handles: whatever the deployment
    /// shape, these are resident **once** per distinct instance.
    pub fn shared_bytes(&self) -> usize {
        self.graph_bytes + self.landmarks_bytes + self.ch_bytes + self.social_cache_bytes
    }

    /// Bytes owned by this engine alone (replicated per shard in a
    /// partitioned deployment).
    pub fn per_engine_bytes(&self) -> usize {
        self.locations_bytes + self.grid_bytes + self.ais_bytes
    }

    /// Shared plus per-engine bytes.
    pub fn total_bytes(&self) -> usize {
        self.shared_bytes() + self.per_engine_bytes()
    }

    /// Fraction of AIS grid nodes carrying a materialised summary; 0 for an
    /// engine over an empty shard.  Per-shard AIS bytes are proportional to
    /// this ratio, not to the grid geometry.
    pub fn ais_occupancy_ratio(&self) -> f64 {
        if self.ais_total_cells == 0 {
            return 0.0;
        }
        self.ais_occupied_cells as f64 / self.ais_total_cells as f64
    }
}

fn expanded(bounds: Rect) -> Rect {
    let margin = (bounds.width().max(bounds.height()) * 1e-6).max(1e-9);
    bounds.expanded(margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;

    fn request(user: UserId, k: usize, alpha: f64, algorithm: Algorithm) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .algorithm(algorithm)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 50u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.3 + (i % 6) as f64 * 0.2)
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            builder
                .add_edge(i, (i + 13) % n, 0.9 + (i % 3) as f64 * 0.4)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 10 == 9 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.618) % 1.0,
                        ((i as f64) * 0.382) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn engine() -> GeoSocialEngine {
        GeoSocialEngine::builder(dataset())
            .granularity(4)
            .build()
            .unwrap()
    }

    fn full_engine(query_users: &[UserId]) -> GeoSocialEngine {
        GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_ch(ChBuild::Lazy)
            .cache_social_neighbors(query_users.to_vec(), 60)
            .build()
            .unwrap()
    }

    #[test]
    fn every_algorithm_agrees_with_the_oracle() {
        let query_users = [0u32, 7, 23, 41];
        let engine = full_engine(&query_users);
        for &user in &query_users {
            for &alpha in &[0.3, 0.7] {
                let expected = engine
                    .run(&request(user, 6, alpha, Algorithm::Exhaustive))
                    .unwrap();
                for algorithm in Algorithm::ALL {
                    let got = engine.run(&request(user, 6, alpha, algorithm)).unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "{} disagrees with the oracle for user {user}, alpha {alpha}:\n  got {:?}\n  expected {:?}",
                        algorithm.name(),
                        got.users(),
                        expected.users()
                    );
                }
            }
        }
        // Both lazy indexes were built on demand.
        assert!(engine.contraction_hierarchy().is_some());
        assert!(engine.social_cache().is_some());
    }

    #[test]
    fn disabled_ch_yields_a_typed_missing_index_error() {
        let engine = engine();
        for algorithm in [Algorithm::SfaCh, Algorithm::SpaCh, Algorithm::TsaCh] {
            assert!(algorithm.needs_ch());
            assert!(matches!(
                engine.run(&request(0, 5, 0.5, algorithm)),
                Err(CoreError::MissingIndex(_))
            ));
        }
        assert!(engine.contraction_hierarchy().is_none());
    }

    #[test]
    fn lazy_ch_is_built_on_first_use_only() {
        let engine = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_ch(ChBuild::Lazy)
            .build()
            .unwrap();
        assert!(engine.contraction_hierarchy().is_none());
        let oracle = engine
            .run(&request(0, 5, 0.5, Algorithm::Exhaustive))
            .unwrap();
        // Non-CH queries must not trigger the build.
        assert!(engine.contraction_hierarchy().is_none());
        let got = engine.run(&request(0, 5, 0.5, Algorithm::SfaCh)).unwrap();
        assert!(engine.contraction_hierarchy().is_some());
        assert!(got.same_users_and_scores(&oracle, 1e-9));
    }

    #[test]
    fn disabled_social_cache_yields_a_typed_missing_index_error() {
        let engine = engine();
        assert!(Algorithm::SfaCached.needs_social_cache());
        assert!(matches!(
            engine.run(&request(0, 5, 0.5, Algorithm::SfaCached)),
            Err(CoreError::MissingIndex(_))
        ));
    }

    #[test]
    fn unknown_algorithm_names_are_rejected() {
        let engine = engine();
        let req = QueryRequest::for_user(0)
            .algorithm("NOT-REGISTERED")
            .build()
            .unwrap();
        assert!(matches!(
            engine.run(&req),
            Err(CoreError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn custom_strategies_can_be_registered_and_dispatched() {
        struct Oracle2;
        impl crate::AlgorithmStrategy for Oracle2 {
            fn name(&self) -> &str {
                "ORACLE-2"
            }
            fn execute(
                &self,
                engine: &GeoSocialEngine,
                request: &QueryRequest,
                ctx: &mut QueryContext,
            ) -> Result<QueryResult, CoreError> {
                crate::algorithms::exhaustive_query(engine.dataset(), request, ctx)
            }
        }
        let mut engine = engine();
        assert!(engine.register_strategy(Arc::new(Oracle2)).is_none());
        assert!(engine.strategies().names().contains(&"ORACLE-2"));
        let via_custom = engine
            .run(
                &QueryRequest::for_user(3)
                    .k(5)
                    .alpha(0.4)
                    .algorithm("ORACLE-2")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let via_builtin = engine
            .run(&request(3, 5, 0.4, Algorithm::Exhaustive))
            .unwrap();
        assert_eq!(via_custom.ranked, via_builtin.ranked);
    }

    #[test]
    fn index_params_validation_and_derived_grid_side() {
        assert!(IndexParams::default().validate().is_ok());
        let bad = IndexParams {
            granularity: 0,
            ..IndexParams::default()
        };
        assert!(bad.validate().is_err());
        let bad = IndexParams {
            num_landmarks: 0,
            ..IndexParams::default()
        };
        assert!(bad.validate().is_err());
        let cfg = IndexParams {
            granularity: 20,
            ais_levels: 2,
            ..IndexParams::default()
        };
        assert_eq!(cfg.spa_grid_side(), 256); // capped
        let cfg = IndexParams {
            granularity: 5,
            ais_levels: 2,
            ..IndexParams::default()
        };
        assert_eq!(cfg.spa_grid_side(), 25);
    }

    #[test]
    fn location_updates_keep_all_algorithms_consistent() {
        let mut engine = engine();
        // Move a handful of users around, including one that previously had
        // no location, then re-verify agreement between AIS and the oracle.
        engine.update_location(9, Point::new(0.42, 0.13)).unwrap();
        engine.update_location(3, Point::new(0.91, 0.88)).unwrap();
        engine.update_location(0, Point::new(0.05, 0.95)).unwrap();
        engine.remove_location(17).unwrap();
        for algorithm in [
            Algorithm::Sfa,
            Algorithm::Spa,
            Algorithm::Tsa,
            Algorithm::Ais,
        ] {
            let expected = engine
                .run(&request(0, 5, 0.5, Algorithm::Exhaustive))
                .unwrap();
            let got = engine.run(&request(0, 5, 0.5, algorithm)).unwrap();
            assert!(
                got.same_users_and_scores(&expected, 1e-9),
                "{} inconsistent after location updates",
                algorithm.name()
            );
        }
    }

    #[test]
    fn run_each_returns_one_result_per_algorithm() {
        let engine = engine();
        let results = engine
            .run_each(
                &[Algorithm::Sfa, Algorithm::Ais],
                &QueryRequest::for_user(5).k(4).alpha(0.4).build().unwrap(),
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, Algorithm::Sfa);
        assert!(results[0].1.same_users_and_scores(&results[1].1, 1e-9));
    }

    #[test]
    fn algorithm_names_are_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let graph = GraphBuilder::new(0).build();
        let err = GeoSocialDataset::new(graph, vec![]);
        // An empty dataset cannot even be constructed (no located user).
        assert!(err.is_err());
    }

    #[test]
    fn shared_artifacts_are_adopted_not_rebuilt() {
        let query_users = [0u32, 7, 23];
        let donor = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_ch(ChBuild::Eager)
            .with_social_cache(SocialCachePlan::Eager {
                users: query_users.to_vec(),
                t: 60,
            })
            .build()
            .unwrap();
        let sibling = GeoSocialEngine::builder(donor.dataset().clone())
            .granularity(4)
            .with_ch(ChBuild::Eager)
            .with_social_cache(SocialCachePlan::Eager {
                users: query_users.to_vec(),
                t: 60,
            })
            .share_graph_artifacts_with(&donor)
            .build()
            .unwrap();
        // One landmark set, one CH, one cache across both engines.
        assert!(Arc::ptr_eq(
            &donor.shared_landmarks(),
            &sibling.shared_landmarks()
        ));
        assert!(Arc::ptr_eq(
            &donor.shared_contraction_hierarchy().unwrap(),
            &sibling.shared_contraction_hierarchy().unwrap()
        ));
        assert!(Arc::ptr_eq(
            &donor.shared_social_cache().unwrap(),
            &sibling.shared_social_cache().unwrap()
        ));
        // And identical answers, of course.
        for &user in &query_users {
            for algorithm in Algorithm::ALL {
                let a = donor.run(&request(user, 6, 0.4, algorithm)).unwrap();
                let b = sibling.run(&request(user, 6, 0.4, algorithm)).unwrap();
                assert_eq!(a.ranked, b.ranked, "{}", algorithm.name());
            }
        }
    }

    #[test]
    fn adopted_lazy_cache_slot_is_built_once_and_shared() {
        let query_users = [0u32, 7];
        let donor = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .cache_social_neighbors(query_users.to_vec(), 60)
            .build()
            .unwrap();
        let sibling = GeoSocialEngine::builder(donor.dataset().clone())
            .granularity(4)
            .cache_social_neighbors(query_users.to_vec(), 60)
            .share_graph_artifacts_with(&donor)
            .build()
            .unwrap();
        assert!(donor.social_cache().is_none());
        assert!(sibling.social_cache().is_none());
        // The *sibling* triggers the lazy build; the donor observes it.
        sibling
            .run(&request(0, 5, 0.4, Algorithm::SfaCached))
            .unwrap();
        let built = sibling.shared_social_cache().unwrap();
        assert!(Arc::ptr_eq(&built, &donor.shared_social_cache().unwrap()));
        // install_social_cache detaches only the installing engine.
        let mut detached = sibling.clone();
        detached.install_social_cache(SocialNeighborCache::build(
            detached.dataset().graph(),
            &query_users,
            30,
        ));
        assert!(!Arc::ptr_eq(
            &built,
            &detached.shared_social_cache().unwrap()
        ));
        assert!(Arc::ptr_eq(&built, &donor.shared_social_cache().unwrap()));
    }

    #[test]
    fn share_graph_artifacts_with_rejects_foreign_cores() {
        let donor = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .build()
            .unwrap();
        // Structurally identical dataset, but an independent core.
        let err = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .share_graph_artifacts_with(&donor)
            .build();
        assert!(matches!(err, Err(CoreError::InvalidParameter(_))));
    }

    #[test]
    fn shared_landmarks_must_cover_the_graph() {
        let donor = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .build()
            .unwrap();
        let small = {
            let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
            let locations = vec![Some(Point::new(0.1, 0.2)); 3];
            GeoSocialDataset::new(graph, locations).unwrap()
        };
        let err = GeoSocialEngine::builder(small)
            .with_shared_landmarks(donor.shared_landmarks())
            .build();
        assert!(matches!(err, Err(CoreError::InvalidParameter(_))));
    }

    #[test]
    fn shared_ch_must_cover_the_graph() {
        let small = {
            let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
            let locations = vec![Some(Point::new(0.1, 0.2)); 3];
            GeoSocialDataset::new(graph, locations).unwrap()
        };
        let small_engine = GeoSocialEngine::builder(small)
            .landmarks(2)
            .with_ch(ChBuild::Eager)
            .build()
            .unwrap();
        // A 3-vertex CH installed into a 50-user engine must be rejected,
        // not panic later inside rank lookups.
        let err = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_shared_ch(small_engine.shared_contraction_hierarchy().unwrap())
            .build();
        assert!(matches!(err, Err(CoreError::InvalidParameter(_))));
    }

    #[test]
    fn shared_social_cache_must_cover_only_known_users() {
        let donor = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_social_cache(SocialCachePlan::Eager {
                users: vec![0, 7, 49],
                t: 10,
            })
            .build()
            .unwrap();
        let small = {
            let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
            let locations = vec![Some(Point::new(0.1, 0.2)); 3];
            GeoSocialDataset::new(graph, locations).unwrap()
        };
        // The donor cache covers user 49; a 3-user engine must reject it.
        let err = GeoSocialEngine::builder(small)
            .landmarks(2)
            .with_shared_social_cache(donor.shared_social_cache().unwrap())
            .build();
        assert!(matches!(err, Err(CoreError::InvalidParameter(_))));
    }

    #[test]
    fn installed_shared_ch_serves_even_a_disabled_engine() {
        let donor = GeoSocialEngine::builder(dataset())
            .granularity(4)
            .with_ch(ChBuild::Eager)
            .build()
            .unwrap();
        let ch = donor.shared_contraction_hierarchy().unwrap();
        let consumer = GeoSocialEngine::builder(donor.dataset().clone())
            .granularity(4)
            .with_shared_ch(Arc::clone(&ch))
            .build()
            .unwrap();
        // ChBuild stayed Disabled, yet the installed index answers.
        let oracle = consumer
            .run(&request(0, 5, 0.5, Algorithm::Exhaustive))
            .unwrap();
        let got = consumer.run(&request(0, 5, 0.5, Algorithm::SfaCh)).unwrap();
        assert!(got.same_users_and_scores(&oracle, 1e-9));
        assert!(Arc::ptr_eq(
            &ch,
            &consumer.shared_contraction_hierarchy().unwrap()
        ));
    }
}
