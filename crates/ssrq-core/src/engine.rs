use crate::ais::{ais_query, AisIndex, AisVariant};
use crate::algorithms::{
    cached_query, exhaustive_query, sfa_ch_query, sfa_query, spa_query, tsa_query,
    SocialNeighborCache, SpaOptions, TsaOptions,
};
use crate::{CoreError, GeoSocialDataset, QueryContext, QueryParams, QueryResult, UserId};
use ssrq_graph::{ChParams, ContractionHierarchy, LandmarkSelection, LandmarkSet};
use ssrq_spatial::{Point, Rect, UniformGrid};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The SSRQ processing algorithm to run for a query.
///
/// All algorithms return the same (exact) result set; they differ only in
/// how much work they perform — which is precisely what the paper's
/// evaluation measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Brute-force oracle: full Dijkstra plus a linear scan.
    Exhaustive,
    /// Social First Approach (§4.1).
    Sfa,
    /// Spatial First Approach (§4.1).
    Spa,
    /// Twofold Search Approach with round-robin probing and landmark-based
    /// candidate pruning (the "TSA" configuration of the evaluation).
    Tsa,
    /// TSA probing with the Quick Combine heuristic.
    TsaQc,
    /// Aggregate Index Search without computation sharing (Figure 10's
    /// AIS-BID).
    AisBid,
    /// AIS with computation sharing but without delayed evaluation (AIS⁻).
    AisMinus,
    /// AIS with all optimizations — the paper's best method.
    Ais,
    /// SFA with a Contraction Hierarchies distance module (Figure 8).
    SfaCh,
    /// SPA with a Contraction Hierarchies distance module (Figure 8).
    SpaCh,
    /// TSA with a Contraction Hierarchies distance module (Figure 8).
    TsaCh,
    /// SFA over pre-computed social neighbour lists with AIS fallback
    /// (§5.4, "AIS-Cache" in Figure 11).
    SfaCached,
}

impl Algorithm {
    /// Every algorithm variant, in the order they appear in the paper.
    pub const ALL: [Algorithm; 12] = [
        Algorithm::Exhaustive,
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
        Algorithm::SfaCh,
        Algorithm::SpaCh,
        Algorithm::TsaCh,
        Algorithm::SfaCached,
    ];

    /// Short display name (matches the labels used in the paper's figures).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Exhaustive => "EXH",
            Algorithm::Sfa => "SFA",
            Algorithm::Spa => "SPA",
            Algorithm::Tsa => "TSA",
            Algorithm::TsaQc => "TSA-QC",
            Algorithm::AisBid => "AIS-BID",
            Algorithm::AisMinus => "AIS-",
            Algorithm::Ais => "AIS",
            Algorithm::SfaCh => "SFA-CH",
            Algorithm::SpaCh => "SPA-CH",
            Algorithm::TsaCh => "TSA-CH",
            Algorithm::SfaCached => "AIS-Cache",
        }
    }

    /// Returns `true` when the algorithm needs a Contraction Hierarchies
    /// index (see [`EngineConfig::build_ch`]).
    pub fn needs_ch(&self) -> bool {
        matches!(self, Algorithm::SfaCh | Algorithm::SpaCh | Algorithm::TsaCh)
    }

    /// Returns `true` when the algorithm needs a pre-computed social
    /// neighbour cache (see [`GeoSocialEngine::build_social_cache`]).
    pub fn needs_social_cache(&self) -> bool {
        matches!(self, Algorithm::SfaCached)
    }
}

/// Index-construction parameters of a [`GeoSocialEngine`] (the system
/// parameters of Table 3 in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Partitioning granularity `s`: every AIS index node has `s × s`
    /// children, and the single-level grid used by SPA/TSA has
    /// `s^levels × s^levels` cells (capped at 256 per axis).
    pub granularity: u32,
    /// Number of retained AIS grid levels (the paper keeps 2).
    pub ais_levels: u32,
    /// Number of landmarks `M` (the paper fine-tunes M = 8).
    pub num_landmarks: usize,
    /// Landmark selection strategy.
    pub landmark_selection: LandmarkSelection,
    /// Seed for randomized landmark selection.
    pub landmark_seed: u64,
    /// Whether to build the Contraction Hierarchies index needed by the
    /// `*-CH` baselines (expensive; off by default).
    pub build_ch: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            granularity: 10,
            ais_levels: 2,
            num_landmarks: 8,
            landmark_selection: LandmarkSelection::FarthestFirst,
            landmark_seed: 0x5537_2301,
            build_ch: false,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.granularity == 0 {
            return Err(CoreError::InvalidParameter(
                "granularity s must be at least 1".into(),
            ));
        }
        if self.ais_levels == 0 {
            return Err(CoreError::InvalidParameter(
                "the AIS index needs at least one level".into(),
            ));
        }
        if self.num_landmarks == 0 {
            return Err(CoreError::InvalidParameter(
                "at least one landmark is required".into(),
            ));
        }
        Ok(())
    }

    /// The side length (cells per axis) of the single-level grid used by the
    /// SPA/TSA spatial search.
    pub fn spa_grid_side(&self) -> u32 {
        let side = (self.granularity as u64).pow(self.ais_levels).min(256);
        side.max(1) as u32
    }
}

/// The SSRQ query engine: owns the dataset, the spatial indexes, the
/// landmark tables and the optional auxiliary indexes, and dispatches
/// queries to any of the processing [`Algorithm`]s.
#[derive(Debug, Clone)]
pub struct GeoSocialEngine {
    dataset: GeoSocialDataset,
    config: EngineConfig,
    landmarks: LandmarkSet,
    grid: UniformGrid,
    ais: AisIndex,
    ch: Option<ContractionHierarchy>,
    social_cache: Option<SocialNeighborCache>,
}

// The engine holds no interior mutability: queries take `&self` and draw
// their mutable scratch from a caller-owned `QueryContext`, while location
// updates go through the explicit `&mut self` API.  That makes `&engine`
// safely shareable across the batch-query worker threads; this assertion
// turns any future regression (e.g. an `Rc` or `RefCell` slipping into an
// index) into a compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GeoSocialEngine>();
};

impl GeoSocialEngine {
    /// Builds all indexes for `dataset` (landmark distance tables, the
    /// SPA/TSA grid, the AIS aggregate index, and optionally Contraction
    /// Hierarchies).
    pub fn build(dataset: GeoSocialDataset, config: EngineConfig) -> Result<Self, CoreError> {
        config.validate()?;
        if dataset.user_count() == 0 {
            return Err(CoreError::InvalidDataset("the dataset has no users".into()));
        }
        let landmarks = LandmarkSet::build(
            dataset.graph(),
            config.num_landmarks,
            config.landmark_selection,
            config.landmark_seed,
        )?;
        let bounds = expanded(dataset.bounds());
        let grid = UniformGrid::bulk_load(bounds, config.spa_grid_side(), dataset.located_users())?;
        let ais = AisIndex::build(&dataset, &landmarks, config.granularity, config.ais_levels)?;
        let ch = if config.build_ch {
            Some(ContractionHierarchy::build(
                dataset.graph(),
                ChParams::default(),
            ))
        } else {
            None
        };
        Ok(GeoSocialEngine {
            dataset,
            config,
            landmarks,
            grid,
            ais,
            ch,
            social_cache: None,
        })
    }

    /// The dataset the engine operates on.
    pub fn dataset(&self) -> &GeoSocialDataset {
        &self.dataset
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The landmark set shared by TSA and AIS.
    pub fn landmarks(&self) -> &LandmarkSet {
        &self.landmarks
    }

    /// The AIS aggregate index.
    pub fn ais_index(&self) -> &AisIndex {
        &self.ais
    }

    /// The single-level grid used by the SPA/TSA spatial search.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The Contraction Hierarchies index, when built.
    pub fn contraction_hierarchy(&self) -> Option<&ContractionHierarchy> {
        self.ch.as_ref()
    }

    /// Builds (or replaces) the Contraction Hierarchies index needed by the
    /// `*-CH` baselines.
    pub fn build_contraction_hierarchy(&mut self) {
        self.ch = Some(ContractionHierarchy::build(
            self.dataset.graph(),
            ChParams::default(),
        ));
    }

    /// Pre-computes the `t` socially closest vertices for each user in
    /// `users` (§5.4); required by [`Algorithm::SfaCached`].
    pub fn build_social_cache(&mut self, users: &[UserId], t: usize) {
        self.social_cache = Some(SocialNeighborCache::build(self.dataset.graph(), users, t));
    }

    /// The pre-computed social neighbour cache, when built.
    pub fn social_cache(&self) -> Option<&SocialNeighborCache> {
        self.social_cache.as_ref()
    }

    /// A query context pre-sized for this engine's graph.
    ///
    /// Reuse it across queries via [`GeoSocialEngine::query_with`] to avoid
    /// the per-query `O(|V|)` scratch allocation.
    pub fn make_context(&self) -> QueryContext {
        QueryContext::with_capacity(self.dataset.user_count())
    }

    /// Processes one SSRQ query with the chosen algorithm.
    ///
    /// This convenience entry point allocates a fresh [`QueryContext`] per
    /// call; query loops should prefer [`GeoSocialEngine::query_with`] (one
    /// reused context) or [`GeoSocialEngine::query_batch`] (one context per
    /// worker thread).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for invalid `k`/`α`, or when the
    ///   algorithm requires an auxiliary index that has not been built.
    /// * [`CoreError::UnknownUser`] when the query user does not exist.
    pub fn query(
        &self,
        algorithm: Algorithm,
        params: &QueryParams,
    ) -> Result<QueryResult, CoreError> {
        self.query_with(algorithm, params, &mut QueryContext::new())
    }

    /// Processes one SSRQ query, drawing all search scratch from `ctx`.
    ///
    /// The context is reset before use, so reusing one across queries (of
    /// any algorithm, in any order) never changes results — it only removes
    /// the `O(|V|)` allocation from the per-query hot path.
    pub fn query_with(
        &self,
        algorithm: Algorithm,
        params: &QueryParams,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        match algorithm {
            Algorithm::Exhaustive => exhaustive_query(&self.dataset, params, ctx),
            Algorithm::Sfa => sfa_query(&self.dataset, params, ctx),
            Algorithm::Spa => spa_query(
                &self.dataset,
                &self.grid,
                params,
                SpaOptions::default(),
                ctx,
            ),
            Algorithm::Tsa => tsa_query(
                &self.dataset,
                &self.grid,
                params,
                TsaOptions {
                    quick_combine: false,
                    landmarks: Some(&self.landmarks),
                    ch_phase2: None,
                },
                ctx,
            ),
            Algorithm::TsaQc => tsa_query(
                &self.dataset,
                &self.grid,
                params,
                TsaOptions {
                    quick_combine: true,
                    landmarks: Some(&self.landmarks),
                    ch_phase2: None,
                },
                ctx,
            ),
            Algorithm::AisBid => ais_query(
                &self.dataset,
                &self.ais,
                &self.landmarks,
                params,
                AisVariant::bid(),
                ctx,
            ),
            Algorithm::AisMinus => ais_query(
                &self.dataset,
                &self.ais,
                &self.landmarks,
                params,
                AisVariant::minus(),
                ctx,
            ),
            Algorithm::Ais => ais_query(
                &self.dataset,
                &self.ais,
                &self.landmarks,
                params,
                AisVariant::full(),
                ctx,
            ),
            Algorithm::SfaCh => {
                let ch = self.require_ch()?;
                sfa_ch_query(&self.dataset, ch, params, ctx)
            }
            Algorithm::SpaCh => {
                let ch = self.require_ch()?;
                spa_query(
                    &self.dataset,
                    &self.grid,
                    params,
                    SpaOptions { ch: Some(ch) },
                    ctx,
                )
            }
            Algorithm::TsaCh => {
                let ch = self.require_ch()?;
                tsa_query(
                    &self.dataset,
                    &self.grid,
                    params,
                    TsaOptions {
                        quick_combine: false,
                        landmarks: Some(&self.landmarks),
                        ch_phase2: Some(ch),
                    },
                    ctx,
                )
            }
            Algorithm::SfaCached => {
                let cache = self.social_cache.as_ref().ok_or_else(|| {
                    CoreError::InvalidParameter(
                        "Algorithm::SfaCached requires build_social_cache() first".into(),
                    )
                })?;
                cached_query(&self.dataset, cache, params, |p| {
                    ais_query(
                        &self.dataset,
                        &self.ais,
                        &self.landmarks,
                        p,
                        AisVariant::full(),
                        ctx,
                    )
                })
            }
        }
    }

    /// Processes the same query with every algorithm in `algorithms`,
    /// returning `(algorithm, result)` pairs.  Used by the experiment
    /// harness.
    pub fn query_all(
        &self,
        algorithms: &[Algorithm],
        params: &QueryParams,
    ) -> Result<Vec<(Algorithm, QueryResult)>, CoreError> {
        let mut ctx = self.make_context();
        algorithms
            .iter()
            .map(|&a| self.query_with(a, params, &mut ctx).map(|r| (a, r)))
            .collect()
    }

    /// Processes a batch of queries in parallel across worker threads, one
    /// [`QueryContext`] per worker.
    ///
    /// Results arrive in input order and are identical to running
    /// [`GeoSocialEngine::query`] sequentially on each element — every query
    /// is computed independently from shared read-only indexes, so thread
    /// count and scheduling cannot affect answers (the test-suite asserts
    /// this).  Per-element errors (e.g. an unknown user in the middle of a
    /// batch) are reported in place without failing the whole batch.
    ///
    /// Uses all available CPU parallelism; see
    /// [`GeoSocialEngine::query_batch_with_threads`] to pin the worker
    /// count.
    pub fn query_batch(
        &self,
        algorithm: Algorithm,
        batch: &[QueryParams],
    ) -> Vec<Result<QueryResult, CoreError>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.query_batch_with_threads(algorithm, batch, threads)
    }

    /// [`GeoSocialEngine::query_batch`] with an explicit worker count
    /// (clamped to the batch size; `0` and `1` run inline on the calling
    /// thread).
    pub fn query_batch_with_threads(
        &self,
        algorithm: Algorithm,
        batch: &[QueryParams],
        threads: usize,
    ) -> Vec<Result<QueryResult, CoreError>> {
        let threads = threads.min(batch.len());
        if threads <= 1 {
            let mut ctx = self.make_context();
            return batch
                .iter()
                .map(|params| self.query_with(algorithm, params, &mut ctx))
                .collect();
        }

        // Workers pull indices from a shared atomic counter (dynamic load
        // balancing: query cost varies wildly with the query user's
        // neighbourhood), collect `(index, result)` pairs locally, and the
        // batch is stitched back into input order at the end.
        let next = AtomicUsize::new(0);
        let mut results: Vec<(usize, Result<QueryResult, CoreError>)> =
            Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ctx = self.make_context();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(params) = batch.get(i) else { break };
                            local.push((i, self.query_with(algorithm, params, &mut ctx)));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                results.extend(worker.join().expect("batch worker panicked"));
            }
        });
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, result)| result).collect()
    }

    /// Reports a new location for `user`, updating the dataset, the SPA/TSA
    /// grid and the AIS index (including its social summaries) — the
    /// location-update path of §5.1.
    pub fn update_location(&mut self, user: UserId, location: Point) -> Result<(), CoreError> {
        self.dataset.check_user(user)?;
        if !location.is_finite() {
            return Err(CoreError::InvalidParameter(format!(
                "non-finite location {location}"
            )));
        }
        self.dataset.set_location(user, Some(location))?;
        // The grids clamp points into their bounds, so a location slightly
        // outside the original bounding box is still handled.
        self.grid.insert(user, location);
        self.ais.update_location(user, location, &self.landmarks)?;
        Ok(())
    }

    /// Removes the location of `user` (the user becomes "infinitely far" in
    /// the spatial domain).
    pub fn remove_location(&mut self, user: UserId) -> Result<(), CoreError> {
        self.dataset.check_user(user)?;
        if self.dataset.location(user).is_some() {
            self.dataset.set_location(user, None)?;
            self.grid.remove(user)?;
            self.ais.remove_user(user, &self.landmarks)?;
        }
        Ok(())
    }

    fn require_ch(&self) -> Result<&ContractionHierarchy, CoreError> {
        self.ch.as_ref().ok_or_else(|| {
            CoreError::InvalidParameter(
                "this algorithm needs a Contraction Hierarchies index; set \
                 EngineConfig::build_ch or call build_contraction_hierarchy()"
                    .into(),
            )
        })
    }
}

fn expanded(bounds: Rect) -> Rect {
    let margin = (bounds.width().max(bounds.height()) * 1e-6).max(1e-9);
    bounds.expanded(margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;

    fn dataset() -> GeoSocialDataset {
        let n = 50u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.3 + (i % 6) as f64 * 0.2)
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            builder
                .add_edge(i, (i + 13) % n, 0.9 + (i % 3) as f64 * 0.4)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 10 == 9 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.618) % 1.0,
                        ((i as f64) * 0.382) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn engine() -> GeoSocialEngine {
        let config = EngineConfig {
            granularity: 4,
            ..EngineConfig::default()
        };
        GeoSocialEngine::build(dataset(), config).unwrap()
    }

    #[test]
    fn every_algorithm_agrees_with_the_oracle() {
        let mut engine = engine();
        engine.build_contraction_hierarchy();
        let query_users = [0u32, 7, 23, 41];
        engine.build_social_cache(&query_users, 60);
        for &user in &query_users {
            for &alpha in &[0.3, 0.7] {
                let params = QueryParams::new(user, 6, alpha);
                let expected = engine.query(Algorithm::Exhaustive, &params).unwrap();
                for algorithm in Algorithm::ALL {
                    let got = engine.query(algorithm, &params).unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "{} disagrees with the oracle for user {user}, alpha {alpha}:\n  got {:?}\n  expected {:?}",
                        algorithm.name(),
                        got.users(),
                        expected.users()
                    );
                }
            }
        }
    }

    #[test]
    fn ch_algorithms_require_the_index() {
        let engine = engine();
        let params = QueryParams::new(0, 5, 0.5);
        for algorithm in [Algorithm::SfaCh, Algorithm::SpaCh, Algorithm::TsaCh] {
            assert!(algorithm.needs_ch());
            assert!(matches!(
                engine.query(algorithm, &params),
                Err(CoreError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn cached_algorithm_requires_the_cache() {
        let engine = engine();
        assert!(Algorithm::SfaCached.needs_social_cache());
        let params = QueryParams::new(0, 5, 0.5);
        assert!(matches!(
            engine.query(Algorithm::SfaCached, &params),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn config_validation_and_derived_grid_side() {
        assert!(EngineConfig::default().validate().is_ok());
        let bad = EngineConfig {
            granularity: 0,
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineConfig {
            num_landmarks: 0,
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
        let cfg = EngineConfig {
            granularity: 20,
            ais_levels: 2,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.spa_grid_side(), 256); // capped
        let cfg = EngineConfig {
            granularity: 5,
            ais_levels: 2,
            ..EngineConfig::default()
        };
        assert_eq!(cfg.spa_grid_side(), 25);
    }

    #[test]
    fn location_updates_keep_all_algorithms_consistent() {
        let mut engine = engine();
        let params = QueryParams::new(0, 5, 0.5);
        // Move a handful of users around, including one that previously had
        // no location, then re-verify agreement between AIS and the oracle.
        engine.update_location(9, Point::new(0.42, 0.13)).unwrap();
        engine.update_location(3, Point::new(0.91, 0.88)).unwrap();
        engine.update_location(0, Point::new(0.05, 0.95)).unwrap();
        engine.remove_location(17).unwrap();
        for algorithm in [
            Algorithm::Sfa,
            Algorithm::Spa,
            Algorithm::Tsa,
            Algorithm::Ais,
        ] {
            let expected = engine.query(Algorithm::Exhaustive, &params).unwrap();
            let got = engine.query(algorithm, &params).unwrap();
            assert!(
                got.same_users_and_scores(&expected, 1e-9),
                "{} inconsistent after location updates",
                algorithm.name()
            );
        }
    }

    #[test]
    fn query_all_returns_one_result_per_algorithm() {
        let engine = engine();
        let params = QueryParams::new(5, 4, 0.4);
        let results = engine
            .query_all(&[Algorithm::Sfa, Algorithm::Ais], &params)
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, Algorithm::Sfa);
        assert!(results[0].1.same_users_and_scores(&results[1].1, 1e-9));
    }

    #[test]
    fn algorithm_names_are_unique() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let graph = GraphBuilder::new(0).build();
        let err = GeoSocialDataset::new(graph, vec![]);
        // An empty dataset cannot even be constructed (no located user).
        assert!(err.is_err());
    }
}
