use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK,
};
use ssrq_graph::{ContractionHierarchy, IncrementalDijkstra};
use ssrq_spatial::UniformGrid;
use std::time::Instant;

/// How SPA computes the social distance of a spatially-encountered user.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaOptions<'a> {
    /// When set, social distances come from Contraction Hierarchies
    /// point-to-point queries (the SPA-CH baseline of Figure 8); otherwise a
    /// single incremental Dijkstra expansion rooted at the query vertex is
    /// reused across all evaluations.
    pub ch: Option<&'a ContractionHierarchy>,
}

/// The Spatial First Approach (SPA, §4.1).
///
/// Users are processed in increasing Euclidean distance from the query user
/// through an incremental nearest-neighbour search over the regular grid.
/// Every encountered user is fully evaluated (its social distance is
/// computed immediately).  The search stops when the spatial-only lower
/// bound `θ = (1 − α) · d(u_q, u_last)` reaches the threshold `f_k`.
pub fn spa_query(
    dataset: &GeoSocialDataset,
    grid: &UniformGrid,
    request: &QueryRequest,
    options: SpaOptions<'_>,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    request.validate()?;
    dataset.check_user(request.user())?;
    let start = Instant::now();
    let ctx = RankingContext::new(dataset, request);
    let mut stats = QueryStats::default();
    let mut topk = TopK::for_request(request);

    let Some(query_location) = dataset.location(request.user()) else {
        // Without a query location every spatial distance is infinite and no
        // candidate can achieve a finite score (α < 1).
        stats.runtime = start.elapsed();
        return Ok(QueryResult {
            ranked: Vec::new(),
            k: request.k(),
            stats,
        });
    };

    // Shared social expansion: all evaluations have the query vertex as the
    // source, so one resumable Dijkstra serves every candidate (this is the
    // computation reuse the paper credits the vanilla methods with).
    let mut social = IncrementalDijkstra::new(dataset.graph(), request.user(), &mut qctx.social);

    let mut nn = grid.nearest_neighbors(query_location);
    loop {
        let Some(neighbor) = nn.next() else {
            // The spatial stream is exhausted: users it never produced have
            // no location, hence an infinite spatial distance and (for
            // α < 1) an infinite score — the interim result is final.
            topk.raise_threshold(f64::INFINITY);
            break;
        };
        if neighbor.id == request.user() {
            continue;
        }
        stats.vertex_pops += 1;
        stats.spatial_pops = nn.pops();
        let spatial_norm = ctx.normalize_spatial(neighbor.distance);
        if request.admits(dataset, neighbor.id) {
            let raw_social = match options.ch {
                Some(ch) => {
                    stats.distance_calls += 1;
                    ch.distance_with(request.user(), neighbor.id, &mut qctx.ch)
                }
                None => {
                    let before = social.settled_count();
                    let d = social.run_until_settled(dataset.graph(), neighbor.id);
                    stats.social_pops += social.settled_count() - before;
                    stats.distance_calls += 1;
                    d
                }
            };
            let social_norm = ctx.normalize_social(raw_social);
            let score = ctx.score(social_norm, spatial_norm);
            stats.evaluated_users += 1;
            topk.consider(RankedUser {
                user: neighbor.id,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        let theta = (1.0 - request.alpha()) * spatial_norm;
        topk.raise_threshold(theta);
        if theta >= topk.fk() {
            break;
        }
    }

    stats.streamable_results = topk.finalized();
    stats.runtime = start.elapsed();
    Ok(QueryResult {
        ranked: topk.into_sorted_vec(),
        k: request.k(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 36u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.3 + (i % 5) as f64 * 0.25)
                .unwrap();
        }
        for i in (1..n).step_by(5) {
            builder
                .add_edge(i, (i + 13) % n, 0.9 + (i % 2) as f64 * 0.6)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 11 == 10 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.381_966) % 1.0,
                        ((i as f64 + 3.0) * 0.272_19) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn grid_for(dataset: &GeoSocialDataset) -> UniformGrid {
        UniformGrid::bulk_load(Rect::unit(), 8, dataset.located_users()).unwrap()
    }

    #[test]
    fn matches_exhaustive_on_a_grid_of_parameters() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for &alpha in &[0.1, 0.5, 0.9] {
            for &k in &[1usize, 5, 9] {
                for user in [0u32, 8, 17, 29] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    let got = spa_query(
                        &dataset,
                        &grid,
                        &request,
                        SpaOptions::default(),
                        &mut QueryContext::new(),
                    )
                    .unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "alpha {alpha}, k {k}, user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_under_request_filters() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for user in [0u32, 17] {
            let request = QueryRequest::for_user(user)
                .k(5)
                .alpha(0.5)
                .within(Rect::new(Point::new(0.0, 0.0), Point::new(0.7, 0.7)))
                .exclude([4, 9])
                .max_score(0.7)
                .build()
                .unwrap();
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = spa_query(
                &dataset,
                &grid,
                &request,
                SpaOptions::default(),
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn ch_variant_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let ch = ContractionHierarchy::new(dataset.graph());
        for user in [3u32, 24] {
            let request = req(user, 5, 0.3);
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = spa_query(
                &dataset,
                &grid,
                &request,
                SpaOptions { ch: Some(&ch) },
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn unlocated_query_user_gets_empty_result() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        // User 10 has no location (10 % 11 == 10).
        let result = spa_query(
            &dataset,
            &grid,
            &req(10, 5, 0.5),
            SpaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.ranked.is_empty());
    }

    #[test]
    fn spatially_led_queries_terminate_early() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        // Spatial-heavy alpha: the first few NNs dominate.
        let result = spa_query(
            &dataset,
            &grid,
            &req(0, 1, 0.1),
            SpaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.evaluated_users < dataset.located_user_count());
    }

    #[test]
    fn stats_count_spatial_and_social_work() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let result = spa_query(
            &dataset,
            &grid,
            &req(5, 3, 0.5),
            SpaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.spatial_pops > 0);
        assert!(result.stats.social_pops > 0);
        assert!(result.stats.distance_calls >= result.stats.evaluated_users);
    }
}
