use crate::driver::{drain_new_finalized, QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK,
};
use ssrq_graph::{ContractionHierarchy, IncrementalDijkstra};
use ssrq_spatial::{IncrementalNn, UniformGrid};
use std::time::Instant;

/// How SPA computes the social distance of a spatially-encountered user.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaOptions<'a> {
    /// When set, social distances come from Contraction Hierarchies
    /// point-to-point queries (the SPA-CH baseline of Figure 8); otherwise a
    /// single incremental Dijkstra expansion rooted at the query vertex is
    /// reused across all evaluations.
    pub ch: Option<&'a ContractionHierarchy>,
}

/// The Spatial First Approach (SPA, §4.1) as a resumable state machine.
///
/// Each [`QueryDriver::step`] pulls one neighbour from the incremental
/// spatial NN stream and fully evaluates it; the spatial-only lower bound
/// `θ = (1 − α) · d(u_q, u_last)` finalizes result entries as it rises.
#[derive(Debug)]
pub struct SpaDriver<'a> {
    dataset: &'a GeoSocialDataset,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    ch: Option<&'a ContractionHierarchy>,
    ch_scratch: &'a mut ssrq_graph::ChQueryScratch,
    /// Shared social expansion: all evaluations have the query vertex as
    /// the source, so one resumable Dijkstra serves every candidate (the
    /// computation reuse the paper credits the vanilla methods with).
    social: IncrementalDijkstra<'a>,
    /// `None` for an unlocated query user (the driver completes with an
    /// empty result on construction).
    nn: Option<IncrementalNn<'a>>,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    emitted: usize,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl<'a> SpaDriver<'a> {
    /// Starts an SPA search over the engine's uniform grid.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        grid: &'a UniformGrid,
        request: &QueryRequest,
        options: SpaOptions<'a>,
        qctx: &'a mut QueryContext,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        let QueryContext { social, ch } = qctx;
        let mut driver = SpaDriver {
            ctx: RankingContext::new(dataset, request),
            topk: TopK::for_request(request),
            ch: options.ch,
            ch_scratch: ch,
            social: IncrementalDijkstra::new(dataset.graph(), request.user(), social),
            nn: request
                .resolved_origin(dataset)
                .map(|loc| grid.nearest_neighbors(loc)),
            dataset,
            request: request.clone(),
            stats: QueryStats::default(),
            start,
            emitted: 0,
            result: None,
            done: false,
        };
        if driver.nn.is_none() {
            // Without a query location every spatial distance is infinite
            // and no candidate can achieve a finite score (α < 1).
            driver.complete();
        }
        Ok(driver)
    }

    fn complete(&mut self) -> StepOutcome {
        self.stats.relaxed_edges = self.social.relaxations();
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }
}

impl QueryDriver for SpaDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        let nn = self
            .nn
            .as_mut()
            .expect("running SPA driver has an NN stream");
        let Some(neighbor) = nn.next() else {
            // The spatial stream is exhausted: users it never produced have
            // no location, hence an infinite spatial distance and (for
            // α < 1) an infinite score — the interim result is final.
            self.topk.raise_threshold(f64::INFINITY);
            return self.complete();
        };
        if neighbor.id == self.request.user() {
            return StepOutcome::Progress;
        }
        self.stats.vertex_pops += 1;
        self.stats.spatial_pops = nn.pops();
        let spatial_norm = self.ctx.normalize_spatial(neighbor.distance);
        if self.request.admits(self.dataset, neighbor.id) {
            let raw_social = match self.ch {
                Some(ch) => {
                    self.stats.distance_calls += 1;
                    ch.distance_with(self.request.user(), neighbor.id, self.ch_scratch)
                }
                None => {
                    let before = self.social.settled_count();
                    let d = self
                        .social
                        .run_until_settled(self.dataset.graph(), neighbor.id);
                    self.stats.social_pops += self.social.settled_count() - before;
                    self.stats.distance_calls += 1;
                    d
                }
            };
            let social_norm = self.ctx.normalize_social(raw_social);
            let score = self.ctx.score(social_norm, spatial_norm);
            self.stats.evaluated_users += 1;
            self.topk.consider(RankedUser {
                user: neighbor.id,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        let theta = (1.0 - self.request.alpha()) * spatial_norm;
        self.topk.raise_threshold(theta);
        if theta >= self.topk.fk() {
            return self.complete();
        }
        StepOutcome::Progress
    }

    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>) {
        if !self.done {
            drain_new_finalized(&self.topk, &mut self.emitted, out);
        }
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        if !self.done {
            stats.relaxed_edges = self.social.relaxations();
            stats.streamable_results = self.topk.finalized();
            stats.runtime = self.start.elapsed();
        }
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("SpaDriver not complete or result already taken")
    }
}

/// The Spatial First Approach (SPA, §4.1).
///
/// Users are processed in increasing Euclidean distance from the query user
/// through an incremental nearest-neighbour search over the regular grid.
/// Every encountered user is fully evaluated (its social distance is
/// computed immediately).  The search stops when the spatial-only lower
/// bound `θ = (1 − α) · d(u_q, u_last)` reaches the threshold `f_k`.
///
/// This is the eager wrapper over [`SpaDriver`].
pub fn spa_query(
    dataset: &GeoSocialDataset,
    grid: &UniformGrid,
    request: &QueryRequest,
    options: SpaOptions<'_>,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    SpaDriver::new(dataset, grid, request, options, qctx)?.run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 36u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.3 + (i % 5) as f64 * 0.25)
                .unwrap();
        }
        for i in (1..n).step_by(5) {
            builder
                .add_edge(i, (i + 13) % n, 0.9 + (i % 2) as f64 * 0.6)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 11 == 10 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.381_966) % 1.0,
                        ((i as f64 + 3.0) * 0.272_19) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn grid_for(dataset: &GeoSocialDataset) -> UniformGrid {
        UniformGrid::bulk_load(Rect::unit(), 8, dataset.located_users()).unwrap()
    }

    #[test]
    fn matches_exhaustive_on_a_grid_of_parameters() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for &alpha in &[0.1, 0.5, 0.9] {
            for &k in &[1usize, 5, 9] {
                for user in [0u32, 8, 17, 29] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    let got = spa_query(
                        &dataset,
                        &grid,
                        &request,
                        SpaOptions::default(),
                        &mut QueryContext::new(),
                    )
                    .unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "alpha {alpha}, k {k}, user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_under_request_filters() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for user in [0u32, 17] {
            let request = QueryRequest::for_user(user)
                .k(5)
                .alpha(0.5)
                .within(Rect::new(Point::new(0.0, 0.0), Point::new(0.7, 0.7)))
                .exclude([4, 9])
                .max_score(0.7)
                .build()
                .unwrap();
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = spa_query(
                &dataset,
                &grid,
                &request,
                SpaOptions::default(),
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn ch_variant_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let ch = ContractionHierarchy::new(dataset.graph());
        for user in [3u32, 24] {
            let request = req(user, 5, 0.3);
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = spa_query(
                &dataset,
                &grid,
                &request,
                SpaOptions { ch: Some(&ch) },
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn unlocated_query_user_gets_empty_result() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        // User 10 has no location (10 % 11 == 10).
        let result = spa_query(
            &dataset,
            &grid,
            &req(10, 5, 0.5),
            SpaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.ranked.is_empty());
    }

    #[test]
    fn spatially_led_queries_terminate_early() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        // Spatial-heavy alpha: the first few NNs dominate.
        let result = spa_query(
            &dataset,
            &grid,
            &req(0, 1, 0.1),
            SpaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.evaluated_users < dataset.located_user_count());
    }

    #[test]
    fn stats_count_spatial_and_social_work() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let result = spa_query(
            &dataset,
            &grid,
            &req(5, 3, 0.5),
            SpaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.spatial_pops > 0);
        assert!(result.stats.social_pops > 0);
        assert!(result.stats.distance_calls >= result.stats.evaluated_users);
    }
}
