//! SSRQ processing algorithms other than AIS (which lives in
//! [`crate::ais`]): the exhaustive oracle, the one-domain baselines SFA and
//! SPA (§4.1), the twofold search TSA and its variants (§4.2), and the
//! pre-computation method of §5.4.

/// Brute-force oracle (full Dijkstra + linear scan).
pub mod exhaustive;
/// Pre-computed socially-closest lists with AIS fallback (§5.4).
pub mod precompute;
/// Social First Approach and its CH variant (§4.1).
pub mod sfa;
/// Spatial First Approach and its CH variant (§4.1).
pub mod spa;
/// Twofold Search Approach: round-robin, Quick Combine, landmarks, CH (§4.2).
pub mod tsa;

pub use exhaustive::{exhaustive_query, ExhaustiveDriver};
pub use precompute::{cached_query, CachedDriver, SocialNeighborCache};
pub use sfa::{sfa_ch_query, sfa_query, SfaChDriver, SfaDriver};
pub use spa::{spa_query, SpaDriver, SpaOptions};
pub use tsa::{tsa_query, TsaDriver, TsaOptions};
