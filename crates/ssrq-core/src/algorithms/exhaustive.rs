use crate::driver::{QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK, UserId,
};
use ssrq_graph::IncrementalDijkstra;
use std::time::Instant;

/// The two phases of the oracle machine: the full single-source Dijkstra,
/// then the linear scan.
#[derive(Debug)]
enum ExhaustivePhase {
    /// One settled vertex per step until the expansion drains.
    Expand,
    /// One scanned user per step.
    Scan { next_user: UserId },
}

/// The brute-force oracle as a resumable state machine.
///
/// The oracle carries no incremental threshold — its scan order implies no
/// bound on unseen users — so it never finalizes an entry before
/// completion: [`QueryDriver::drain_finalized`] yields nothing and the
/// whole result arrives at [`QueryDriver::take_result`]
/// (*drain-after-complete*).  The machine still steps one vertex/user at a
/// time, so it can be suspended and resumed like every other driver.
#[derive(Debug)]
pub struct ExhaustiveDriver<'a> {
    dataset: &'a GeoSocialDataset,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    social: IncrementalDijkstra<'a>,
    phase: ExhaustivePhase,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl<'a> ExhaustiveDriver<'a> {
    /// Starts an exhaustive evaluation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        request: &QueryRequest,
        qctx: &'a mut QueryContext,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        Ok(ExhaustiveDriver {
            ctx: RankingContext::new(dataset, request),
            topk: TopK::for_request(request),
            social: IncrementalDijkstra::new(dataset.graph(), request.user(), &mut qctx.social),
            phase: ExhaustivePhase::Expand,
            dataset,
            request: request.clone(),
            stats: QueryStats::default(),
            start,
            result: None,
            done: false,
        })
    }

    fn complete(&mut self) -> StepOutcome {
        // Drain-after-complete: the scan order carries no distance bound, so
        // no entry is final before the scan ends (`streamable_results` stays
        // 0 — the threshold was never raised).
        self.stats.relaxed_edges = self.social.relaxations();
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }
}

impl QueryDriver for ExhaustiveDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        match self.phase {
            ExhaustivePhase::Expand => {
                if self.social.next_settled(self.dataset.graph()).is_none() {
                    self.stats.social_pops = self.social.settled_count();
                    self.stats.vertex_pops = self.dataset.user_count();
                    self.phase = ExhaustivePhase::Scan { next_user: 0 };
                }
                StepOutcome::Progress
            }
            ExhaustivePhase::Scan { next_user } => {
                if next_user as usize >= self.dataset.user_count() {
                    return self.complete();
                }
                self.phase = ExhaustivePhase::Scan {
                    next_user: next_user + 1,
                };
                if !self.request.admits(self.dataset, next_user) {
                    return StepOutcome::Progress;
                }
                let raw_social = self
                    .social
                    .settled_distance(next_user)
                    .unwrap_or(f64::INFINITY);
                let (score, social_norm, spatial_norm) =
                    self.ctx.score_from_raw_social(next_user, raw_social);
                self.stats.evaluated_users += 1;
                self.topk.consider(RankedUser {
                    user: next_user,
                    score,
                    social: social_norm,
                    spatial: spatial_norm,
                });
                StepOutcome::Progress
            }
        }
    }

    fn drain_finalized(&mut self, _out: &mut Vec<RankedUser>) {
        // The oracle never finalizes early; everything arrives through
        // `take_result`.
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        if !self.done {
            stats.relaxed_edges = self.social.relaxations();
            stats.runtime = self.start.elapsed();
        }
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("ExhaustiveDriver not complete or result already taken")
    }
}

/// Brute-force SSRQ evaluation: one full single-source Dijkstra from the
/// query vertex, then a linear scan over all users.
///
/// This is the correctness oracle used throughout the test suite and the
/// baseline "no index, no pruning" reference point; it is not part of the
/// paper's evaluated methods.  Being the oracle, its admission loop *defines*
/// the semantics of the request filters (spatial window, exclusions, score
/// cutoff) that every other algorithm must reproduce.
///
/// This is the eager wrapper over [`ExhaustiveDriver`].
pub fn exhaustive_query(
    dataset: &GeoSocialDataset,
    request: &QueryRequest,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    ExhaustiveDriver::new(dataset, request, qctx)?.run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn tiny_dataset() -> GeoSocialDataset {
        // Figure 1 of the paper, roughly: u1 is the query user; u5 is the
        // spatially closest, u2 the socially closest, u4 a good compromise.
        let graph = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 0.2), // u1 - u2: strong friendship
                (1, 2, 0.5),
                (2, 3, 0.5),
                (0, 3, 0.9),
                (3, 4, 0.5),
            ],
        )
        .unwrap();
        let locations = vec![
            Some(Point::new(0.5, 0.5)),  // u1 (query)
            Some(Point::new(0.95, 0.9)), // u2: far away spatially
            Some(Point::new(0.1, 0.9)),
            Some(Point::new(0.56, 0.55)), // u4: slightly farther than u5
            Some(Point::new(0.53, 0.52)), // u5: closest spatially
        ];
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn balances_social_and_spatial_proximity() {
        let dataset = tiny_dataset();
        // With a balanced alpha the compromise user u4 (index 3) should beat
        // both the purely-social (u2) and purely-spatial (u5) favourites.
        let result = exhaustive_query(&dataset, &req(0, 1, 0.5), &mut QueryContext::new()).unwrap();
        assert_eq!(result.ranked[0].user, 3);
        // With alpha -> social, the strong friend u2 (index 1) wins.
        let result = exhaustive_query(&dataset, &req(0, 1, 0.9), &mut QueryContext::new()).unwrap();
        assert_eq!(result.ranked[0].user, 1);
        // With alpha -> spatial, the nearest user u5 (index 4) wins.
        let result = exhaustive_query(&dataset, &req(0, 1, 0.1), &mut QueryContext::new()).unwrap();
        assert_eq!(result.ranked[0].user, 4);
    }

    #[test]
    fn excludes_the_query_user_and_respects_k() {
        let dataset = tiny_dataset();
        let result =
            exhaustive_query(&dataset, &req(0, 10, 0.5), &mut QueryContext::new()).unwrap();
        assert_eq!(result.ranked.len(), 4);
        assert!(result.is_complete());
        assert!(result.users().iter().all(|&u| u != 0));
        let result = exhaustive_query(&dataset, &req(0, 2, 0.5), &mut QueryContext::new()).unwrap();
        assert_eq!(result.ranked.len(), 2);
        // Scores are ascending.
        assert!(result.ranked[0].score <= result.ranked[1].score);
    }

    #[test]
    fn users_without_finite_score_are_excluded() {
        let graph = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let locations = vec![
            Some(Point::new(0.0, 0.0)),
            Some(Point::new(1.0, 1.0)),
            Some(Point::new(0.2, 0.2)),
            None,
        ];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let result = exhaustive_query(&dataset, &req(0, 4, 0.5), &mut QueryContext::new()).unwrap();
        // User 2 is socially unreachable, user 3 additionally lacks a
        // location: both have infinite scores and are excluded.
        assert_eq!(result.users(), vec![1]);
    }

    #[test]
    fn request_filters_restrict_the_result() {
        let dataset = tiny_dataset();
        // Exclusion set: drop the balanced winner u4 (index 3).
        let request = QueryRequest::for_user(0)
            .k(10)
            .alpha(0.5)
            .exclude([3])
            .build()
            .unwrap();
        let result = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        assert!(!result.users().contains(&3));
        // Spatial window: only users in the lower-left quadrant qualify.
        let request = QueryRequest::for_user(0)
            .k(10)
            .alpha(0.5)
            .within(Rect::new(Point::new(0.0, 0.0), Point::new(0.6, 0.6)))
            .build()
            .unwrap();
        let result = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let mut users = result.users();
        users.sort_unstable();
        assert_eq!(users, vec![3, 4]);
        // Score cutoff below every ranking value: empty result.
        let request = QueryRequest::for_user(0)
            .k(10)
            .alpha(0.5)
            .max_score(1e-12)
            .build()
            .unwrap();
        let result = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        assert!(result.ranked.is_empty());
    }

    #[test]
    fn rejects_invalid_input() {
        let dataset = tiny_dataset();
        // `build_unvalidated` deliberately skips validation, so the
        // execution-time validation path is reachable.
        let invalid = QueryRequest::for_user(0)
            .k(0)
            .alpha(0.5)
            .build_unvalidated();
        assert!(exhaustive_query(&dataset, &invalid, &mut QueryContext::new()).is_err());
        assert!(exhaustive_query(&dataset, &req(99, 1, 0.5), &mut QueryContext::new()).is_err());
    }
}
