use crate::driver::{QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialDataset, QueryRequest, QueryResult, QueryStats, RankedUser, RankingContext,
    TopK, UserId,
};
use ssrq_graph::{IncrementalDijkstra, SearchScratch, SocialGraph};
use std::collections::HashMap;
use std::time::Instant;

/// Pre-computed lists of the `t` socially closest vertices per user (§5.4 of
/// the paper).
///
/// Materializing the lists for *every* user costs `Θ(t · |V|)` memory (the
/// paper notes that even the full all-pairs matrix would need ~16 TB for
/// Foursquare); since only query users ever read their list, the cache is
/// built for an explicit set of users — typically the query workload.
#[derive(Debug, Clone)]
pub struct SocialNeighborCache {
    t: usize,
    lists: HashMap<UserId, Vec<(UserId, f64)>>,
}

impl SocialNeighborCache {
    /// Pre-computes, for each user in `users`, its `t` socially closest
    /// vertices (excluding itself) in ascending distance order.
    pub fn build(graph: &SocialGraph, users: &[UserId], t: usize) -> Self {
        let mut lists = HashMap::with_capacity(users.len());
        // One scratch backs the expansion of every pre-computed user.
        let mut scratch = SearchScratch::with_capacity(graph.node_count());
        for &user in users {
            if !graph.contains(user) {
                continue;
            }
            let mut search = IncrementalDijkstra::new(graph, user, &mut scratch);
            let mut list = Vec::with_capacity(t);
            while list.len() < t {
                match search.next_settled(graph) {
                    Some((v, d)) if v != user => list.push((v, d)),
                    Some(_) => {}
                    None => break,
                }
            }
            lists.insert(user, list);
        }
        SocialNeighborCache { t, lists }
    }

    /// The configured list length `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of users the cache covers.
    pub fn covered_users(&self) -> usize {
        self.lists.len()
    }

    /// The users the cache holds a list for (arbitrary order).
    pub fn covered(&self) -> impl Iterator<Item = UserId> + '_ {
        self.lists.keys().copied()
    }

    /// The pre-computed list of `user`, if it was built.
    pub fn neighbors(&self, user: UserId) -> Option<&[(UserId, f64)]> {
        self.lists.get(&user).map(|v| v.as_slice())
    }

    /// Approximate memory footprint of the cache in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|v| v.len() * std::mem::size_of::<(UserId, f64)>())
            .sum()
    }
}

/// The pre-computation method (§5.4, "AIS-Cache" in Figure 11) as a
/// resumable state machine: the SFA loop over the cached, already-sorted
/// social neighbour list of the query user, one cached entry per
/// [`QueryDriver::step`], with a lazy fallback when the cache proves
/// insufficient.
///
/// Because a mid-scan step cannot yet know whether the list will terminate
/// the search or exhaust into the fallback (which *replaces* the interim
/// result), this driver is **drain-after-complete**:
/// [`QueryDriver::drain_finalized`] yields nothing and the whole result
/// arrives at [`QueryDriver::take_result`].
#[derive(Debug)]
pub struct CachedDriver<'a, F> {
    dataset: &'a GeoSocialDataset,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    /// The cached list of the query user; `None` when the cache does not
    /// cover the user (the fallback runs on the first step).
    list: Option<&'a [(UserId, f64)]>,
    /// The configured list length `t` of the cache the list came from.
    t: usize,
    idx: usize,
    fallback: Option<F>,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl<'a, F> CachedDriver<'a, F>
where
    F: FnOnce(&QueryRequest) -> Result<QueryResult, CoreError>,
{
    /// Starts a cached-list search; `fallback` is invoked lazily, only when
    /// the cache proves insufficient, and must produce a complete result.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        cache: &'a SocialNeighborCache,
        request: &QueryRequest,
        fallback: F,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        Ok(CachedDriver {
            ctx: RankingContext::new(dataset, request),
            topk: TopK::for_request(request),
            list: cache.neighbors(request.user()),
            t: cache.t(),
            idx: 0,
            fallback: Some(fallback),
            dataset,
            request: request.clone(),
            stats: QueryStats::default(),
            start,
            result: None,
            done: false,
        })
    }

    /// Runs the fallback and completes with its (stat-absorbed) result.
    /// `deferred` marks the no-list case, where the fallback result is
    /// passed through unchanged except for the wall clock.
    fn complete_with_fallback(&mut self, deferred: bool) -> StepOutcome {
        let fallback = self.fallback.take().expect("cached fallback invoked twice");
        self.result = Some(match fallback(&self.request) {
            Ok(mut result) => {
                if deferred {
                    result.stats.runtime = self.start.elapsed();
                } else {
                    self.stats.absorb(&result.stats);
                    self.stats.runtime = self.start.elapsed();
                    result.stats = self.stats;
                }
                Ok(result)
            }
            Err(error) => {
                // Keep the scan's counters meaningful for post-mortem
                // `stats()` snapshots even though the query failed.
                self.stats.runtime = self.start.elapsed();
                Err(error)
            }
        });
        self.done = true;
        StepOutcome::Complete
    }

    fn complete(&mut self) -> StepOutcome {
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }
}

impl<F> QueryDriver for CachedDriver<'_, F>
where
    F: FnOnce(&QueryRequest) -> Result<QueryResult, CoreError>,
{
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        let Some(list) = self.list else {
            // No list for this user: defer to the fallback entirely.
            return self.complete_with_fallback(true);
        };
        let Some(&(user, raw_social)) = list.get(self.idx) else {
            // A list shorter than `t` means the whole component was
            // materialized — the remaining users are socially unreachable
            // and cannot qualify.
            if list.len() >= self.t {
                // The cache is exhausted but the termination condition never
                // held: the correct answer may involve users beyond the
                // cached horizon.
                return self.complete_with_fallback(false);
            }
            self.topk.raise_threshold(f64::INFINITY);
            return self.complete();
        };
        self.idx += 1;
        self.stats.cache_hits += 1;
        self.stats.vertex_pops += 1;
        if self.request.admits(self.dataset, user) {
            let (score, social_norm, spatial_norm) =
                self.ctx.score_from_raw_social(user, raw_social);
            self.stats.evaluated_users += 1;
            self.topk.consider(RankedUser {
                user,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        let theta = self.request.alpha() * self.ctx.normalize_social(raw_social);
        self.topk.raise_threshold(theta);
        if theta >= self.topk.fk() {
            return self.complete();
        }
        StepOutcome::Progress
    }

    fn drain_finalized(&mut self, _out: &mut Vec<RankedUser>) {
        // Drain-after-complete: mid-scan entries may still be superseded by
        // the fallback's complete result, so nothing is emitted early.
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        if !self.done {
            stats.streamable_results = self.topk.finalized();
            stats.runtime = self.start.elapsed();
        }
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("CachedDriver not complete or result already taken")
    }
}

/// SSRQ processing with the pre-computed lists ("AIS-Cache" in Figure 11):
/// run the SFA loop over the cached, already-sorted social neighbour list of
/// the query user; if the list is exhausted before the termination condition
/// holds, fall back to the supplied AIS query.
///
/// `fallback` is invoked lazily, only when the cache proves insufficient; it
/// receives the original parameters and must produce a complete result.
///
/// This is the eager wrapper over [`CachedDriver`].
pub fn cached_query<F>(
    dataset: &GeoSocialDataset,
    cache: &SocialNeighborCache,
    request: &QueryRequest,
    fallback: F,
) -> Result<QueryResult, CoreError>
where
    F: FnOnce(&QueryRequest) -> Result<QueryResult, CoreError>,
{
    CachedDriver::new(dataset, cache, request, fallback)?.run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use crate::QueryContext;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 30u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.5 + (i % 4) as f64 * 0.25)
                .unwrap();
        }
        for i in (0..n).step_by(5) {
            builder.add_edge(i, (i + 9) % n, 1.1).unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                Some(Point::new(
                    ((i as f64) * 0.55) % 1.0,
                    ((i as f64) * 0.31) % 1.0,
                ))
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn cache_lists_are_sorted_and_bounded() {
        let dataset = dataset();
        let cache = SocialNeighborCache::build(dataset.graph(), &[0, 5, 10], 7);
        assert_eq!(cache.t(), 7);
        assert_eq!(cache.covered_users(), 3);
        assert!(cache.memory_bytes() > 0);
        for user in [0u32, 5, 10] {
            let list = cache.neighbors(user).unwrap();
            assert!(list.len() <= 7);
            for w in list.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            assert!(list.iter().all(|&(v, _)| v != user));
        }
        assert!(cache.neighbors(3).is_none());
    }

    #[test]
    fn large_cache_answers_without_fallback() {
        let dataset = dataset();
        // t as large as the graph: the cache can always terminate on its own.
        let cache = SocialNeighborCache::build(dataset.graph(), &[0, 12], 30);
        for user in [0u32, 12] {
            for &alpha in &[0.3, 0.7] {
                let request = req(user, 5, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = cached_query(&dataset, &cache, &request, |_| {
                    panic!("fallback must not be used when the cache suffices")
                })
                .unwrap();
                assert!(got.same_users_and_scores(&expected, 1e-9));
            }
        }
    }

    #[test]
    fn small_cache_falls_back_and_stays_correct() {
        let dataset = dataset();
        let cache = SocialNeighborCache::build(dataset.graph(), &[0], 2);
        let request = req(0, 8, 0.2);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = cached_query(&dataset, &cache, &request, |p| {
            exhaustive_query(&dataset, p, &mut QueryContext::new())
        })
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
    }

    #[test]
    fn uncovered_user_goes_straight_to_fallback() {
        let dataset = dataset();
        let cache = SocialNeighborCache::build(dataset.graph(), &[1], 5);
        let request = req(2, 3, 0.5);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = cached_query(&dataset, &cache, &request, |p| {
            exhaustive_query(&dataset, p, &mut QueryContext::new())
        })
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
    }

    #[test]
    fn exhausted_component_needs_no_fallback() {
        // Two components; the query user's component is smaller than t, so
        // the cached list covers it completely and no fallback is needed.
        let graph =
            GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
                .unwrap();
        let locations = vec![Some(Point::new(0.1, 0.1)); 6];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let cache = SocialNeighborCache::build(dataset.graph(), &[0], 10);
        let request = req(0, 5, 0.5);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = cached_query(&dataset, &cache, &request, |_| {
            panic!("fallback must not run when the component is exhausted")
        })
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
    }
}
