use crate::{
    CoreError, GeoSocialDataset, QueryRequest, QueryResult, QueryStats, RankedUser, RankingContext,
    TopK, UserId,
};
use ssrq_graph::{IncrementalDijkstra, SearchScratch, SocialGraph};
use std::collections::HashMap;
use std::time::Instant;

/// Pre-computed lists of the `t` socially closest vertices per user (§5.4 of
/// the paper).
///
/// Materializing the lists for *every* user costs `Θ(t · |V|)` memory (the
/// paper notes that even the full all-pairs matrix would need ~16 TB for
/// Foursquare); since only query users ever read their list, the cache is
/// built for an explicit set of users — typically the query workload.
#[derive(Debug, Clone)]
pub struct SocialNeighborCache {
    t: usize,
    lists: HashMap<UserId, Vec<(UserId, f64)>>,
}

impl SocialNeighborCache {
    /// Pre-computes, for each user in `users`, its `t` socially closest
    /// vertices (excluding itself) in ascending distance order.
    pub fn build(graph: &SocialGraph, users: &[UserId], t: usize) -> Self {
        let mut lists = HashMap::with_capacity(users.len());
        // One scratch backs the expansion of every pre-computed user.
        let mut scratch = SearchScratch::with_capacity(graph.node_count());
        for &user in users {
            if !graph.contains(user) {
                continue;
            }
            let mut search = IncrementalDijkstra::new(graph, user, &mut scratch);
            let mut list = Vec::with_capacity(t);
            while list.len() < t {
                match search.next_settled(graph) {
                    Some((v, d)) if v != user => list.push((v, d)),
                    Some(_) => {}
                    None => break,
                }
            }
            lists.insert(user, list);
        }
        SocialNeighborCache { t, lists }
    }

    /// The configured list length `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of users the cache covers.
    pub fn covered_users(&self) -> usize {
        self.lists.len()
    }

    /// The pre-computed list of `user`, if it was built.
    pub fn neighbors(&self, user: UserId) -> Option<&[(UserId, f64)]> {
        self.lists.get(&user).map(|v| v.as_slice())
    }

    /// Approximate memory footprint of the cache in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.lists
            .values()
            .map(|v| v.len() * std::mem::size_of::<(UserId, f64)>())
            .sum()
    }
}

/// SSRQ processing with the pre-computed lists ("AIS-Cache" in Figure 11):
/// run the SFA loop over the cached, already-sorted social neighbour list of
/// the query user; if the list is exhausted before the termination condition
/// holds, fall back to the supplied AIS query.
///
/// `fallback` is invoked lazily, only when the cache proves insufficient; it
/// receives the original parameters and must produce a complete result.
pub fn cached_query<F>(
    dataset: &GeoSocialDataset,
    cache: &SocialNeighborCache,
    request: &QueryRequest,
    fallback: F,
) -> Result<QueryResult, CoreError>
where
    F: FnOnce(&QueryRequest) -> Result<QueryResult, CoreError>,
{
    request.validate()?;
    dataset.check_user(request.user())?;
    let start = Instant::now();
    let ctx = RankingContext::new(dataset, request);
    let mut stats = QueryStats::default();
    let mut topk = TopK::for_request(request);

    let Some(list) = cache.neighbors(request.user()) else {
        // No list for this user: defer to the fallback entirely.
        let mut result = fallback(request)?;
        result.stats.runtime = start.elapsed();
        return Ok(result);
    };

    let mut terminated = false;
    for &(user, raw_social) in list {
        stats.cache_hits += 1;
        stats.vertex_pops += 1;
        if request.admits(dataset, user) {
            let (score, social_norm, spatial_norm) = ctx.score_from_raw_social(user, raw_social);
            stats.evaluated_users += 1;
            topk.consider(RankedUser {
                user,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        let theta = request.alpha() * ctx.normalize_social(raw_social);
        topk.raise_threshold(theta);
        if theta >= topk.fk() {
            terminated = true;
            break;
        }
    }
    // A list shorter than `t` means the whole component was materialized —
    // the remaining users are socially unreachable and cannot qualify.
    if !terminated && list.len() >= cache.t() {
        // The cache is exhausted but the termination condition never held:
        // the correct answer may involve users beyond the cached horizon.
        let mut result = fallback(request)?;
        stats.absorb(&result.stats);
        stats.runtime = start.elapsed();
        result.stats = stats;
        return Ok(result);
    }
    if !terminated {
        // Whole component scanned: the remaining users are socially
        // unreachable (infinite score for α > 0), so the result is final.
        topk.raise_threshold(f64::INFINITY);
    }

    stats.streamable_results = topk.finalized();
    stats.runtime = start.elapsed();
    Ok(QueryResult {
        ranked: topk.into_sorted_vec(),
        k: request.k(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use crate::QueryContext;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 30u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.5 + (i % 4) as f64 * 0.25)
                .unwrap();
        }
        for i in (0..n).step_by(5) {
            builder.add_edge(i, (i + 9) % n, 1.1).unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                Some(Point::new(
                    ((i as f64) * 0.55) % 1.0,
                    ((i as f64) * 0.31) % 1.0,
                ))
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn cache_lists_are_sorted_and_bounded() {
        let dataset = dataset();
        let cache = SocialNeighborCache::build(dataset.graph(), &[0, 5, 10], 7);
        assert_eq!(cache.t(), 7);
        assert_eq!(cache.covered_users(), 3);
        assert!(cache.memory_bytes() > 0);
        for user in [0u32, 5, 10] {
            let list = cache.neighbors(user).unwrap();
            assert!(list.len() <= 7);
            for w in list.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            assert!(list.iter().all(|&(v, _)| v != user));
        }
        assert!(cache.neighbors(3).is_none());
    }

    #[test]
    fn large_cache_answers_without_fallback() {
        let dataset = dataset();
        // t as large as the graph: the cache can always terminate on its own.
        let cache = SocialNeighborCache::build(dataset.graph(), &[0, 12], 30);
        for user in [0u32, 12] {
            for &alpha in &[0.3, 0.7] {
                let request = req(user, 5, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = cached_query(&dataset, &cache, &request, |_| {
                    panic!("fallback must not be used when the cache suffices")
                })
                .unwrap();
                assert!(got.same_users_and_scores(&expected, 1e-9));
            }
        }
    }

    #[test]
    fn small_cache_falls_back_and_stays_correct() {
        let dataset = dataset();
        let cache = SocialNeighborCache::build(dataset.graph(), &[0], 2);
        let request = req(0, 8, 0.2);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = cached_query(&dataset, &cache, &request, |p| {
            exhaustive_query(&dataset, p, &mut QueryContext::new())
        })
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
    }

    #[test]
    fn uncovered_user_goes_straight_to_fallback() {
        let dataset = dataset();
        let cache = SocialNeighborCache::build(dataset.graph(), &[1], 5);
        let request = req(2, 3, 0.5);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = cached_query(&dataset, &cache, &request, |p| {
            exhaustive_query(&dataset, p, &mut QueryContext::new())
        })
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
    }

    #[test]
    fn exhausted_component_needs_no_fallback() {
        // Two components; the query user's component is smaller than t, so
        // the cached list covers it completely and no fallback is needed.
        let graph =
            GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
                .unwrap();
        let locations = vec![Some(Point::new(0.1, 0.1)); 6];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let cache = SocialNeighborCache::build(dataset.graph(), &[0], 10);
        let request = req(0, 5, 0.5);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = cached_query(&dataset, &cache, &request, |_| {
            panic!("fallback must not run when the component is exhausted")
        })
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
    }
}
