use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK, UserId,
};
use ssrq_graph::{ContractionHierarchy, IncrementalDijkstra, LandmarkSet};
use ssrq_spatial::UniformGrid;
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of the Twofold Search Approach (TSA, §4.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct TsaOptions<'a> {
    /// Probe the two searches with the Quick Combine heuristic instead of
    /// round-robin (the TSA-QC variant).
    pub quick_combine: bool,
    /// Landmark set used to prune candidates before the second phase (the
    /// "TSA with landmarks" enhancement); `None` disables pruning.
    pub landmarks: Option<&'a LandmarkSet>,
    /// When set, the second phase evaluates the surviving candidates with
    /// Contraction Hierarchies point-to-point queries instead of continuing
    /// the social expansion (the TSA-CH baseline of Figure 8).
    pub ch_phase2: Option<&'a ContractionHierarchy>,
}

/// The Twofold Search Approach (TSA): a concurrent social and spatial search
/// that maintains lower bounds in *both* domains (Algorithm 1 of the paper).
///
/// **Phase 1** alternates between the social expansion (Dijkstra around
/// `v_q`) and the incremental spatial NN search around `u_q`.  Socially
/// encountered users are fully evaluated on the spot (their Euclidean
/// distance is cheap); spatially encountered users that the social search
/// has not yet reached are parked in the candidate set `Q`.  The phase ends
/// when `θ = α·t_p + (1−α)·t_d ≥ f_k`.
///
/// **Phase 2** evaluates (or disqualifies) the candidates in `Q`; only the
/// social search continues, because further spatial progress cannot tighten
/// the bound `θ' = α·t_p + (1−α)·t'_d` (Lemma 1 of the paper).
pub fn tsa_query(
    dataset: &GeoSocialDataset,
    grid: &UniformGrid,
    request: &QueryRequest,
    options: TsaOptions<'_>,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    request.validate()?;
    dataset.check_user(request.user())?;
    let start = Instant::now();
    let ctx = RankingContext::new(dataset, request);
    let alpha = request.alpha();
    let mut stats = QueryStats::default();
    let mut topk = TopK::for_request(request);

    let query_location = dataset.location(request.user());

    let mut social = IncrementalDijkstra::new(dataset.graph(), request.user(), &mut qctx.social);
    let mut spatial = query_location.map(|loc| grid.nearest_neighbors(loc));

    // Candidate set Q: user -> normalized spatial distance.
    let mut candidates: HashMap<UserId, f64> = HashMap::new();

    // Lower bounds on the next result from each domain (normalized).
    let mut tp = 0.0_f64; // last social distance seen
    let mut td = 0.0_f64; // last spatial distance seen
    let mut social_exhausted = false;
    let mut spatial_exhausted = spatial.is_none();

    // A conservative lower bound on the spatial distance of every candidate
    // ever parked in Q (the spatial stream delivers increasing distances, so
    // this is the distance of the first parked candidate).  It feeds the
    // finalization bound: a pending candidate scores at least
    // `α·t_p + (1−α)·min_pending_d`.
    let mut min_pending_d = f64::INFINITY;

    // Quick Combine bookkeeping: probes made and distance reached per
    // domain, to estimate how fast each repository's distances increase.
    let mut social_probes = 0usize;
    let mut spatial_probes = 0usize;
    let mut probe_social_next = true;

    // ---- Phase 1: concurrent social + spatial search -------------------
    while !(social_exhausted && spatial_exhausted) {
        let probe_social = if social_exhausted {
            false
        } else if spatial_exhausted {
            true
        } else if options.quick_combine {
            // Quick Combine: probe the repository whose weighted distance
            // grows fastest *per probe*, because it raises the termination
            // threshold θ the quickest.  The rate is estimated from the
            // average increase so far; until both repositories have been
            // probed a few times, alternate.
            if social_probes < 2 || spatial_probes < 2 {
                probe_social_next
            } else {
                let social_gain = alpha * tp / social_probes as f64;
                let spatial_gain = (1.0 - alpha) * td / spatial_probes as f64;
                if (social_gain - spatial_gain).abs() < f64::EPSILON {
                    probe_social_next
                } else {
                    social_gain > spatial_gain
                }
            }
        } else {
            probe_social_next
        };
        probe_social_next = !probe_social;

        if probe_social {
            match social.next_settled(dataset.graph()) {
                Some((vertex, raw_social)) => {
                    stats.social_pops += 1;
                    stats.vertex_pops += 1;
                    social_probes += 1;
                    let social_norm = ctx.normalize_social(raw_social);
                    tp = social_norm;
                    if request.admits(dataset, vertex) {
                        let spatial_norm = ctx.spatial(vertex);
                        let score = ctx.score(social_norm, spatial_norm);
                        stats.evaluated_users += 1;
                        topk.consider(RankedUser {
                            user: vertex,
                            score,
                            social: social_norm,
                            spatial: spatial_norm,
                        });
                    }
                    // A candidate reached by the social search is now fully
                    // evaluated (or inadmissible) and must leave Q
                    // (lines 7–8).
                    candidates.remove(&vertex);
                }
                None => {
                    social_exhausted = true;
                    tp = f64::INFINITY;
                }
            }
        } else if let Some(nn) = spatial.as_mut() {
            match nn.next() {
                Some(neighbor) => {
                    stats.spatial_pops = nn.pops();
                    stats.vertex_pops += 1;
                    spatial_probes += 1;
                    let spatial_norm = ctx.normalize_spatial(neighbor.distance);
                    td = spatial_norm;
                    if request.admits(dataset, neighbor.id) && !social.is_settled(neighbor.id) {
                        candidates.insert(neighbor.id, spatial_norm);
                        min_pending_d = min_pending_d.min(spatial_norm);
                    }
                }
                None => {
                    spatial_exhausted = true;
                    td = f64::INFINITY;
                }
            }
        }

        let theta = alpha * tp + (1.0 - alpha) * td;
        // Entries below the *pending-aware* bound are final: future stream
        // deliveries score at least θ, parked candidates at least
        // `α·t_p + (1−α)·min_pending_d`.
        topk.raise_threshold(alpha * tp + (1.0 - alpha) * td.min(min_pending_d));
        if theta >= topk.fk() {
            break;
        }
    }

    // ---- Landmark pruning of candidates (TSA with landmarks) -----------
    if let Some(landmarks) = options.landmarks {
        let fk = topk.fk();
        candidates.retain(|&user, &mut spatial_norm| {
            let social_lb = ctx.normalize_social(landmarks.lower_bound(request.user(), user));
            ctx.score_lower_bound(social_lb, spatial_norm) < fk
        });
    }

    // ---- Phase 2: evaluate or disqualify the candidates ----------------
    if let Some(ch) = options.ch_phase2 {
        // CH-based evaluation: compute the exact social distance of every
        // surviving candidate with a point-to-point CH query, cheapest
        // spatial distance first so that f_k tightens early.
        let mut order: Vec<(UserId, f64)> = candidates.into_iter().collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        for (user, spatial_norm) in order {
            // θ' with this candidate's spatial distance as t'_d — a bound on
            // this and every later candidate (the order is ascending).
            let theta_prime = alpha * tp + (1.0 - alpha) * spatial_norm;
            topk.raise_threshold(theta_prime);
            if theta_prime >= topk.fk() {
                break;
            }
            let raw_social = ch.distance_with(request.user(), user, &mut qctx.ch);
            stats.distance_calls += 1;
            stats.evaluated_users += 1;
            let social_norm = ctx.normalize_social(raw_social);
            let score = ctx.score(social_norm, spatial_norm);
            topk.consider(RankedUser {
                user,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
    } else {
        // Continue the social expansion until every candidate is either
        // found (evaluated exactly) or provably disqualified by θ'.
        let mut t_d_prime = min_value(&candidates);
        while !candidates.is_empty() {
            let theta_prime = alpha * tp + (1.0 - alpha) * t_d_prime;
            topk.raise_threshold(theta_prime);
            if theta_prime >= topk.fk() {
                break;
            }
            match social.next_settled(dataset.graph()) {
                Some((vertex, raw_social)) => {
                    stats.social_pops += 1;
                    stats.vertex_pops += 1;
                    let social_norm = ctx.normalize_social(raw_social);
                    tp = social_norm;
                    if let Some(spatial_norm) = candidates.remove(&vertex) {
                        let score = ctx.score(social_norm, spatial_norm);
                        stats.evaluated_users += 1;
                        topk.consider(RankedUser {
                            user: vertex,
                            score,
                            social: social_norm,
                            spatial: spatial_norm,
                        });
                        t_d_prime = min_value(&candidates);
                    }
                }
                None => {
                    // Remaining candidates are socially unreachable: the
                    // interim result is final.
                    topk.raise_threshold(f64::INFINITY);
                    break;
                }
            }
        }
        if candidates.is_empty() {
            // Every candidate was resolved; only users beyond both streams
            // remain, and they score at least θ'.
            let theta_prime = alpha * tp + (1.0 - alpha) * t_d_prime;
            topk.raise_threshold(theta_prime);
        }
    }

    stats.streamable_results = topk.finalized();
    stats.runtime = start.elapsed();
    Ok(QueryResult {
        ranked: topk.into_sorted_vec(),
        k: request.k(),
        stats,
    })
}

fn min_value(candidates: &HashMap<UserId, f64>) -> f64 {
    candidates.values().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use ssrq_graph::{GraphBuilder, LandmarkSelection};
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 42u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.2 + (i % 6) as f64 * 0.3)
                .unwrap();
        }
        for i in (0..n).step_by(3) {
            builder
                .add_edge(i, (i + 17) % n, 0.7 + (i % 5) as f64 * 0.35)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 13 == 12 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.709_803) % 1.0,
                        ((i as f64 + 1.0) * 0.367_879) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn grid_for(dataset: &GeoSocialDataset) -> UniformGrid {
        UniformGrid::bulk_load(Rect::unit(), 8, dataset.located_users()).unwrap()
    }

    #[test]
    fn plain_tsa_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for &alpha in &[0.1, 0.5, 0.9] {
            for &k in &[1usize, 5, 10] {
                for user in [0u32, 9, 20, 37] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    let got = tsa_query(
                        &dataset,
                        &grid,
                        &request,
                        TsaOptions::default(),
                        &mut QueryContext::new(),
                    )
                    .unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "alpha {alpha}, k {k}, user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_under_request_filters() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for user in [0u32, 20] {
            let request = QueryRequest::for_user(user)
                .k(6)
                .alpha(0.5)
                .within(Rect::new(Point::new(0.05, 0.05), Point::new(0.85, 0.9)))
                .exclude([2, 7, 11])
                .max_score(0.65)
                .build()
                .unwrap();
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = tsa_query(
                &dataset,
                &grid,
                &request,
                TsaOptions::default(),
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn quick_combine_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for &alpha in &[0.2, 0.8] {
            for user in [1u32, 14, 30] {
                let request = req(user, 6, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = tsa_query(
                    &dataset,
                    &grid,
                    &request,
                    TsaOptions {
                        quick_combine: true,
                        ..TsaOptions::default()
                    },
                    &mut QueryContext::new(),
                )
                .unwrap();
                assert!(got.same_users_and_scores(&expected, 1e-9));
            }
        }
    }

    #[test]
    fn landmark_pruning_preserves_correctness() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let landmarks =
            LandmarkSet::build(dataset.graph(), 4, LandmarkSelection::FarthestFirst, 5).unwrap();
        for &alpha in &[0.3, 0.6] {
            for user in [4u32, 26] {
                let request = req(user, 8, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = tsa_query(
                    &dataset,
                    &grid,
                    &request,
                    TsaOptions {
                        landmarks: Some(&landmarks),
                        ..TsaOptions::default()
                    },
                    &mut QueryContext::new(),
                )
                .unwrap();
                assert!(got.same_users_and_scores(&expected, 1e-9));
            }
        }
    }

    #[test]
    fn ch_phase2_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let ch = ContractionHierarchy::new(dataset.graph());
        let landmarks =
            LandmarkSet::build(dataset.graph(), 4, LandmarkSelection::FarthestFirst, 5).unwrap();
        for user in [0u32, 11, 33] {
            let request = req(user, 5, 0.4);
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = tsa_query(
                &dataset,
                &grid,
                &request,
                TsaOptions {
                    landmarks: Some(&landmarks),
                    ch_phase2: Some(&ch),
                    ..TsaOptions::default()
                },
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn unlocated_query_user_falls_back_to_social_only_stream() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        // User 12 has no location: every candidate's spatial distance is
        // infinite, so only the social stream contributes and no finite
        // score exists (alpha < 1).
        let request = req(12, 5, 0.5);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = tsa_query(
            &dataset,
            &grid,
            &request,
            TsaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
        assert!(got.ranked.is_empty());
    }

    #[test]
    fn stats_reflect_twofold_search() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let result = tsa_query(
            &dataset,
            &grid,
            &req(0, 5, 0.5),
            TsaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.social_pops > 0);
        assert!(result.stats.spatial_pops > 0);
    }
}
