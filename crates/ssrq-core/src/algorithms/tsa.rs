use crate::driver::{drain_new_finalized, QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK, UserId,
};
use ssrq_graph::{ContractionHierarchy, IncrementalDijkstra, LandmarkSet};
use ssrq_spatial::{IncrementalNn, UniformGrid};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of the Twofold Search Approach (TSA, §4.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct TsaOptions<'a> {
    /// Probe the two searches with the Quick Combine heuristic instead of
    /// round-robin (the TSA-QC variant).
    pub quick_combine: bool,
    /// Landmark set used to prune candidates before the second phase (the
    /// "TSA with landmarks" enhancement); `None` disables pruning.
    pub landmarks: Option<&'a LandmarkSet>,
    /// When set, the second phase evaluates the surviving candidates with
    /// Contraction Hierarchies point-to-point queries instead of continuing
    /// the social expansion (the TSA-CH baseline of Figure 8).
    pub ch_phase2: Option<&'a ContractionHierarchy>,
}

/// Where the TSA machine currently is.
#[derive(Debug)]
enum TsaPhase {
    /// Phase 1: concurrent social + spatial search, one probe per step.
    Concurrent,
    /// Phase 2, CH flavour: the surviving candidates in ascending spatial
    /// order, one CH evaluation per step.
    EvalCh {
        order: Vec<(UserId, f64)>,
        idx: usize,
    },
    /// Phase 2, social flavour: the social expansion continues, one settled
    /// vertex per step; `t_d_prime` is the smallest spatial distance among
    /// the remaining candidates.
    EvalSocial { t_d_prime: f64 },
}

/// The Twofold Search Approach (TSA, Algorithm 1 of the paper) as a
/// resumable state machine.
///
/// **Phase 1** alternates between the social expansion (Dijkstra around
/// `v_q`) and the incremental spatial NN search around `u_q` — one probe
/// per [`QueryDriver::step`].  Socially encountered users are fully
/// evaluated on the spot (their Euclidean distance is cheap); spatially
/// encountered users that the social search has not yet reached are parked
/// in the candidate set `Q`.  The phase ends when
/// `θ = α·t_p + (1−α)·t_d ≥ f_k`.
///
/// **Phase 2** evaluates (or disqualifies) the candidates in `Q`, one
/// candidate/probe per step; only the social search continues, because
/// further spatial progress cannot tighten the bound
/// `θ' = α·t_p + (1−α)·t'_d` (Lemma 1 of the paper).
///
/// Throughout, the *pending-aware* bound
/// `α·t_p + (1−α)·min(t_d, min_pending_d)` finalizes result entries, so the
/// driver emits top-k entries while both searches are still running.
#[derive(Debug)]
pub struct TsaDriver<'a> {
    dataset: &'a GeoSocialDataset,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    quick_combine: bool,
    landmarks: Option<&'a LandmarkSet>,
    ch_phase2: Option<&'a ContractionHierarchy>,
    ch_scratch: &'a mut ssrq_graph::ChQueryScratch,
    social: IncrementalDijkstra<'a>,
    spatial: Option<IncrementalNn<'a>>,
    /// Candidate set Q: user -> normalized spatial distance.
    candidates: HashMap<UserId, f64>,
    // Lower bounds on the next result from each domain (normalized).
    tp: f64,
    td: f64,
    social_exhausted: bool,
    spatial_exhausted: bool,
    /// A conservative lower bound on the spatial distance of every candidate
    /// ever parked in Q (the spatial stream delivers increasing distances,
    /// so this is the distance of the first parked candidate).  It feeds the
    /// finalization bound: a pending candidate scores at least
    /// `α·t_p + (1−α)·min_pending_d`.
    min_pending_d: f64,
    // Quick Combine bookkeeping: probes made and distance reached per
    // domain, to estimate how fast each repository's distances increase.
    social_probes: usize,
    spatial_probes: usize,
    probe_social_next: bool,
    phase: TsaPhase,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    emitted: usize,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl<'a> TsaDriver<'a> {
    /// Starts a TSA search over the engine's uniform grid.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        grid: &'a UniformGrid,
        request: &QueryRequest,
        options: TsaOptions<'a>,
        qctx: &'a mut QueryContext,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        let QueryContext { social, ch } = qctx;
        let spatial = request
            .resolved_origin(dataset)
            .map(|loc| grid.nearest_neighbors(loc));
        Ok(TsaDriver {
            ctx: RankingContext::new(dataset, request),
            topk: TopK::for_request(request),
            quick_combine: options.quick_combine,
            landmarks: options.landmarks,
            ch_phase2: options.ch_phase2,
            ch_scratch: ch,
            social: IncrementalDijkstra::new(dataset.graph(), request.user(), social),
            spatial_exhausted: spatial.is_none(),
            spatial,
            candidates: HashMap::new(),
            tp: 0.0,
            td: 0.0,
            social_exhausted: false,
            min_pending_d: f64::INFINITY,
            social_probes: 0,
            spatial_probes: 0,
            probe_social_next: true,
            phase: TsaPhase::Concurrent,
            dataset,
            request: request.clone(),
            stats: QueryStats::default(),
            start,
            emitted: 0,
            result: None,
            done: false,
        })
    }

    fn complete(&mut self) -> StepOutcome {
        self.stats.relaxed_edges = self.social.relaxations();
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }

    /// Phase-1 → phase-2 transition: landmark pruning of the candidate set,
    /// then the flavour-specific phase-2 setup.
    fn begin_phase2(&mut self) {
        if let Some(landmarks) = self.landmarks {
            let fk = self.topk.fk();
            let ctx = self.ctx;
            let user_q = self.request.user();
            self.candidates.retain(|&user, &mut spatial_norm| {
                let social_lb = ctx.normalize_social(landmarks.lower_bound(user_q, user));
                ctx.score_lower_bound(social_lb, spatial_norm) < fk
            });
        }
        if self.ch_phase2.is_some() {
            // CH-based evaluation: cheapest spatial distance first so that
            // f_k tightens early (ties broken on user id for determinism).
            let mut order: Vec<(UserId, f64)> = self.candidates.drain().collect();
            order.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            self.phase = TsaPhase::EvalCh { order, idx: 0 };
        } else {
            self.phase = TsaPhase::EvalSocial {
                t_d_prime: min_value(&self.candidates),
            };
        }
    }

    /// One phase-1 probe (a loop iteration of Algorithm 1).
    fn step_concurrent(&mut self) -> StepOutcome {
        if self.social_exhausted && self.spatial_exhausted {
            self.begin_phase2();
            return StepOutcome::Progress;
        }
        let alpha = self.request.alpha();
        let probe_social = if self.social_exhausted {
            false
        } else if self.spatial_exhausted {
            true
        } else if self.quick_combine {
            // Quick Combine: probe the repository whose weighted distance
            // grows fastest *per probe*, because it raises the termination
            // threshold θ the quickest.  The rate is estimated from the
            // average increase so far; until both repositories have been
            // probed a few times, alternate.
            if self.social_probes < 2 || self.spatial_probes < 2 {
                self.probe_social_next
            } else {
                let social_gain = alpha * self.tp / self.social_probes as f64;
                let spatial_gain = (1.0 - alpha) * self.td / self.spatial_probes as f64;
                if (social_gain - spatial_gain).abs() < f64::EPSILON {
                    self.probe_social_next
                } else {
                    social_gain > spatial_gain
                }
            }
        } else {
            self.probe_social_next
        };
        self.probe_social_next = !probe_social;

        if probe_social {
            match self.social.next_settled(self.dataset.graph()) {
                Some((vertex, raw_social)) => {
                    self.stats.social_pops += 1;
                    self.stats.vertex_pops += 1;
                    self.social_probes += 1;
                    let social_norm = self.ctx.normalize_social(raw_social);
                    self.tp = social_norm;
                    if self.request.admits(self.dataset, vertex) {
                        let spatial_norm = self.ctx.spatial(vertex);
                        let score = self.ctx.score(social_norm, spatial_norm);
                        self.stats.evaluated_users += 1;
                        self.topk.consider(RankedUser {
                            user: vertex,
                            score,
                            social: social_norm,
                            spatial: spatial_norm,
                        });
                    }
                    // A candidate reached by the social search is now fully
                    // evaluated (or inadmissible) and must leave Q
                    // (lines 7–8).
                    self.candidates.remove(&vertex);
                }
                None => {
                    self.social_exhausted = true;
                    self.tp = f64::INFINITY;
                }
            }
        } else if let Some(nn) = self.spatial.as_mut() {
            match nn.next() {
                Some(neighbor) => {
                    self.stats.spatial_pops = nn.pops();
                    self.stats.vertex_pops += 1;
                    self.spatial_probes += 1;
                    let spatial_norm = self.ctx.normalize_spatial(neighbor.distance);
                    self.td = spatial_norm;
                    if self.request.admits(self.dataset, neighbor.id)
                        && !self.social.is_settled(neighbor.id)
                    {
                        self.candidates.insert(neighbor.id, spatial_norm);
                        self.min_pending_d = self.min_pending_d.min(spatial_norm);
                    }
                }
                None => {
                    self.spatial_exhausted = true;
                    self.td = f64::INFINITY;
                }
            }
        }

        let theta = alpha * self.tp + (1.0 - alpha) * self.td;
        // Entries below the *pending-aware* bound are final: future stream
        // deliveries score at least θ, parked candidates at least
        // `α·t_p + (1−α)·min_pending_d`.
        self.topk
            .raise_threshold(alpha * self.tp + (1.0 - alpha) * self.td.min(self.min_pending_d));
        if theta >= self.topk.fk() {
            self.begin_phase2();
        }
        StepOutcome::Progress
    }

    /// One CH-flavoured phase-2 candidate evaluation.
    fn step_eval_ch(&mut self, idx: usize) -> StepOutcome {
        let alpha = self.request.alpha();
        let order = match std::mem::replace(&mut self.phase, TsaPhase::Concurrent) {
            TsaPhase::EvalCh { order, .. } => order,
            _ => unreachable!("step_eval_ch called outside EvalCh"),
        };
        let entry = order.get(idx).copied();
        self.phase = TsaPhase::EvalCh {
            order,
            idx: idx + 1,
        };
        let Some((user, spatial_norm)) = entry else {
            return self.complete();
        };
        // θ' with this candidate's spatial distance as t'_d — a bound on
        // this and every later candidate (the order is ascending).
        let theta_prime = alpha * self.tp + (1.0 - alpha) * spatial_norm;
        self.topk.raise_threshold(theta_prime);
        if theta_prime >= self.topk.fk() {
            return self.complete();
        }
        let raw_social = self
            .ch_phase2
            .expect("EvalCh phase requires a CH index")
            .distance_with(self.request.user(), user, self.ch_scratch);
        self.stats.distance_calls += 1;
        self.stats.evaluated_users += 1;
        let social_norm = self.ctx.normalize_social(raw_social);
        let score = self.ctx.score(social_norm, spatial_norm);
        self.topk.consider(RankedUser {
            user,
            score,
            social: social_norm,
            spatial: spatial_norm,
        });
        StepOutcome::Progress
    }

    /// One social-flavoured phase-2 probe.
    fn step_eval_social(&mut self, t_d_prime: f64) -> StepOutcome {
        let alpha = self.request.alpha();
        if self.candidates.is_empty() {
            // Every candidate was resolved; only users beyond both streams
            // remain, and they score at least θ'.
            let theta_prime = alpha * self.tp + (1.0 - alpha) * t_d_prime;
            self.topk.raise_threshold(theta_prime);
            return self.complete();
        }
        let theta_prime = alpha * self.tp + (1.0 - alpha) * t_d_prime;
        self.topk.raise_threshold(theta_prime);
        if theta_prime >= self.topk.fk() {
            return self.complete();
        }
        match self.social.next_settled(self.dataset.graph()) {
            Some((vertex, raw_social)) => {
                self.stats.social_pops += 1;
                self.stats.vertex_pops += 1;
                let social_norm = self.ctx.normalize_social(raw_social);
                self.tp = social_norm;
                if let Some(spatial_norm) = self.candidates.remove(&vertex) {
                    let score = self.ctx.score(social_norm, spatial_norm);
                    self.stats.evaluated_users += 1;
                    self.topk.consider(RankedUser {
                        user: vertex,
                        score,
                        social: social_norm,
                        spatial: spatial_norm,
                    });
                    self.phase = TsaPhase::EvalSocial {
                        t_d_prime: min_value(&self.candidates),
                    };
                }
                StepOutcome::Progress
            }
            None => {
                // Remaining candidates are socially unreachable: the
                // interim result is final.
                self.topk.raise_threshold(f64::INFINITY);
                self.complete()
            }
        }
    }
}

impl QueryDriver for TsaDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        match self.phase {
            TsaPhase::Concurrent => self.step_concurrent(),
            TsaPhase::EvalCh { idx, .. } => self.step_eval_ch(idx),
            TsaPhase::EvalSocial { t_d_prime } => self.step_eval_social(t_d_prime),
        }
    }

    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>) {
        if !self.done {
            drain_new_finalized(&self.topk, &mut self.emitted, out);
        }
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        if !self.done {
            stats.relaxed_edges = self.social.relaxations();
            stats.streamable_results = self.topk.finalized();
            stats.runtime = self.start.elapsed();
        }
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("TsaDriver not complete or result already taken")
    }
}

/// The Twofold Search Approach (TSA): a concurrent social and spatial search
/// that maintains lower bounds in *both* domains (Algorithm 1 of the paper).
/// See [`TsaDriver`] for the phase structure; this is the eager wrapper
/// running the same state machine to completion.
pub fn tsa_query(
    dataset: &GeoSocialDataset,
    grid: &UniformGrid,
    request: &QueryRequest,
    options: TsaOptions<'_>,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    TsaDriver::new(dataset, grid, request, options, qctx)?.run_to_completion()
}

fn min_value(candidates: &HashMap<UserId, f64>) -> f64 {
    candidates.values().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use ssrq_graph::{GraphBuilder, LandmarkSelection};
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 42u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.2 + (i % 6) as f64 * 0.3)
                .unwrap();
        }
        for i in (0..n).step_by(3) {
            builder
                .add_edge(i, (i + 17) % n, 0.7 + (i % 5) as f64 * 0.35)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 13 == 12 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.709_803) % 1.0,
                        ((i as f64 + 1.0) * 0.367_879) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    fn grid_for(dataset: &GeoSocialDataset) -> UniformGrid {
        UniformGrid::bulk_load(Rect::unit(), 8, dataset.located_users()).unwrap()
    }

    #[test]
    fn plain_tsa_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for &alpha in &[0.1, 0.5, 0.9] {
            for &k in &[1usize, 5, 10] {
                for user in [0u32, 9, 20, 37] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    let got = tsa_query(
                        &dataset,
                        &grid,
                        &request,
                        TsaOptions::default(),
                        &mut QueryContext::new(),
                    )
                    .unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "alpha {alpha}, k {k}, user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_under_request_filters() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for user in [0u32, 20] {
            let request = QueryRequest::for_user(user)
                .k(6)
                .alpha(0.5)
                .within(Rect::new(Point::new(0.05, 0.05), Point::new(0.85, 0.9)))
                .exclude([2, 7, 11])
                .max_score(0.65)
                .build()
                .unwrap();
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = tsa_query(
                &dataset,
                &grid,
                &request,
                TsaOptions::default(),
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn quick_combine_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        for &alpha in &[0.2, 0.8] {
            for user in [1u32, 14, 30] {
                let request = req(user, 6, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = tsa_query(
                    &dataset,
                    &grid,
                    &request,
                    TsaOptions {
                        quick_combine: true,
                        ..TsaOptions::default()
                    },
                    &mut QueryContext::new(),
                )
                .unwrap();
                assert!(got.same_users_and_scores(&expected, 1e-9));
            }
        }
    }

    #[test]
    fn landmark_pruning_preserves_correctness() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let landmarks =
            LandmarkSet::build(dataset.graph(), 4, LandmarkSelection::FarthestFirst, 5).unwrap();
        for &alpha in &[0.3, 0.6] {
            for user in [4u32, 26] {
                let request = req(user, 8, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = tsa_query(
                    &dataset,
                    &grid,
                    &request,
                    TsaOptions {
                        landmarks: Some(&landmarks),
                        ..TsaOptions::default()
                    },
                    &mut QueryContext::new(),
                )
                .unwrap();
                assert!(got.same_users_and_scores(&expected, 1e-9));
            }
        }
    }

    #[test]
    fn ch_phase2_matches_exhaustive() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let ch = ContractionHierarchy::new(dataset.graph());
        let landmarks =
            LandmarkSet::build(dataset.graph(), 4, LandmarkSelection::FarthestFirst, 5).unwrap();
        for user in [0u32, 11, 33] {
            let request = req(user, 5, 0.4);
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = tsa_query(
                &dataset,
                &grid,
                &request,
                TsaOptions {
                    landmarks: Some(&landmarks),
                    ch_phase2: Some(&ch),
                    ..TsaOptions::default()
                },
                &mut QueryContext::new(),
            )
            .unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn unlocated_query_user_falls_back_to_social_only_stream() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        // User 12 has no location: every candidate's spatial distance is
        // infinite, so only the social stream contributes and no finite
        // score exists (alpha < 1).
        let request = req(12, 5, 0.5);
        let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
        let got = tsa_query(
            &dataset,
            &grid,
            &request,
            TsaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(got.same_users_and_scores(&expected, 1e-9));
        assert!(got.ranked.is_empty());
    }

    #[test]
    fn stats_reflect_twofold_search() {
        let dataset = dataset();
        let grid = grid_for(&dataset);
        let result = tsa_query(
            &dataset,
            &grid,
            &req(0, 5, 0.5),
            TsaOptions::default(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.social_pops > 0);
        assert!(result.stats.spatial_pops > 0);
    }
}
