use crate::driver::{drain_new_finalized, QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK, UserId,
};
use ssrq_graph::{ContractionHierarchy, IncrementalDijkstra};
use std::time::Instant;

/// The Social First Approach (SFA, §4.1) as a resumable state machine.
///
/// Each [`QueryDriver::step`] settles one vertex of the query-rooted social
/// Dijkstra expansion and evaluates it on the spot; the social-only lower
/// bound `θ = α · p(v_q, v_last)` finalizes result entries as it rises, so
/// the driver emits top-k entries long before the search terminates.
#[derive(Debug)]
pub struct SfaDriver<'a> {
    dataset: &'a GeoSocialDataset,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    social: IncrementalDijkstra<'a>,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    emitted: usize,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl<'a> SfaDriver<'a> {
    /// Starts an SFA search, drawing all mutable search state from `qctx`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        request: &QueryRequest,
        qctx: &'a mut QueryContext,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        Ok(SfaDriver {
            ctx: RankingContext::new(dataset, request),
            topk: TopK::for_request(request),
            social: IncrementalDijkstra::new(dataset.graph(), request.user(), &mut qctx.social),
            dataset,
            request: request.clone(),
            stats: QueryStats::default(),
            start,
            emitted: 0,
            result: None,
            done: false,
        })
    }

    fn complete(&mut self) -> StepOutcome {
        self.stats.relaxed_edges = self.social.relaxations();
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }
}

impl QueryDriver for SfaDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        let Some((vertex, raw_social)) = self.social.next_settled(self.dataset.graph()) else {
            // The expansion exhausted the component without reaching the
            // threshold: the remaining users are socially unreachable and
            // therefore have infinite ranking values (α > 0), so the
            // interim result is final — raise the bound accordingly.
            self.topk.raise_threshold(f64::INFINITY);
            return self.complete();
        };
        self.stats.social_pops += 1;
        self.stats.vertex_pops += 1;
        if self.request.admits(self.dataset, vertex) {
            let (score, social_norm, spatial_norm) =
                self.ctx.score_from_raw_social(vertex, raw_social);
            self.stats.evaluated_users += 1;
            self.topk.consider(RankedUser {
                user: vertex,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        // Termination: every unseen user is at least as far socially as the
        // last settled vertex — which also makes θ a finalization bound for
        // the entries already held.
        let theta = self.request.alpha() * self.ctx.normalize_social(raw_social);
        self.topk.raise_threshold(theta);
        if theta >= self.topk.fk() {
            return self.complete();
        }
        StepOutcome::Progress
    }

    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>) {
        if !self.done {
            drain_new_finalized(&self.topk, &mut self.emitted, out);
        }
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        if !self.done {
            stats.relaxed_edges = self.social.relaxations();
            stats.streamable_results = self.topk.finalized();
            stats.runtime = self.start.elapsed();
        }
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("SfaDriver not complete or result already taken")
    }
}

/// The Social First Approach (SFA, §4.1).
///
/// Users are processed in increasing social distance from the query user by
/// expanding the social graph with Dijkstra's algorithm.  For every settled
/// vertex the Euclidean distance (and hence the ranking value) is computed
/// directly.  The search stops when the social-only lower bound
/// `θ = α · p(v_q, v_last)` reaches the current threshold `f_k`.
///
/// This is the eager wrapper over [`SfaDriver`]: it runs the exact same
/// state machine to completion in a tight loop.
pub fn sfa_query(
    dataset: &GeoSocialDataset,
    request: &QueryRequest,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    SfaDriver::new(dataset, request, qctx)?.run_to_completion()
}

/// The two phases of the SFA-CH machine: ranking every user by its CH
/// distance, then scanning the sorted order with the SFA termination test.
#[derive(Debug)]
enum SfaChPhase {
    /// One CH point-to-point distance per step; `next_user` walks the
    /// vertex range.
    Rank { next_user: UserId },
    /// One sorted candidate per step.
    Scan { idx: usize },
}

/// The SFA-CH baseline (§6, Figure 8) as a resumable state machine.
///
/// CH provides no incremental "next socially-closest user" primitive, so
/// the machine first computes the CH distance of every user (one
/// point-to-point query per [`QueryDriver::step`]), sorts once, and then
/// scans the sorted order with the SFA termination test — entries only
/// start finalizing in the scan phase, which is exactly why the paper finds
/// the `*-CH` variants unattractive on social networks.
#[derive(Debug)]
pub struct SfaChDriver<'a> {
    dataset: &'a GeoSocialDataset,
    ch: &'a ContractionHierarchy,
    ch_scratch: &'a mut ssrq_graph::ChQueryScratch,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    order: Vec<(UserId, f64)>,
    phase: SfaChPhase,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    emitted: usize,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl<'a> SfaChDriver<'a> {
    /// Starts an SFA-CH search against the given Contraction Hierarchies
    /// index.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        ch: &'a ContractionHierarchy,
        request: &QueryRequest,
        qctx: &'a mut QueryContext,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        Ok(SfaChDriver {
            ctx: RankingContext::new(dataset, request),
            topk: TopK::for_request(request),
            order: Vec::with_capacity(dataset.user_count().saturating_sub(1)),
            phase: SfaChPhase::Rank { next_user: 0 },
            dataset,
            ch,
            ch_scratch: &mut qctx.ch,
            request: request.clone(),
            stats: QueryStats::default(),
            start,
            emitted: 0,
            result: None,
            done: false,
        })
    }

    fn complete(&mut self) -> StepOutcome {
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }
}

impl QueryDriver for SfaChDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        match self.phase {
            SfaChPhase::Rank { next_user } => {
                if next_user as usize >= self.dataset.user_count() {
                    // All distances computed: sort once (ties broken on user
                    // id for determinism) and move to the scan phase.
                    self.order.sort_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.0.cmp(&b.0))
                    });
                    self.phase = SfaChPhase::Scan { idx: 0 };
                    return StepOutcome::Progress;
                }
                self.phase = SfaChPhase::Rank {
                    next_user: next_user + 1,
                };
                if next_user == self.request.user() {
                    return StepOutcome::Progress;
                }
                let d = self
                    .ch
                    .distance_with(self.request.user(), next_user, self.ch_scratch);
                self.stats.distance_calls += 1;
                if d.is_finite() {
                    self.order.push((next_user, d));
                }
                StepOutcome::Progress
            }
            SfaChPhase::Scan { idx } => {
                let Some(&(user, raw_social)) = self.order.get(idx) else {
                    // Every finite-distance user was scanned; the rest are
                    // socially unreachable (infinite score for α > 0), so
                    // the result is final.
                    self.topk.raise_threshold(f64::INFINITY);
                    return self.complete();
                };
                self.phase = SfaChPhase::Scan { idx: idx + 1 };
                self.stats.social_pops += 1;
                self.stats.vertex_pops += 1;
                if self.request.admits(self.dataset, user) {
                    let (score, social_norm, spatial_norm) =
                        self.ctx.score_from_raw_social(user, raw_social);
                    self.stats.evaluated_users += 1;
                    self.topk.consider(RankedUser {
                        user,
                        score,
                        social: social_norm,
                        spatial: spatial_norm,
                    });
                }
                let theta = self.request.alpha() * self.ctx.normalize_social(raw_social);
                self.topk.raise_threshold(theta);
                if theta >= self.topk.fk() {
                    return self.complete();
                }
                StepOutcome::Progress
            }
        }
    }

    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>) {
        if !self.done {
            drain_new_finalized(&self.topk, &mut self.emitted, out);
        }
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        if !self.done {
            stats.streamable_results = self.topk.finalized();
            stats.runtime = self.start.elapsed();
        }
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("SfaChDriver not complete or result already taken")
    }
}

/// The SFA-CH baseline of the evaluation (§6, Figure 8): the Dijkstra-based
/// social module is replaced by Contraction Hierarchies point-to-point
/// queries.
///
/// CH provides no incremental "next socially-closest user" primitive, so the
/// method must compute the CH distance of every user and sort — exactly the
/// kind of repeated, non-shared work that makes the `*-CH` variants slower
/// than the vanilla algorithms on social networks (the paper's observation).
///
/// This is the eager wrapper over [`SfaChDriver`].
pub fn sfa_ch_query(
    dataset: &GeoSocialDataset,
    ch: &ContractionHierarchy,
    request: &QueryRequest,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    SfaChDriver::new(dataset, ch, request, qctx)?.run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 40u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.4 + (i % 7) as f64 * 0.2)
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            builder
                .add_edge(i, (i + 11) % n, 0.8 + (i % 3) as f64 * 0.4)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 9 == 8 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.618_033_9) % 1.0,
                        ((i as f64) * 0.414_213_5) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn matches_exhaustive_on_a_grid_of_parameters() {
        let dataset = dataset();
        for &alpha in &[0.1, 0.5, 0.9] {
            for &k in &[1usize, 4, 12] {
                for user in [0u32, 7, 21, 33] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    let got = sfa_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "alpha {alpha}, k {k}, user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_under_request_filters() {
        let dataset = dataset();
        let window = Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.9));
        for user in [0u32, 21] {
            let request = QueryRequest::for_user(user)
                .k(6)
                .alpha(0.4)
                .within(window)
                .exclude([1, 2, 3])
                .max_score(0.6)
                .build()
                .unwrap();
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = sfa_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn ch_variant_matches_exhaustive() {
        let dataset = dataset();
        let ch = ContractionHierarchy::new(dataset.graph());
        for &alpha in &[0.3, 0.7] {
            for user in [2u32, 19] {
                let request = req(user, 6, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = sfa_ch_query(&dataset, &ch, &request, &mut QueryContext::new()).unwrap();
                assert!(
                    got.same_users_and_scores(&expected, 1e-9),
                    "alpha {alpha}, user {user}"
                );
            }
        }
    }

    #[test]
    fn terminates_before_scanning_everything_for_social_heavy_queries() {
        let dataset = dataset();
        // With a very social-heavy alpha the first few settled vertices
        // already dominate; SFA must not expand the whole graph.
        let result = sfa_query(&dataset, &req(0, 2, 0.9), &mut QueryContext::new()).unwrap();
        assert!(result.stats.social_pops < dataset.user_count());
        // The incremental threshold finalizes the result before completion.
        assert_eq!(result.stats.streamable_results, result.ranked.len());
    }

    #[test]
    fn disconnected_query_user_yields_results_only_from_its_component() {
        let graph =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap();
        let locations = vec![Some(Point::new(0.1, 0.1)); 5];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let result = sfa_query(&dataset, &req(0, 4, 0.5), &mut QueryContext::new()).unwrap();
        assert_eq!(result.users(), vec![1]);
    }
}
