use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK,
};
use ssrq_graph::{ContractionHierarchy, IncrementalDijkstra};
use std::time::Instant;

/// The Social First Approach (SFA, §4.1).
///
/// Users are processed in increasing social distance from the query user by
/// expanding the social graph with Dijkstra's algorithm.  For every settled
/// vertex the Euclidean distance (and hence the ranking value) is computed
/// directly.  The search stops when the social-only lower bound
/// `θ = α · p(v_q, v_last)` reaches the current threshold `f_k`.
pub fn sfa_query(
    dataset: &GeoSocialDataset,
    request: &QueryRequest,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    request.validate()?;
    dataset.check_user(request.user())?;
    let start = Instant::now();
    let ctx = RankingContext::new(dataset, request);
    let mut stats = QueryStats::default();
    let mut topk = TopK::for_request(request);

    let mut social = IncrementalDijkstra::new(dataset.graph(), request.user(), &mut qctx.social);
    loop {
        let Some((vertex, raw_social)) = social.next_settled(dataset.graph()) else {
            // The expansion exhausted the component without reaching the
            // threshold: the remaining users are socially unreachable and
            // therefore have infinite ranking values (α > 0), so the
            // interim result is final — raise the bound accordingly.
            topk.raise_threshold(f64::INFINITY);
            break;
        };
        stats.social_pops += 1;
        stats.vertex_pops += 1;
        if request.admits(dataset, vertex) {
            let (score, social_norm, spatial_norm) = ctx.score_from_raw_social(vertex, raw_social);
            stats.evaluated_users += 1;
            topk.consider(RankedUser {
                user: vertex,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        // Termination: every unseen user is at least as far socially as the
        // last settled vertex — which also makes θ a finalization bound for
        // the entries already held.
        let theta = request.alpha() * ctx.normalize_social(raw_social);
        topk.raise_threshold(theta);
        if theta >= topk.fk() {
            break;
        }
    }

    stats.streamable_results = topk.finalized();
    stats.runtime = start.elapsed();
    Ok(QueryResult {
        ranked: topk.into_sorted_vec(),
        k: request.k(),
        stats,
    })
}

/// The SFA-CH baseline of the evaluation (§6, Figure 8): the Dijkstra-based
/// social module is replaced by Contraction Hierarchies point-to-point
/// queries.
///
/// CH provides no incremental "next socially-closest user" primitive, so the
/// method must compute the CH distance of every user and sort — exactly the
/// kind of repeated, non-shared work that makes the `*-CH` variants slower
/// than the vanilla algorithms on social networks (the paper's observation).
pub fn sfa_ch_query(
    dataset: &GeoSocialDataset,
    ch: &ContractionHierarchy,
    request: &QueryRequest,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    request.validate()?;
    dataset.check_user(request.user())?;
    let start = Instant::now();
    let ctx = RankingContext::new(dataset, request);
    let mut stats = QueryStats::default();

    // Compute all social distances through the CH index.
    let mut order: Vec<(u32, f64)> = Vec::with_capacity(dataset.user_count().saturating_sub(1));
    for user in dataset.graph().nodes() {
        if user == request.user() {
            continue;
        }
        let d = ch.distance_with(request.user(), user, &mut qctx.ch);
        stats.distance_calls += 1;
        if d.is_finite() {
            order.push((user, d));
        }
    }
    order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut topk = TopK::for_request(request);
    let mut terminated = false;
    for (user, raw_social) in order {
        stats.social_pops += 1;
        stats.vertex_pops += 1;
        if request.admits(dataset, user) {
            let (score, social_norm, spatial_norm) = ctx.score_from_raw_social(user, raw_social);
            stats.evaluated_users += 1;
            topk.consider(RankedUser {
                user,
                score,
                social: social_norm,
                spatial: spatial_norm,
            });
        }
        let theta = request.alpha() * ctx.normalize_social(raw_social);
        topk.raise_threshold(theta);
        if theta >= topk.fk() {
            terminated = true;
            break;
        }
    }
    if !terminated {
        // Every finite-distance user was scanned; the rest are socially
        // unreachable (infinite score for α > 0), so the result is final.
        topk.raise_threshold(f64::INFINITY);
    }
    stats.streamable_results = topk.finalized();
    stats.runtime = start.elapsed();
    Ok(QueryResult {
        ranked: topk.into_sorted_vec(),
        k: request.k(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_query;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::{Point, Rect};

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    fn dataset() -> GeoSocialDataset {
        let n = 40u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.4 + (i % 7) as f64 * 0.2)
                .unwrap();
        }
        for i in (0..n).step_by(4) {
            builder
                .add_edge(i, (i + 11) % n, 0.8 + (i % 3) as f64 * 0.4)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 9 == 8 {
                    None
                } else {
                    Some(Point::new(
                        ((i as f64) * 0.618_033_9) % 1.0,
                        ((i as f64) * 0.414_213_5) % 1.0,
                    ))
                }
            })
            .collect();
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn matches_exhaustive_on_a_grid_of_parameters() {
        let dataset = dataset();
        for &alpha in &[0.1, 0.5, 0.9] {
            for &k in &[1usize, 4, 12] {
                for user in [0u32, 7, 21, 33] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    let got = sfa_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "alpha {alpha}, k {k}, user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_under_request_filters() {
        let dataset = dataset();
        let window = Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.9));
        for user in [0u32, 21] {
            let request = QueryRequest::for_user(user)
                .k(6)
                .alpha(0.4)
                .within(window)
                .exclude([1, 2, 3])
                .max_score(0.6)
                .build()
                .unwrap();
            let expected = exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            let got = sfa_query(&dataset, &request, &mut QueryContext::new()).unwrap();
            assert!(got.same_users_and_scores(&expected, 1e-9), "user {user}");
        }
    }

    #[test]
    fn ch_variant_matches_exhaustive() {
        let dataset = dataset();
        let ch = ContractionHierarchy::new(dataset.graph());
        for &alpha in &[0.3, 0.7] {
            for user in [2u32, 19] {
                let request = req(user, 6, alpha);
                let expected =
                    exhaustive_query(&dataset, &request, &mut QueryContext::new()).unwrap();
                let got = sfa_ch_query(&dataset, &ch, &request, &mut QueryContext::new()).unwrap();
                assert!(
                    got.same_users_and_scores(&expected, 1e-9),
                    "alpha {alpha}, user {user}"
                );
            }
        }
    }

    #[test]
    fn terminates_before_scanning_everything_for_social_heavy_queries() {
        let dataset = dataset();
        // With a very social-heavy alpha the first few settled vertices
        // already dominate; SFA must not expand the whole graph.
        let result = sfa_query(&dataset, &req(0, 2, 0.9), &mut QueryContext::new()).unwrap();
        assert!(result.stats.social_pops < dataset.user_count());
        // The incremental threshold finalizes the result before completion.
        assert_eq!(result.stats.streamable_results, result.ranked.len());
    }

    #[test]
    fn disconnected_query_user_yields_results_only_from_its_component() {
        let graph =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap();
        let locations = vec![Some(Point::new(0.1, 0.1)); 5];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let result = sfa_query(&dataset, &req(0, 4, 0.5), &mut QueryContext::new()).unwrap();
        assert_eq!(result.users(), vec![1]);
    }
}
