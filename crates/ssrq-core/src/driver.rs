//! Resumable query drivers: the pull-lazy state machines behind
//! [`QuerySession::stream`](crate::QuerySession::stream).
//!
//! Every SSRQ algorithm in this crate is implemented as a **driver** — a
//! state machine that advances the search one probe at a time
//! ([`QueryDriver::step`]) and hands out result entries the moment the
//! incremental threshold finalizes them ([`QueryDriver::drain_finalized`]).
//! The eager entry points (`sfa_query`, `tsa_query`, …) are thin
//! `while step` loops over the same machines, so both execution styles run
//! the exact same probe sequence: bounds, admission gating and exactness are
//! shared, and a fully-drained stream is bit-identical to the eager result.
//!
//! Drivers borrow the engine's immutable indexes and the caller's
//! [`QueryContext`](crate::QueryContext) for their whole lifetime; dropping
//! a driver (or the [`QueryStream`](crate::QueryStream) wrapping it)
//! mid-search simply releases those borrows — the context's epoch-versioned
//! scratch makes later queries on the same context bit-identical to fresh
//! ones (asserted by `tests/property_based.rs`).

use crate::{CoreError, QueryResult, QueryStats, RankedUser, TopK};

/// What a single [`QueryDriver::step`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The driver advanced by one probe; the search is not finished.
    Progress,
    /// The search has completed (or had already completed):
    /// [`QueryDriver::take_result`] is now available and further `step`
    /// calls are no-ops returning `Complete`.
    Complete,
}

/// A resumable SSRQ search: one algorithm execution, advanced probe by
/// probe.
///
/// The contract every implementation upholds:
///
/// * [`step`](QueryDriver::step) performs one bounded unit of work (settle
///   one vertex, pop one heap entry, scan one candidate).  Calling it after
///   completion is a no-op.
/// * [`drain_finalized`](QueryDriver::drain_finalized) appends the entries
///   whose membership *and* rank the incremental threshold has fixed since
///   the previous drain, in ascending `(score, user)` order.  Across the
///   driver's lifetime the drained entries form a stable prefix of the
///   final [`QueryResult::ranked`] — suspension (not stepping for a while)
///   can never change entries already drained.
/// * [`take_result`](QueryDriver::take_result) is available once `step`
///   returned [`StepOutcome::Complete`] and yields the same result the
///   eager entry point computes.  It may be called at most once.
///
/// Obtain drivers through
/// [`GeoSocialEngine::begin_stream`](crate::GeoSocialEngine::begin_stream)
/// (or a strategy's
/// [`AlgorithmStrategy::begin_stream`](crate::AlgorithmStrategy::begin_stream));
/// most callers want the [`QueryStream`](crate::QueryStream) iterator
/// instead, which pulls a driver just far enough for each `next()`.
pub trait QueryDriver {
    /// Advances the search by one probe.
    fn step(&mut self) -> StepOutcome;

    /// Appends the entries newly finalized since the previous drain to
    /// `out`, in ascending `(score, user)` order.
    ///
    /// Drain-after-complete algorithms (the exhaustive oracle, the cached
    /// method while its fallback is still possible, custom strategies
    /// running behind [`EagerDriver`]) never emit anything here; their
    /// whole result arrives through [`QueryDriver::take_result`].
    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>);

    /// Returns `true` once the underlying search has completed.
    fn is_complete(&self) -> bool;

    /// A snapshot of the work counters accumulated so far.  While the
    /// search is running the snapshot reflects the work of the steps taken
    /// up to this point — this is how the early-exit tests and the
    /// `ssrq-bench` latency experiment quantify how much work a truncated
    /// stream saved.  (`runtime` spans driver construction to now, so for a
    /// lazily-pulled stream it includes consumer think-time.)
    fn stats(&self) -> QueryStats;

    /// Takes the final result.  Available exactly once, after
    /// [`QueryDriver::step`] returned [`StepOutcome::Complete`]; the
    /// drained entries are a prefix of `ranked`.
    ///
    /// # Errors
    ///
    /// The error of a deferred sub-query, e.g. the cached method's AIS
    /// fallback failing (impossible for the built-in configurations, which
    /// validate everything up front).
    ///
    /// # Panics
    ///
    /// Panics when the driver has not completed or the result was already
    /// taken.
    fn take_result(&mut self) -> Result<QueryResult, CoreError>;

    /// Runs the machine to completion and takes the result — the thin
    /// eager loop every `*_query` entry point is built from.
    fn run_to_completion(&mut self) -> Result<QueryResult, CoreError> {
        while let StepOutcome::Progress = self.step() {}
        self.take_result()
    }
}

/// Appends the entries of `topk` finalized since the last call (tracked by
/// `emitted`) to `out` — the shared emission primitive of the incremental
/// drivers.
pub(crate) fn drain_new_finalized(topk: &TopK, emitted: &mut usize, out: &mut Vec<RankedUser>) {
    if topk.finalized() > *emitted {
        let sorted = topk.finalized_sorted();
        out.extend_from_slice(&sorted[*emitted..]);
        *emitted = sorted.len();
    }
}

/// A driver over an already-computed result: completes on the first `step`
/// and delivers everything through [`QueryDriver::take_result`]
/// (drain-after-complete).
///
/// This is the default [`AlgorithmStrategy::begin_stream`](crate::AlgorithmStrategy::begin_stream)
/// fallback, so custom strategies are streamable without writing a state
/// machine — they just gain no first-result latency.
#[derive(Debug)]
pub struct EagerDriver {
    stats: QueryStats,
    result: Option<QueryResult>,
}

impl EagerDriver {
    /// Wraps an eagerly computed result.
    pub fn new(result: QueryResult) -> Self {
        EagerDriver {
            stats: result.stats,
            result: Some(result),
        }
    }
}

impl QueryDriver for EagerDriver {
    fn step(&mut self) -> StepOutcome {
        StepOutcome::Complete
    }

    fn drain_finalized(&mut self, _out: &mut Vec<RankedUser>) {}

    fn is_complete(&self) -> bool {
        true
    }

    fn stats(&self) -> QueryStats {
        self.stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        Ok(self
            .result
            .take()
            .expect("EagerDriver result already taken"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(user: u32, score: f64) -> RankedUser {
        RankedUser {
            user,
            score,
            social: score,
            spatial: score,
        }
    }

    #[test]
    fn eager_driver_completes_immediately_and_drains_nothing() {
        let result = QueryResult {
            ranked: vec![entry(1, 0.1), entry(2, 0.2)],
            k: 5,
            degraded: false,
            stats: QueryStats {
                evaluated_users: 2,
                ..QueryStats::default()
            },
        };
        let mut driver = EagerDriver::new(result.clone());
        assert!(driver.is_complete());
        assert_eq!(driver.step(), StepOutcome::Complete);
        let mut out = Vec::new();
        driver.drain_finalized(&mut out);
        assert!(out.is_empty());
        assert_eq!(driver.stats().evaluated_users, 2);
        assert_eq!(driver.take_result().unwrap(), result);
    }

    #[test]
    fn run_to_completion_is_a_single_step_for_eager_drivers() {
        let result = QueryResult {
            ranked: vec![],
            k: 1,
            degraded: false,
            stats: QueryStats::default(),
        };
        let mut driver = EagerDriver::new(result.clone());
        assert_eq!(driver.run_to_completion().unwrap(), result);
    }

    #[test]
    fn drain_new_finalized_emits_each_entry_once() {
        let mut topk = TopK::new(4);
        let mut emitted = 0usize;
        let mut out = Vec::new();
        topk.consider(entry(3, 0.3));
        topk.consider(entry(1, 0.1));
        drain_new_finalized(&topk, &mut emitted, &mut out);
        assert!(out.is_empty());
        topk.raise_threshold(0.2);
        drain_new_finalized(&topk, &mut emitted, &mut out);
        assert_eq!(out.iter().map(|e| e.user).collect::<Vec<_>>(), vec![1]);
        // No double emission on an unchanged threshold.
        drain_new_finalized(&topk, &mut emitted, &mut out);
        assert_eq!(out.len(), 1);
        topk.raise_threshold(f64::INFINITY);
        drain_new_finalized(&topk, &mut emitted, &mut out);
        assert_eq!(out.iter().map(|e| e.user).collect::<Vec<_>>(), vec![1, 3]);
    }
}
