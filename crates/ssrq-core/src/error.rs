use ssrq_graph::GraphError;
use ssrq_spatial::SpatialError;
use std::fmt;

/// Errors raised by the SSRQ core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query or engine parameter is outside its valid range.
    InvalidParameter(String),
    /// A user id that does not exist in the dataset was referenced.
    UnknownUser(u32),
    /// A query named an algorithm that is not registered with the engine's
    /// strategy registry.
    UnknownAlgorithm(String),
    /// A strategy needs an auxiliary index that the engine was not
    /// configured to provide (see
    /// [`EngineBuilder`](crate::EngineBuilder) — declare the index with
    /// [`ChBuild`](crate::ChBuild) / [`SocialCachePlan`](crate::SocialCachePlan)
    /// to have it built lazily or eagerly).
    MissingIndex(String),
    /// The dataset is malformed (e.g. location list shorter than the graph).
    InvalidDataset(String),
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the spatial substrate.
    Spatial(SpatialError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::UnknownUser(id) => write!(f, "unknown user {id}"),
            CoreError::UnknownAlgorithm(name) => {
                write!(f, "no algorithm strategy registered under {name:?}")
            }
            CoreError::MissingIndex(msg) => write!(f, "missing index: {msg}"),
            CoreError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Spatial(e) => write!(f, "spatial error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Spatial(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<SpatialError> for CoreError {
    fn from(e: SpatialError) -> Self {
        CoreError::Spatial(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = GraphError::UnknownNode(3).into();
        assert!(e.to_string().contains("graph error"));
        let e: CoreError = SpatialError::UnknownItem(4).into();
        assert!(e.to_string().contains("spatial error"));
        assert!(CoreError::UnknownUser(9).to_string().contains('9'));
        assert!(CoreError::InvalidParameter("alpha".into())
            .to_string()
            .contains("alpha"));
        assert!(CoreError::InvalidDataset("short".into())
            .to_string()
            .contains("short"));
    }

    #[test]
    fn error_sources_are_exposed() {
        use std::error::Error;
        let e: CoreError = GraphError::UnknownNode(3).into();
        assert!(e.source().is_some());
        assert!(CoreError::UnknownUser(1).source().is_none());
    }
}
