//! Query sessions: an engine handle bundled with reusable per-worker state.
//!
//! A [`QuerySession`] is the recommended way to issue queries: it pairs a
//! shared `&GeoSocialEngine` with an owned [`QueryContext`], so a service
//! handler (or a worker thread) holds one session and never pays the
//! per-query `O(|V|)` scratch allocation.  Besides [`QuerySession::run`],
//! sessions expose [`QuerySession::stream`], which runs the query as a
//! **pull-lazy** iterator: the underlying search only advances as far as
//! needed to finalize the next entry, so the first results arrive long
//! before — and a truncated stream costs much less than — a full run.

use crate::driver::{QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialEngine, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
};
use std::collections::VecDeque;

/// A query handle: engine reference plus owned, reusable scratch.
///
/// Create one per worker via [`GeoSocialEngine::session`]; the session can
/// issue any number of queries with any algorithm, in any order, and reuses
/// its context throughout (reuse never changes answers — the test-suite
/// asserts this, including across streams abandoned mid-query).
#[derive(Debug)]
pub struct QuerySession<'e> {
    engine: &'e GeoSocialEngine,
    ctx: QueryContext,
}

impl<'e> QuerySession<'e> {
    /// Creates a session for `engine` with a context pre-sized for its
    /// graph.
    pub fn new(engine: &'e GeoSocialEngine) -> Self {
        QuerySession {
            ctx: engine.make_context(),
            engine,
        }
    }

    /// The engine the session queries.
    pub fn engine(&self) -> &'e GeoSocialEngine {
        self.engine
    }

    /// How many graph searches have reused this session's context so far.
    pub fn searches(&self) -> u64 {
        self.ctx.searches()
    }

    /// Processes one request.
    pub fn run(&mut self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.engine.run_with(request, &mut self.ctx)
    }

    /// Processes one request **pull-lazily**, returning a [`QueryStream`]
    /// of [`RankedUser`]s in finalization order.
    ///
    /// The SSRQ algorithms differ in *when* a result entry becomes final.
    /// The incremental-threshold methods (SFA, SPA, TSA and the AIS
    /// variants) maintain a monotone lower bound on every not-yet-delivered
    /// candidate, so entries scoring below the bound are fixed — membership
    /// and rank — long before the search ends.  The stream exploits exactly
    /// that: each [`QueryStream::next`] advances the underlying resumable
    /// search ([`QueryDriver`]) only until the next entry finalizes.
    /// Consequently:
    ///
    /// * the first entry arrives after a fraction of the full query work —
    ///   genuine first-result latency, not a replay of a finished search;
    /// * `stream.take(j)` for `j < k` performs measurably less work than a
    ///   full run (compare [`QueryStream::stats`] against
    ///   [`QuerySession::run`]'s counters — the test-suite asserts strictly
    ///   fewer relaxed edges);
    /// * dropping the stream abandons the rest of the search at no cost,
    ///   and later queries on this session are unaffected.
    ///
    /// Algorithms without a usable mid-search bound — the exhaustive
    /// oracle, the cached method while its AIS fallback is still possible,
    /// and custom strategies that don't override
    /// [`AlgorithmStrategy::begin_stream`](crate::AlgorithmStrategy::begin_stream)
    /// — fall back to **drain-after-complete**: the first `next()` runs the
    /// search to completion and the entries are replayed from the finished
    /// result.
    ///
    /// A fully drained stream yields exactly [`QuerySession::run`]'s
    /// entries, in the same ascending-score order, and every prefix of
    /// length `j` equals the eager top-`j`.
    ///
    /// The stream borrows the session (its context hosts the search state),
    /// so one stream per session is live at a time; use two sessions for
    /// concurrent streams.
    ///
    /// # Errors
    ///
    /// Same as [`QuerySession::run`].
    pub fn stream(&mut self, request: &QueryRequest) -> Result<QueryStream<'_>, CoreError> {
        self.engine.stream_with(request, &mut self.ctx)
    }
}

/// The state a [`QueryStream`] is in.
#[derive(Debug)]
enum StreamState<'s> {
    /// The search is still running behind the buffered entries.
    Running(Box<dyn QueryDriver + 's>),
    /// The search completed; the full result backs the remaining entries.
    Finished(QueryResult),
    /// A deferred sub-query failed mid-stream (see [`QueryStream::error`]);
    /// `stats` preserves the work counters accumulated up to the failure.
    Failed { error: CoreError, stats: QueryStats },
}

impl std::fmt::Debug for dyn QueryDriver + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryDriver")
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// A pull-lazy iterator over the [`RankedUser`]s of one query, in
/// finalization order; see [`QuerySession::stream`].
///
/// Each `next()` steps the underlying [`QueryDriver`] just far enough for
/// the incremental threshold to finalize another entry (or for the search
/// to complete).  The stream's length is therefore unknown until the search
/// finishes — there is deliberately no `ExactSizeIterator`.
#[derive(Debug)]
pub struct QueryStream<'s> {
    state: StreamState<'s>,
    buffer: VecDeque<RankedUser>,
    /// Entries pulled out of the driver so far (yielded + still buffered).
    received: usize,
    /// Entries that finalized strictly before the completing probe.
    finalized_pre_completion: usize,
    k: usize,
    /// Scratch for `drain_finalized`.
    drained: Vec<RankedUser>,
}

impl<'s> QueryStream<'s> {
    /// Wraps a running driver; used by
    /// [`GeoSocialEngine::stream_with`](crate::GeoSocialEngine::stream_with).
    pub(crate) fn new(driver: Box<dyn QueryDriver + 's>, k: usize) -> Self {
        QueryStream {
            state: StreamState::Running(driver),
            buffer: VecDeque::new(),
            received: 0,
            finalized_pre_completion: 0,
            k,
            drained: Vec::new(),
        }
    }

    /// Wraps an already-computed result as a (fully buffered) stream.
    pub fn from_result(result: QueryResult) -> QueryStream<'static> {
        QueryStream {
            buffer: result.ranked.iter().copied().collect(),
            received: result.ranked.len(),
            finalized_pre_completion: result.stats.streamable_results,
            k: result.k,
            state: StreamState::Finished(result),
            drained: Vec::new(),
        }
    }

    /// How many entries are known to have been final — membership and
    /// rank — before the underlying search completed.
    ///
    /// While the stream is being consumed this is the count of entries the
    /// incremental threshold has finalized so far (monotone as you pull);
    /// once the search has completed it settles at the final
    /// `streamable_results` counter.  Positive for the
    /// incremental-threshold algorithms on typical queries; always zero for
    /// drain-after-complete algorithms such as the exhaustive oracle.
    pub fn finalized_early(&self) -> usize {
        match &self.state {
            StreamState::Running(_) | StreamState::Failed { .. } => self.finalized_pre_completion,
            StreamState::Finished(result) => self
                .finalized_pre_completion
                .max(result.stats.streamable_results),
        }
    }

    /// The `k` the query asked for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Work counters of the underlying query **so far**.
    ///
    /// While the search is running this reflects only the steps actually
    /// taken — for a truncated stream (`take(j)`) it shows how much work
    /// the early exit saved relative to a full run.  After completion it
    /// equals the eager run's counters (`runtime` spans stream creation to
    /// completion, so it includes consumer think-time).
    pub fn stats(&self) -> QueryStats {
        match &self.state {
            StreamState::Running(driver) => driver.stats(),
            StreamState::Finished(result) => result.stats,
            StreamState::Failed { stats, .. } => *stats,
        }
    }

    /// The error a deferred sub-query reported mid-stream, if any.
    ///
    /// Only the cached method's lazily-invoked fallback can fail after
    /// [`QuerySession::stream`] already returned `Ok` — and not with the
    /// built-in configurations, which validate everything up front.  When
    /// an error does occur the stream ends early and records it here.
    pub fn error(&self) -> Option<&CoreError> {
        match &self.state {
            StreamState::Failed { error, .. } => Some(error),
            _ => None,
        }
    }

    /// Runs the rest of the search eagerly and returns the full
    /// [`QueryResult`] (identical to [`QuerySession::run`]'s), discarding
    /// any entries not yet yielded.
    ///
    /// # Errors
    ///
    /// A mid-stream sub-query error (see [`QueryStream::error`]).
    pub fn into_result(mut self) -> Result<QueryResult, CoreError> {
        match self.state {
            StreamState::Running(ref mut driver) => {
                let result = driver.run_to_completion()?;
                Ok(result)
            }
            StreamState::Finished(result) => Ok(result),
            StreamState::Failed { error, .. } => Err(error),
        }
    }

    /// Pulls the driver until a new entry is available or the search
    /// completes.
    fn refill(&mut self) {
        let StreamState::Running(driver) = &mut self.state else {
            return;
        };
        loop {
            self.drained.clear();
            driver.drain_finalized(&mut self.drained);
            if !self.drained.is_empty() {
                self.received += self.drained.len();
                self.finalized_pre_completion = self.received;
                self.buffer.extend(self.drained.drain(..));
                return;
            }
            if let StepOutcome::Complete = driver.step() {
                match driver.take_result() {
                    Ok(result) => {
                        self.buffer.extend(&result.ranked[self.received..]);
                        self.received = result.ranked.len();
                        self.state = StreamState::Finished(result);
                    }
                    Err(error) => {
                        let stats = driver.stats();
                        self.state = StreamState::Failed { error, stats };
                    }
                }
                return;
            }
        }
    }
}

impl Iterator for QueryStream<'_> {
    type Item = RankedUser;

    fn next(&mut self) -> Option<RankedUser> {
        if self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.state {
            // At most k entries total can still arrive.
            StreamState::Running(_) => (self.buffer.len(), Some(self.k.max(self.buffer.len()))),
            _ => (self.buffer.len(), Some(self.buffer.len())),
        }
    }
}
