//! Query sessions: an engine handle bundled with reusable per-worker state.
//!
//! A [`QuerySession`] is the recommended way to issue queries: it pairs a
//! shared `&GeoSocialEngine` with an owned [`QueryContext`], so a service
//! handler (or a worker thread) holds one session and never pays the
//! per-query `O(|V|)` scratch allocation.  Besides [`QuerySession::run`],
//! sessions expose [`QuerySession::stream`], which delivers the result as
//! an iterator of [`RankedUser`]s in finalization order.

use crate::{
    CoreError, GeoSocialEngine, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
};

/// A query handle: engine reference plus owned, reusable scratch.
///
/// Create one per worker via [`GeoSocialEngine::session`]; the session can
/// issue any number of queries with any algorithm, in any order, and reuses
/// its context throughout (reuse never changes answers — the test-suite
/// asserts this).
#[derive(Debug)]
pub struct QuerySession<'e> {
    engine: &'e GeoSocialEngine,
    ctx: QueryContext,
}

impl<'e> QuerySession<'e> {
    /// Creates a session for `engine` with a context pre-sized for its
    /// graph.
    pub fn new(engine: &'e GeoSocialEngine) -> Self {
        QuerySession {
            ctx: engine.make_context(),
            engine,
        }
    }

    /// The engine the session queries.
    pub fn engine(&self) -> &'e GeoSocialEngine {
        self.engine
    }

    /// How many graph searches have reused this session's context so far.
    pub fn searches(&self) -> u64 {
        self.ctx.searches()
    }

    /// Processes one request.
    pub fn run(&mut self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.engine.run_with(request, &mut self.ctx)
    }

    /// Processes one request and returns the result as a stream of
    /// [`RankedUser`]s in finalization order.
    ///
    /// The SSRQ algorithms differ in *when* a result entry becomes final.
    /// The incremental-threshold methods (SFA, SPA, TSA and the AIS
    /// variants) maintain a monotone lower bound on every not-yet-delivered
    /// candidate, so entries scoring below the bound are fixed — membership
    /// and rank — long before the search ends; the exhaustive oracle only
    /// knows its answer after the full scan.  The stream exposes exactly
    /// that schedule: entries arrive in emission order and
    /// [`QueryStream::finalized_early`] reports how many of them were
    /// already final when the search completed its last probe (zero for
    /// drain-after-complete algorithms).
    ///
    /// The underlying search runs to completion when the stream is created;
    /// yielded entries are identical to [`QuerySession::run`]'s, in the
    /// same ascending-score order.
    pub fn stream(&mut self, request: &QueryRequest) -> Result<QueryStream, CoreError> {
        let result = self.run(request)?;
        Ok(QueryStream::from_result(result))
    }
}

/// An iterator over the [`RankedUser`]s of one query, in finalization
/// order; see [`QuerySession::stream`].
#[derive(Debug, Clone)]
pub struct QueryStream {
    entries: std::vec::IntoIter<RankedUser>,
    finalized_early: usize,
    k: usize,
    stats: QueryStats,
}

impl QueryStream {
    /// Wraps an already-computed result as a stream.
    pub fn from_result(result: QueryResult) -> Self {
        QueryStream {
            finalized_early: result.stats.streamable_results,
            k: result.k,
            stats: result.stats,
            entries: result.ranked.into_iter(),
        }
    }

    /// How many of the streamed entries were already final — membership and
    /// rank — before the underlying search completed.  Positive for the
    /// incremental-threshold algorithms on typical queries; always zero for
    /// the exhaustive oracle.
    pub fn finalized_early(&self) -> usize {
        self.finalized_early
    }

    /// The `k` the query asked for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Work counters and timing of the underlying query.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }
}

impl Iterator for QueryStream {
    type Item = RankedUser;

    fn next(&mut self) -> Option<RankedUser> {
        self.entries.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.entries.size_hint()
    }
}

impl ExactSizeIterator for QueryStream {}
