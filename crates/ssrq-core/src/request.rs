//! Typed query requests.
//!
//! A [`QueryRequest`] describes one SSRQ invocation: the core parameters of
//! Definition 1 (`u_q`, `k`, `α`), the algorithm to run it with, and the
//! per-query scenario options the flat parameter triple could never express
//! — a spatial filter window, an exclusion set, and a score cutoff.
//! Requests are built through [`QueryRequestBuilder`] and validated once at
//! [`QueryRequestBuilder::build`], so an executing strategy can trust every
//! field.

use crate::{Algorithm, CoreError, GeoSocialDataset, UserId};
use ssrq_spatial::{Point, Rect};
use std::collections::HashSet;

/// Names the algorithm a request should run with: one of the twelve
/// built-ins, or a custom strategy registered with
/// [`GeoSocialEngine::register_strategy`](crate::GeoSocialEngine::register_strategy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AlgorithmSpec {
    /// A built-in algorithm (resolved by its paper name, e.g. `"AIS"`).
    Builtin(Algorithm),
    /// A custom strategy, resolved by its registered name.
    Named(String),
}

impl AlgorithmSpec {
    /// The registry key the spec resolves to.
    pub fn key(&self) -> &str {
        match self {
            AlgorithmSpec::Builtin(a) => a.name(),
            AlgorithmSpec::Named(name) => name,
        }
    }
}

impl From<Algorithm> for AlgorithmSpec {
    fn from(a: Algorithm) -> Self {
        AlgorithmSpec::Builtin(a)
    }
}

impl From<&str> for AlgorithmSpec {
    fn from(name: &str) -> Self {
        AlgorithmSpec::Named(name.to_owned())
    }
}

impl From<String> for AlgorithmSpec {
    fn from(name: String) -> Self {
        AlgorithmSpec::Named(name)
    }
}

/// A validated SSRQ query: who asks, how many results, the social/spatial
/// preference, the algorithm, and the scenario options.
///
/// Construct via [`QueryRequest::for_user`]:
///
/// ```
/// use ssrq_core::{Algorithm, QueryRequest};
///
/// let request = QueryRequest::for_user(42)
///     .k(10)
///     .alpha(0.4)
///     .algorithm(Algorithm::Ais)
///     .build()
///     .unwrap();
/// assert_eq!(request.k(), 10);
/// ```
///
/// All twelve built-in algorithms honour every option and return the exact
/// same answer for the same request — the filters restrict *which users are
/// admissible*, never how thoroughly the admissible ones are searched.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    user: UserId,
    k: usize,
    alpha: f64,
    algorithm: AlgorithmSpec,
    origin: Option<Point>,
    within: Option<Rect>,
    exclude: HashSet<UserId>,
    max_score: Option<f64>,
}

impl QueryRequest {
    /// Starts building a request for query user `user`.
    ///
    /// Defaults: `k = 10`, `α = 0.3` (the paper's default preference) and
    /// [`Algorithm::Ais`], no spatial filter, no exclusions, no cutoff.
    pub fn for_user(user: UserId) -> QueryRequestBuilder {
        QueryRequestBuilder {
            request: QueryRequest {
                user,
                k: 10,
                alpha: 0.3,
                algorithm: AlgorithmSpec::Builtin(Algorithm::Ais),
                origin: None,
                within: None,
                exclude: HashSet::new(),
                max_score: None,
            },
        }
    }

    /// The query user `u_q`.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Number of users to report (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Preference parameter `α ∈ (0, 1)`: the weight of *social* proximity
    /// (`1 − α` weighs spatial proximity).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The algorithm the request runs with.
    pub fn algorithm(&self) -> &AlgorithmSpec {
        &self.algorithm
    }

    /// The spatial-origin override, when set: the point spatial distances
    /// are measured from instead of the query user's *stored* location.
    pub fn origin(&self) -> Option<Point> {
        self.origin
    }

    /// The spatial origin this request is evaluated from: the explicit
    /// [`QueryRequest::origin`] override when set, otherwise the query
    /// user's stored location in `dataset` (`None` when neither exists —
    /// every candidate then sits at infinite spatial distance).
    ///
    /// Every algorithm resolves the origin through this method, which is
    /// what lets a sharded deployment evaluate a query on an engine whose
    /// partition does not hold the query user's location: the coordinator
    /// resolves the location once (from the owning shard) and broadcasts it
    /// as the override, and the per-shard computations stay bit-identical
    /// to a single engine holding all locations.
    #[inline]
    pub fn resolved_origin(&self, dataset: &GeoSocialDataset) -> Option<Point> {
        self.origin.or_else(|| dataset.location(self.user))
    }

    /// The spatial filter window, when set: only users currently located
    /// inside this rectangle are admissible.
    pub fn within(&self) -> Option<Rect> {
        self.within
    }

    /// The excluded user ids (never reported, e.g. already-contacted users).
    pub fn excluded(&self) -> &HashSet<UserId> {
        &self.exclude
    }

    /// The result-score cutoff, when set: only users with ranking value
    /// *strictly below* this bound are admissible.
    pub fn max_score(&self) -> Option<f64> {
        self.max_score
    }

    /// Returns a copy of the request with the algorithm replaced — the
    /// request-side counterpart of running one query through several
    /// methods (see [`GeoSocialEngine::run_each`](crate::GeoSocialEngine::run_each)).
    pub fn with_algorithm(mut self, algorithm: impl Into<AlgorithmSpec>) -> Self {
        self.algorithm = algorithm.into();
        self
    }

    /// Returns a copy of the request with the spatial origin pinned to
    /// `origin` (see [`QueryRequest::resolved_origin`]).  Used by the
    /// sharded coordinator to broadcast the query user's location to
    /// engines whose partition does not hold it.
    pub fn with_origin(mut self, origin: Point) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Returns a copy of the request whose score cutoff is the *tighter* of
    /// the existing [`QueryRequest::max_score`] and `cutoff` — the admission
    /// bound a scatter-gather coordinator forwards to later shards once it
    /// holds `k` gathered results (candidates scoring at or above the
    /// current global `f_k` can no longer enter the merged top-k, exactly
    /// as [`TopK::consider`](crate::TopK::consider) would reject them).
    ///
    /// Non-finite or non-positive cutoffs are ignored (a cutoff of `0` or
    /// below would reject every candidate, which no interim `f_k` implies).
    pub fn with_max_score_at_most(mut self, cutoff: f64) -> Self {
        if cutoff.is_finite() && cutoff > 0.0 {
            self.max_score = Some(match self.max_score {
                Some(existing) => existing.min(cutoff),
                None => cutoff,
            });
        }
        self
    }

    /// Returns `true` when the request carries any admissibility filter
    /// beyond the implicit "not the query user" rule.
    pub fn has_filters(&self) -> bool {
        self.within.is_some() || !self.exclude.is_empty() || self.max_score.is_some()
    }

    /// Returns `true` when `user` may appear in the result of this request:
    /// not the query user, not excluded, and (when a spatial filter is set)
    /// currently located inside the filter window.
    ///
    /// The score cutoff is enforced separately by
    /// [`TopK::for_request`](crate::TopK::for_request).
    #[inline]
    pub fn admits(&self, dataset: &GeoSocialDataset, user: UserId) -> bool {
        if user == self.user || self.exclude.contains(&user) {
            return false;
        }
        match self.within {
            None => true,
            Some(rect) => dataset
                .location(user)
                .map(|p| rect.contains(p))
                .unwrap_or(false),
        }
    }

    /// Re-checks the invariants [`QueryRequestBuilder::build`] established.
    ///
    /// Strategies call this defensively so that a hand-rolled request (e.g.
    /// one deserialized by a downstream service) cannot put an algorithm
    /// into an undefined state.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::InvalidParameter("k must be at least 1".into()));
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "alpha must lie strictly between 0 and 1, got {}",
                self.alpha
            )));
        }
        if let Some(cutoff) = self.max_score {
            if !(cutoff.is_finite() && cutoff > 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "max_score must be a finite positive ranking value, got {cutoff}"
                )));
            }
        }
        if let Some(rect) = self.within {
            if !rect.min.is_finite() || !rect.max.is_finite() {
                return Err(CoreError::InvalidParameter(format!(
                    "spatial filter {rect} has non-finite corners"
                )));
            }
        }
        if let Some(origin) = self.origin {
            if !origin.is_finite() {
                return Err(CoreError::InvalidParameter(format!(
                    "non-finite query origin {origin}"
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`QueryRequest`]; see [`QueryRequest::for_user`].
#[derive(Debug, Clone)]
pub struct QueryRequestBuilder {
    request: QueryRequest,
}

impl QueryRequestBuilder {
    /// Sets the number of users to report.
    pub fn k(mut self, k: usize) -> Self {
        self.request.k = k;
        self
    }

    /// Sets the preference parameter `α ∈ (0, 1)`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.request.alpha = alpha;
        self
    }

    /// Sets the algorithm (a built-in [`Algorithm`] or a registered
    /// strategy name).
    pub fn algorithm(mut self, algorithm: impl Into<AlgorithmSpec>) -> Self {
        self.request.algorithm = algorithm.into();
        self
    }

    /// Pins the spatial origin the query is evaluated from, overriding the
    /// query user's stored location — e.g. the live position reported by
    /// the user's device, or the location a sharded coordinator broadcasts
    /// to partitions that do not hold the query user.
    pub fn origin(mut self, origin: Point) -> Self {
        self.request.origin = Some(origin);
        self
    }

    /// Restricts the result to users currently located inside `rect`
    /// ("companions downtown only").  Users without a location never pass
    /// the filter.
    pub fn within(mut self, rect: Rect) -> Self {
        self.request.within = Some(rect);
        self
    }

    /// Excludes `users` from the result (in addition to any previously
    /// excluded ids).
    pub fn exclude(mut self, users: impl IntoIterator<Item = UserId>) -> Self {
        self.request.exclude.extend(users);
        self
    }

    /// Admits only users with ranking value strictly below `cutoff`
    /// ("nobody farther than this combined distance").  Also serves as an
    /// early-termination bound: every algorithm stops as soon as its domain
    /// lower bound reaches the cutoff.
    pub fn max_score(mut self, cutoff: f64) -> Self {
        self.request.max_score = Some(cutoff);
        self
    }

    /// Validates and returns the request.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for `k = 0`, `α ∉ (0, 1)`, a
    /// non-positive or non-finite score cutoff, or a non-finite filter
    /// rectangle.  (Whether the query *user* exists is checked against the
    /// dataset at execution time.)
    pub fn build(self) -> Result<QueryRequest, CoreError> {
        self.request.validate()?;
        Ok(self.request)
    }

    /// Returns the request **without** validating it — the in-process
    /// counterpart of a request deserialized from an untrusted peer.
    ///
    /// Every strategy re-checks [`QueryRequest::validate`] defensively at
    /// execution time, so an invalid request built this way produces a
    /// typed [`CoreError::InvalidParameter`] when run, never an undefined
    /// algorithm state.  The test-suite uses this to exercise exactly that
    /// path; service code should prefer [`QueryRequestBuilder::build`].
    pub fn build_unvalidated(self) -> QueryRequest {
        self.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;

    fn dataset() -> GeoSocialDataset {
        let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let locations = vec![Some(Point::new(0.1, 0.1)), Some(Point::new(0.9, 0.9)), None];
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn builder_applies_defaults_and_options() {
        let request = QueryRequest::for_user(7).build().unwrap();
        assert_eq!(request.user(), 7);
        assert_eq!(request.k(), 10);
        assert!((request.alpha() - 0.3).abs() < 1e-12);
        assert_eq!(request.algorithm().key(), "AIS");
        assert!(!request.has_filters());

        let request = QueryRequest::for_user(7)
            .k(3)
            .alpha(0.6)
            .algorithm(Algorithm::Tsa)
            .within(Rect::unit())
            .exclude([1, 2])
            .max_score(0.8)
            .build()
            .unwrap();
        assert_eq!(request.k(), 3);
        assert_eq!(request.algorithm().key(), "TSA");
        assert_eq!(request.within(), Some(Rect::unit()));
        assert!(request.excluded().contains(&2));
        assert_eq!(request.max_score(), Some(0.8));
        assert!(request.has_filters());
    }

    #[test]
    fn build_rejects_degenerate_parameters() {
        assert!(QueryRequest::for_user(0).k(0).build().is_err());
        assert!(QueryRequest::for_user(0).alpha(0.0).build().is_err());
        assert!(QueryRequest::for_user(0).alpha(1.0).build().is_err());
        assert!(QueryRequest::for_user(0).alpha(-0.3).build().is_err());
        assert!(QueryRequest::for_user(0).alpha(f64::NAN).build().is_err());
        assert!(QueryRequest::for_user(0).max_score(0.0).build().is_err());
        assert!(QueryRequest::for_user(0)
            .max_score(f64::INFINITY)
            .build()
            .is_err());
    }

    #[test]
    fn admits_enforces_exclusions_and_spatial_filter() {
        let ds = dataset();
        let plain = QueryRequest::for_user(0).build().unwrap();
        assert!(!plain.admits(&ds, 0)); // never the query user
        assert!(plain.admits(&ds, 1));
        assert!(plain.admits(&ds, 2)); // no filter: location not required

        let filtered = QueryRequest::for_user(0)
            .within(Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5)))
            .exclude([1])
            .build()
            .unwrap();
        assert!(!filtered.admits(&ds, 1)); // excluded (and outside anyway)
        assert!(!filtered.admits(&ds, 2)); // no location => fails the window
    }

    #[test]
    fn origin_override_resolves_before_the_stored_location() {
        let ds = dataset();
        let stored = QueryRequest::for_user(0).build().unwrap();
        assert_eq!(stored.origin(), None);
        assert_eq!(stored.resolved_origin(&ds), Some(Point::new(0.1, 0.1)));
        let pinned = QueryRequest::for_user(0)
            .origin(Point::new(0.4, 0.6))
            .build()
            .unwrap();
        assert_eq!(pinned.resolved_origin(&ds), Some(Point::new(0.4, 0.6)));
        // User 2 has no stored location: the override is the only origin.
        let unlocated = QueryRequest::for_user(2).build().unwrap();
        assert_eq!(unlocated.resolved_origin(&ds), None);
        assert!(QueryRequest::for_user(0)
            .origin(Point::new(f64::NAN, 0.0))
            .build()
            .is_err());
    }

    #[test]
    fn max_score_at_most_only_tightens() {
        let request = QueryRequest::for_user(0).build().unwrap();
        assert_eq!(
            request.clone().with_max_score_at_most(0.7).max_score(),
            Some(0.7)
        );
        let capped = QueryRequest::for_user(0).max_score(0.5).build().unwrap();
        assert_eq!(
            capped.clone().with_max_score_at_most(0.7).max_score(),
            Some(0.5)
        );
        assert_eq!(
            capped.clone().with_max_score_at_most(0.2).max_score(),
            Some(0.2)
        );
        // Degenerate cutoffs (no interim f_k implies them) are ignored.
        assert_eq!(
            capped.clone().with_max_score_at_most(0.0).max_score(),
            Some(0.5)
        );
        assert_eq!(
            capped.with_max_score_at_most(f64::INFINITY).max_score(),
            Some(0.5)
        );
    }

    #[test]
    fn algorithm_spec_conversions() {
        assert_eq!(AlgorithmSpec::from(Algorithm::Sfa).key(), "SFA");
        assert_eq!(AlgorithmSpec::from("MY-ALGO").key(), "MY-ALGO");
        assert_eq!(AlgorithmSpec::from(String::from("X")).key(), "X");
    }

    #[test]
    fn build_unvalidated_defers_validation_to_execution() {
        let request = QueryRequest::for_user(5)
            .k(0)
            .alpha(0.45)
            .build_unvalidated();
        assert_eq!(request.user(), 5);
        assert_eq!(request.k(), 0);
        assert!(request.validate().is_err());
    }
}
