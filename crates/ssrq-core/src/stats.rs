use std::time::Duration;

/// Work counters collected while processing one SSRQ query.
///
/// The paper's evaluation reports run-time and the *pop ratio*
/// `|V_pop| / |V|`, where `V_pop` are the vertices popped from the search
/// heaps; both are derivable from this structure.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Users/vertices popped from the algorithm's *own* search heap(s) —
    /// the Dijkstra heap for SFA, the NN stream for SPA, both for TSA, and
    /// the aggregate-index heap `H` for AIS.  This matches the paper's
    /// `|V_pop|` definition and is the numerator of the pop ratio.
    pub vertex_pops: usize,
    /// Vertices popped (settled) by social-graph searches: the query-rooted
    /// Dijkstra expansions, forward searches and reverse A* searches
    /// (including the work done inside the AIS graph-distance submodule).
    pub social_pops: usize,
    /// Entries (cells and users) popped from spatial search heaps.
    pub spatial_pops: usize,
    /// Entries popped from the AIS aggregate-index heap.
    pub index_pops: usize,
    /// Users whose exact ranking value was computed.
    pub evaluated_users: usize,
    /// Exact point-to-point graph-distance computations requested.
    pub distance_calls: usize,
    /// Distance computations answered from a cache (distance caching /
    /// pre-computed lists).
    pub cache_hits: usize,
    /// Users re-inserted into the AIS heap by the delayed-evaluation
    /// strategy.
    pub delayed_reinsertions: usize,
    /// Edge relaxations attempted by the query's social-graph searches (the
    /// query-rooted Dijkstra expansions and the bidirectional searches of
    /// the AIS distance submodule; Contraction Hierarchies queries are not
    /// counted).  Relaxations dominate graph-search run-time, so this is the
    /// timing-free effort metric the early-exit streaming tests compare
    /// between a full run and a `take(1)` stream.
    pub relaxed_edges: usize,
    /// Result entries whose membership *and* rank were already fixed before
    /// the search completed — the incremental-threshold property of the
    /// paper's algorithms that [`QuerySession::stream`](crate::QuerySession::stream)
    /// surfaces.  Zero for drain-after-complete algorithms (e.g. the
    /// exhaustive oracle).
    pub streamable_results: usize,
    /// Bytes written to remote shards while answering this query (frame
    /// headers included).  Zero on every in-process path — only a
    /// socket-backed coordinator (`ssrq-net`) moves bytes.
    pub bytes_sent: usize,
    /// Bytes read back from remote shards (frame headers included).  Zero
    /// on every in-process path.
    pub bytes_received: usize,
    /// Request/response round trips to remote shards (queries, origin
    /// lookups — every frame pair the query paid for).  Zero on every
    /// in-process path.
    pub wire_round_trips: usize,
    /// One-way threshold-tighten frames pushed to still-running shards by
    /// the speculative scatter.  They carry no response, so they count in
    /// `bytes_sent` but **not** in `wire_round_trips` — the round-trip
    /// counter stays a truthful request/response tally.  Zero on every
    /// in-process and sequential-scatter path.
    pub tighten_frames: usize,
    /// Wall-clock processing time.
    pub runtime: Duration,
}

impl QueryStats {
    /// Total number of vertices popped from the algorithm's search heaps,
    /// the `|V_pop|` of the paper's pop-ratio metric.
    pub fn popped_vertices(&self) -> usize {
        self.vertex_pops
    }

    /// The paper's pop ratio: popped vertices divided by `|V|`.
    pub fn pop_ratio(&self, graph_vertices: usize) -> f64 {
        if graph_vertices == 0 {
            return 0.0;
        }
        self.vertex_pops as f64 / graph_vertices as f64
    }

    /// Merges the counters of another query into this one (used when an
    /// algorithm falls back to another, e.g. the pre-computation method
    /// falling back to AIS).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.add_work(other);
        self.runtime += other.runtime;
    }

    /// Merges the counters of a query that ran **concurrently** with this
    /// one — the aggregation a scatter-gather coordinator applies over its
    /// per-shard searches.
    ///
    /// The semantics differ from [`QueryStats::absorb`] (sequential
    /// composition) in one place: `runtime` becomes the **maximum** of the
    /// two, because parallel searches overlap on the wall clock and the
    /// slowest shard bounds the gathered query's latency.  Every *work*
    /// counter still sums — total pops, evaluations, distance calls and
    /// `relaxed_edges` measure machine effort, which is additive across
    /// workers.  `streamable_results` also sums: each shard's finalized
    /// entries were final under that shard's own threshold, and the
    /// cross-shard streaming merge can emit an entry as soon as every
    /// shard's bound passes it, so the per-shard counts add up to the
    /// entries deliverable before full completion (capped at `k` by the
    /// merge itself).
    pub fn merge(&mut self, other: &QueryStats) {
        self.add_work(other);
        self.runtime = self.runtime.max(other.runtime);
    }

    fn add_work(&mut self, other: &QueryStats) {
        self.vertex_pops += other.vertex_pops;
        self.social_pops += other.social_pops;
        self.spatial_pops += other.spatial_pops;
        self.index_pops += other.index_pops;
        self.evaluated_users += other.evaluated_users;
        self.distance_calls += other.distance_calls;
        self.cache_hits += other.cache_hits;
        self.delayed_reinsertions += other.delayed_reinsertions;
        self.relaxed_edges += other.relaxed_edges;
        self.streamable_results += other.streamable_results;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.wire_round_trips += other.wire_round_trips;
        self.tighten_frames += other.tighten_frames;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_ratio_divides_by_graph_size() {
        let stats = QueryStats {
            vertex_pops: 25,
            ..QueryStats::default()
        };
        assert!((stats.pop_ratio(100) - 0.25).abs() < 1e-12);
        assert_eq!(stats.pop_ratio(0), 0.0);
        assert_eq!(stats.popped_vertices(), 25);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = QueryStats {
            vertex_pops: 9,
            social_pops: 1,
            spatial_pops: 2,
            index_pops: 3,
            evaluated_users: 4,
            distance_calls: 5,
            cache_hits: 6,
            delayed_reinsertions: 7,
            relaxed_edges: 11,
            streamable_results: 2,
            bytes_sent: 100,
            bytes_received: 200,
            wire_round_trips: 3,
            tighten_frames: 8,
            runtime: Duration::from_millis(10),
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.vertex_pops, 18);
        assert_eq!(a.social_pops, 2);
        assert_eq!(a.spatial_pops, 4);
        assert_eq!(a.index_pops, 6);
        assert_eq!(a.evaluated_users, 8);
        assert_eq!(a.distance_calls, 10);
        assert_eq!(a.cache_hits, 12);
        assert_eq!(a.delayed_reinsertions, 14);
        assert_eq!(a.relaxed_edges, 22);
        assert_eq!(a.streamable_results, 4);
        assert_eq!(a.bytes_sent, 200);
        assert_eq!(a.bytes_received, 400);
        assert_eq!(a.wire_round_trips, 6);
        assert_eq!(a.tighten_frames, 16);
        assert_eq!(a.runtime, Duration::from_millis(20));
    }

    #[test]
    fn merge_sums_work_but_takes_the_runtime_maximum() {
        let mut a = QueryStats {
            vertex_pops: 9,
            social_pops: 1,
            relaxed_edges: 11,
            streamable_results: 2,
            bytes_sent: 10,
            wire_round_trips: 1,
            runtime: Duration::from_millis(10),
            ..QueryStats::default()
        };
        let b = QueryStats {
            vertex_pops: 4,
            social_pops: 6,
            relaxed_edges: 3,
            streamable_results: 5,
            bytes_sent: 30,
            bytes_received: 7,
            wire_round_trips: 2,
            runtime: Duration::from_millis(25),
            ..QueryStats::default()
        };
        a.merge(&b);
        // Work counters are additive across concurrent searches...
        assert_eq!(a.vertex_pops, 13);
        assert_eq!(a.social_pops, 7);
        assert_eq!(a.relaxed_edges, 14);
        assert_eq!(a.streamable_results, 7);
        // ...and so is the wire traffic the searches paid for.
        assert_eq!(a.bytes_sent, 40);
        assert_eq!(a.bytes_received, 7);
        assert_eq!(a.wire_round_trips, 3);
        // ...but overlapping wall-clock is bounded by the slowest worker.
        assert_eq!(a.runtime, Duration::from_millis(25));
        // Merging a faster worker leaves the runtime untouched.
        a.merge(&QueryStats {
            runtime: Duration::from_millis(1),
            ..QueryStats::default()
        });
        assert_eq!(a.runtime, Duration::from_millis(25));
    }

    #[test]
    fn merge_and_absorb_agree_on_everything_but_runtime() {
        let sample = QueryStats {
            vertex_pops: 3,
            evaluated_users: 2,
            distance_calls: 7,
            cache_hits: 1,
            delayed_reinsertions: 4,
            index_pops: 5,
            spatial_pops: 6,
            relaxed_edges: 8,
            streamable_results: 1,
            bytes_sent: 12,
            bytes_received: 34,
            wire_round_trips: 2,
            tighten_frames: 1,
            runtime: Duration::from_millis(5),
            social_pops: 9,
        };
        let mut merged = sample;
        merged.merge(&sample);
        let mut absorbed = sample;
        absorbed.absorb(&sample);
        let strip = |mut s: QueryStats| {
            s.runtime = Duration::ZERO;
            s
        };
        assert_eq!(strip(merged), strip(absorbed));
        assert_eq!(merged.runtime, Duration::from_millis(5));
        assert_eq!(absorbed.runtime, Duration::from_millis(10));
    }

    #[test]
    fn default_stats_are_zeroed() {
        let stats = QueryStats::default();
        assert_eq!(stats.social_pops, 0);
        assert_eq!(stats.evaluated_users, 0);
        assert_eq!(stats.runtime, Duration::ZERO);
    }
}
