//! Pluggable algorithm strategies.
//!
//! Every SSRQ processing algorithm is packaged as an [`AlgorithmStrategy`]:
//! an object that names itself, declares which auxiliary indexes it needs
//! ([`AlgorithmStrategy::requires`]), and executes a [`QueryRequest`]
//! against an engine.  [`GeoSocialEngine`] dispatches every query through
//! its [`StrategyRegistry`], so downstream crates can add algorithms (or
//! wrap built-ins with instrumentation) without touching the engine core —
//! see [`GeoSocialEngine::register_strategy`].

use crate::ais::{ais_query, AisDriver, AisVariant};
use crate::algorithms::{
    cached_query, exhaustive_query, sfa_ch_query, sfa_query, spa_query, tsa_query, CachedDriver,
    ExhaustiveDriver, SfaChDriver, SfaDriver, SpaDriver, SpaOptions, TsaDriver, TsaOptions,
};
use crate::driver::{EagerDriver, QueryDriver};
use crate::{Algorithm, CoreError, GeoSocialEngine, QueryContext, QueryRequest, QueryResult};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The auxiliary indexes a strategy needs before it can execute.
///
/// The engine resolves these ahead of [`AlgorithmStrategy::execute`]: a
/// declared-but-unbuilt index is built lazily (see
/// [`ChBuild`](crate::ChBuild) / [`SocialCachePlan`](crate::SocialCachePlan)),
/// an undeclared one yields [`CoreError::MissingIndex`] instead of a panic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexRequirements {
    /// The strategy issues Contraction Hierarchies point-to-point queries.
    pub contraction_hierarchy: bool,
    /// The strategy reads the pre-computed social neighbour lists (§5.4).
    pub social_cache: bool,
}

impl IndexRequirements {
    /// No auxiliary index needed (the default for the vanilla algorithms).
    pub const NONE: IndexRequirements = IndexRequirements {
        contraction_hierarchy: false,
        social_cache: false,
    };

    /// Requirement set of the `*-CH` baselines.
    pub const CONTRACTION_HIERARCHY: IndexRequirements = IndexRequirements {
        contraction_hierarchy: true,
        social_cache: false,
    };

    /// Requirement set of the pre-computation method.
    pub const SOCIAL_CACHE: IndexRequirements = IndexRequirements {
        contraction_hierarchy: false,
        social_cache: true,
    };
}

/// One SSRQ processing algorithm, packaged for registry dispatch.
///
/// Implementations must be exact: for the same engine and request they must
/// return the same user set and scores as the exhaustive oracle (that is
/// the contract the paper's evaluation, and this crate's test-suite, is
/// built on).  `Send + Sync` is required so a registered strategy can serve
/// the parallel batch path.
pub trait AlgorithmStrategy: Send + Sync {
    /// The name the strategy is registered (and requested) under, e.g.
    /// `"AIS"`.
    fn name(&self) -> &str;

    /// The auxiliary indexes the strategy needs; the engine resolves them
    /// (lazily building declared ones) before calling
    /// [`AlgorithmStrategy::execute`].
    fn requires(&self) -> IndexRequirements {
        IndexRequirements::NONE
    }

    /// Processes one request, drawing all mutable search state from `ctx`.
    fn execute(
        &self,
        engine: &GeoSocialEngine,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError>;

    /// Starts a pull-lazy execution of one request, returning a resumable
    /// [`QueryDriver`] that borrows the engine's indexes and `ctx` for its
    /// lifetime.  A fully driven machine yields the exact result
    /// [`AlgorithmStrategy::execute`] computes.
    ///
    /// The default implementation executes the request **eagerly** and
    /// wraps the finished result in an [`EagerDriver`]
    /// (drain-after-complete), so custom strategies are streamable without
    /// writing a state machine — they just gain no first-result latency.
    /// The built-in strategies override this with genuinely incremental
    /// drivers.
    ///
    /// # Errors
    ///
    /// Whatever [`AlgorithmStrategy::execute`] (or driver construction)
    /// reports for the request — typically
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`].
    fn begin_stream<'a>(
        &'a self,
        engine: &'a GeoSocialEngine,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<Box<dyn QueryDriver + 'a>, CoreError> {
        Ok(Box::new(EagerDriver::new(
            self.execute(engine, request, ctx)?,
        )))
    }
}

/// The strategies an engine dispatches to, keyed by name.
///
/// A fresh registry ([`StrategyRegistry::with_builtins`]) holds the twelve
/// algorithms of the paper under their figure labels (`"EXH"`, `"SFA"`,
/// `"SPA"`, `"TSA"`, `"TSA-QC"`, `"AIS-BID"`, `"AIS-"`, `"AIS"`,
/// `"SFA-CH"`, `"SPA-CH"`, `"TSA-CH"`, `"AIS-Cache"`).
#[derive(Clone, Default)]
pub struct StrategyRegistry {
    by_name: HashMap<String, Arc<dyn AlgorithmStrategy>>,
}

impl StrategyRegistry {
    /// An empty registry (no algorithms at all — rarely what you want).
    pub fn empty() -> Self {
        StrategyRegistry::default()
    }

    /// A registry holding the twelve built-in algorithms.
    pub fn with_builtins() -> Self {
        let mut registry = StrategyRegistry::empty();
        for algorithm in Algorithm::ALL {
            registry.register(builtin_strategy(algorithm));
        }
        registry
    }

    /// Registers `strategy` under [`AlgorithmStrategy::name`], returning
    /// the strategy previously held under that name (so built-ins can be
    /// wrapped or replaced).
    pub fn register(
        &mut self,
        strategy: Arc<dyn AlgorithmStrategy>,
    ) -> Option<Arc<dyn AlgorithmStrategy>> {
        self.by_name.insert(strategy.name().to_owned(), strategy)
    }

    /// Looks a strategy up by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownAlgorithm`] when nothing is registered under
    /// `name`.
    pub fn resolve(&self, name: &str) -> Result<&Arc<dyn AlgorithmStrategy>, CoreError> {
        self.by_name
            .get(name)
            .ok_or_else(|| CoreError::UnknownAlgorithm(name.to_owned()))
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Returns `true` when no strategy is registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.by_name.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("strategies", &self.names())
            .finish()
    }
}

/// The built-in strategy object for `algorithm`.
///
/// [`Algorithm::Auto`] yields a *detached* [`PlannerStrategy`]: one with a
/// private planner whose hot-result cache is disabled, because a
/// free-standing strategy object is not wired into any engine's location
/// churn hooks.  Engines register a cache-enabled planner strategy of
/// their own at construction time, so this arm only serves callers that
/// build registries by hand.
///
/// [`PlannerStrategy`]: crate::PlannerStrategy
pub fn builtin_strategy(algorithm: Algorithm) -> Arc<dyn AlgorithmStrategy> {
    if algorithm == Algorithm::Auto {
        return Arc::new(crate::PlannerStrategy::detached());
    }
    Arc::new(BuiltinStrategy { algorithm })
}

/// Adapter packaging one built-in [`Algorithm`] as a strategy.
///
/// This is the *only* place that still distinguishes the built-in variants,
/// and it does so at registration time — the engine's dispatch path is a
/// pure name lookup.
struct BuiltinStrategy {
    algorithm: Algorithm,
}

impl AlgorithmStrategy for BuiltinStrategy {
    fn name(&self) -> &str {
        self.algorithm.name()
    }

    fn requires(&self) -> IndexRequirements {
        match self.algorithm {
            Algorithm::SfaCh | Algorithm::SpaCh | Algorithm::TsaCh => {
                IndexRequirements::CONTRACTION_HIERARCHY
            }
            Algorithm::SfaCached => IndexRequirements::SOCIAL_CACHE,
            _ => IndexRequirements::NONE,
        }
    }

    fn execute(
        &self,
        engine: &GeoSocialEngine,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        let dataset = engine.dataset();
        match self.algorithm {
            Algorithm::Exhaustive => exhaustive_query(dataset, request, ctx),
            Algorithm::Sfa => sfa_query(dataset, request, ctx),
            Algorithm::Spa => {
                spa_query(dataset, engine.grid(), request, SpaOptions::default(), ctx)
            }
            Algorithm::Tsa => tsa_query(
                dataset,
                engine.grid(),
                request,
                TsaOptions {
                    quick_combine: false,
                    landmarks: Some(engine.landmarks()),
                    ch_phase2: None,
                },
                ctx,
            ),
            Algorithm::TsaQc => tsa_query(
                dataset,
                engine.grid(),
                request,
                TsaOptions {
                    quick_combine: true,
                    landmarks: Some(engine.landmarks()),
                    ch_phase2: None,
                },
                ctx,
            ),
            Algorithm::AisBid => ais_query(
                dataset,
                engine.ais_index(),
                engine.landmarks(),
                request,
                AisVariant::bid(),
                ctx,
            ),
            Algorithm::AisMinus => ais_query(
                dataset,
                engine.ais_index(),
                engine.landmarks(),
                request,
                AisVariant::minus(),
                ctx,
            ),
            Algorithm::Ais => ais_query(
                dataset,
                engine.ais_index(),
                engine.landmarks(),
                request,
                AisVariant::full(),
                ctx,
            ),
            Algorithm::SfaCh => {
                let ch = engine.require_contraction_hierarchy()?;
                sfa_ch_query(dataset, ch, request, ctx)
            }
            Algorithm::SpaCh => {
                let ch = engine.require_contraction_hierarchy()?;
                spa_query(
                    dataset,
                    engine.grid(),
                    request,
                    SpaOptions { ch: Some(ch) },
                    ctx,
                )
            }
            Algorithm::TsaCh => {
                let ch = engine.require_contraction_hierarchy()?;
                tsa_query(
                    dataset,
                    engine.grid(),
                    request,
                    TsaOptions {
                        quick_combine: false,
                        landmarks: Some(engine.landmarks()),
                        ch_phase2: Some(ch),
                    },
                    ctx,
                )
            }
            Algorithm::SfaCached => {
                let cache = engine.require_social_cache()?;
                cached_query(dataset, cache, request, |fallback_request| {
                    ais_query(
                        dataset,
                        engine.ais_index(),
                        engine.landmarks(),
                        fallback_request,
                        AisVariant::full(),
                        ctx,
                    )
                })
            }
            // `builtin_strategy` maps `Auto` to a `PlannerStrategy`; a
            // hand-built `BuiltinStrategy { algorithm: Auto }` cannot exist
            // outside this module, so this arm is defensive.
            Algorithm::Auto => Err(CoreError::UnknownAlgorithm(
                "AUTO has no built-in executor; use PlannerStrategy".to_owned(),
            )),
        }
    }

    fn begin_stream<'a>(
        &'a self,
        engine: &'a GeoSocialEngine,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<Box<dyn QueryDriver + 'a>, CoreError> {
        let dataset = engine.dataset();
        Ok(match self.algorithm {
            Algorithm::Exhaustive => Box::new(ExhaustiveDriver::new(dataset, request, ctx)?),
            Algorithm::Sfa => Box::new(SfaDriver::new(dataset, request, ctx)?),
            Algorithm::Spa => Box::new(SpaDriver::new(
                dataset,
                engine.grid(),
                request,
                SpaOptions::default(),
                ctx,
            )?),
            Algorithm::Tsa => Box::new(TsaDriver::new(
                dataset,
                engine.grid(),
                request,
                TsaOptions {
                    quick_combine: false,
                    landmarks: Some(engine.landmarks()),
                    ch_phase2: None,
                },
                ctx,
            )?),
            Algorithm::TsaQc => Box::new(TsaDriver::new(
                dataset,
                engine.grid(),
                request,
                TsaOptions {
                    quick_combine: true,
                    landmarks: Some(engine.landmarks()),
                    ch_phase2: None,
                },
                ctx,
            )?),
            Algorithm::AisBid => Box::new(AisDriver::new(
                dataset,
                engine.ais_index(),
                engine.landmarks(),
                request,
                AisVariant::bid(),
                ctx,
            )?),
            Algorithm::AisMinus => Box::new(AisDriver::new(
                dataset,
                engine.ais_index(),
                engine.landmarks(),
                request,
                AisVariant::minus(),
                ctx,
            )?),
            Algorithm::Ais => Box::new(AisDriver::new(
                dataset,
                engine.ais_index(),
                engine.landmarks(),
                request,
                AisVariant::full(),
                ctx,
            )?),
            Algorithm::SfaCh => {
                let ch = engine.require_contraction_hierarchy()?;
                Box::new(SfaChDriver::new(dataset, ch, request, ctx)?)
            }
            Algorithm::SpaCh => {
                let ch = engine.require_contraction_hierarchy()?;
                Box::new(SpaDriver::new(
                    dataset,
                    engine.grid(),
                    request,
                    SpaOptions { ch: Some(ch) },
                    ctx,
                )?)
            }
            Algorithm::TsaCh => {
                let ch = engine.require_contraction_hierarchy()?;
                Box::new(TsaDriver::new(
                    dataset,
                    engine.grid(),
                    request,
                    TsaOptions {
                        quick_combine: false,
                        landmarks: Some(engine.landmarks()),
                        ch_phase2: Some(ch),
                    },
                    ctx,
                )?)
            }
            Algorithm::SfaCached => {
                let cache = engine.require_social_cache()?;
                Box::new(CachedDriver::new(dataset, cache, request, {
                    move |fallback_request: &QueryRequest| {
                        ais_query(
                            dataset,
                            engine.ais_index(),
                            engine.landmarks(),
                            fallback_request,
                            AisVariant::full(),
                            ctx,
                        )
                    }
                })?)
            }
            Algorithm::Auto => {
                return Err(CoreError::UnknownAlgorithm(
                    "AUTO has no built-in executor; use PlannerStrategy".to_owned(),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_holds_all_twelve_algorithms() {
        let registry = StrategyRegistry::with_builtins();
        assert_eq!(registry.len(), Algorithm::ALL.len());
        assert!(!registry.is_empty());
        for algorithm in Algorithm::ALL {
            let strategy = registry.resolve(algorithm.name()).unwrap();
            assert_eq!(strategy.name(), algorithm.name());
        }
        assert!(matches!(
            registry.resolve("NOPE"),
            Err(CoreError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn builtin_requirements_match_algorithm_flags() {
        for algorithm in Algorithm::ALL {
            let strategy = builtin_strategy(algorithm);
            let requires = strategy.requires();
            assert_eq!(requires.contraction_hierarchy, algorithm.needs_ch());
            assert_eq!(requires.social_cache, algorithm.needs_social_cache());
        }
    }

    #[test]
    fn registry_register_replaces_and_reports_previous() {
        let mut registry = StrategyRegistry::with_builtins();
        let replaced = registry.register(builtin_strategy(Algorithm::Ais));
        assert!(replaced.is_some());
        assert_eq!(registry.len(), Algorithm::ALL.len());
    }

    #[test]
    fn names_are_sorted_and_unique() {
        let registry = StrategyRegistry::with_builtins();
        let names = registry.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
    }
}
