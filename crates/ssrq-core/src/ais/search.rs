use crate::ais::AisIndex;
use crate::driver::{drain_new_finalized, QueryDriver, StepOutcome};
use crate::{
    CoreError, GeoSocialDataset, QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser,
    RankingContext, TopK, UserId,
};
use ssrq_graph::{GraphDistanceEngine, LandmarkSet, SharingMode};
use ssrq_spatial::{NodeId, NodeKind, Point};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Which optimizations the AIS search applies — the three flavours evaluated
/// in Figure 10 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AisVariant {
    /// Sharing mode of the graph-distance submodule (§5.2).
    pub sharing: SharingMode,
    /// Whether the delayed-evaluation strategy (§5.3) is applied.
    pub delayed_evaluation: bool,
}

impl AisVariant {
    /// AIS-BID: plain bidirectional distance computations, no sharing, no
    /// delayed evaluation.
    pub fn bid() -> Self {
        AisVariant {
            sharing: SharingMode::None,
            delayed_evaluation: false,
        }
    }

    /// AIS⁻: computation sharing but no delayed evaluation.
    pub fn minus() -> Self {
        AisVariant {
            sharing: SharingMode::Shared,
            delayed_evaluation: false,
        }
    }

    /// AIS: all optimizations.
    pub fn full() -> Self {
        AisVariant {
            sharing: SharingMode::Shared,
            delayed_evaluation: true,
        }
    }
}

/// An entry of the AIS search heap (Algorithm 2): an index node, or a user
/// awaiting exact evaluation.
#[derive(Debug, Clone, Copy)]
enum Item {
    Node(NodeId),
    /// A user together with its normalized spatial distance from the query
    /// user (computed when the leaf cell was expanded).
    User(UserId, f64),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: f64,
    item: Item,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
    }
}

/// The Aggregate Index Search (Algorithm 2 of the paper) as a resumable
/// state machine.
///
/// Each [`QueryDriver::step`] pops one entry from the search heap `H` and
/// handles it — expanding an index node, parking a user, or evaluating one
/// exactly.  Pops arrive in non-decreasing key order, so every pop key is a
/// finalization bound: the driver emits result entries as soon as their
/// score drops below the best key still in the heap.
pub struct AisDriver<'a> {
    dataset: &'a GeoSocialDataset,
    index: &'a AisIndex,
    landmarks: &'a LandmarkSet,
    request: QueryRequest,
    ctx: RankingContext<'a>,
    variant: AisVariant,
    query_location: Point,
    query_vector: Vec<f64>,
    distance_engine: GraphDistanceEngine<'a, 'a>,
    heap: BinaryHeap<Entry>,
    topk: TopK,
    stats: QueryStats,
    start: Instant,
    emitted: usize,
    result: Option<Result<QueryResult, CoreError>>,
    done: bool,
}

impl std::fmt::Debug for AisDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AisDriver")
            .field("variant", &self.variant)
            .field("heap_len", &self.heap.len())
            .field("done", &self.done)
            .finish()
    }
}

impl<'a> AisDriver<'a> {
    /// Starts an AIS search with the chosen variant.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::UnknownUser`] for an
    /// invalid request.
    pub fn new(
        dataset: &'a GeoSocialDataset,
        index: &'a AisIndex,
        landmarks: &'a LandmarkSet,
        request: &QueryRequest,
        variant: AisVariant,
        qctx: &'a mut QueryContext,
    ) -> Result<Self, CoreError> {
        request.validate()?;
        dataset.check_user(request.user())?;
        let start = Instant::now();
        let ctx = RankingContext::new(dataset, request);
        let query_location = request.resolved_origin(dataset);
        let query_vector: Vec<f64> = landmarks.vector(request.user()).to_vec();
        let mut driver = AisDriver {
            topk: TopK::for_request(request),
            distance_engine: GraphDistanceEngine::new(
                dataset.graph(),
                landmarks,
                request.user(),
                variant.sharing,
                &mut qctx.social,
            ),
            heap: BinaryHeap::new(),
            // Placeholder for the unlocated case; replaced below otherwise.
            query_location: Point::new(0.0, 0.0),
            dataset,
            index,
            landmarks,
            request: request.clone(),
            ctx,
            variant,
            query_vector,
            stats: QueryStats::default(),
            start,
            emitted: 0,
            result: None,
            done: false,
        };
        let Some(query_location) = query_location else {
            // A query user without a location sees every candidate at
            // infinite spatial distance; with α < 1 no candidate has a
            // finite score.
            driver.stats.runtime = driver.start.elapsed();
            driver.result = Some(Ok(QueryResult {
                ranked: Vec::new(),
                k: request.k(),
                degraded: false,
                stats: driver.stats,
            }));
            driver.done = true;
            return Ok(driver);
        };
        driver.query_location = query_location;
        for node in index.grid().top_nodes() {
            let key = node_lower_bound(
                index,
                &driver.ctx,
                node,
                query_location,
                &driver.query_vector,
            );
            if key.is_finite() {
                driver.heap.push(Entry {
                    key,
                    item: Item::Node(node),
                });
            }
        }
        Ok(driver)
    }

    /// Folds the distance-submodule counters into the query stats.
    fn merged_stats(&self) -> QueryStats {
        let mut stats = self.stats;
        let engine_stats = self.distance_engine.stats();
        stats.social_pops += engine_stats.forward_settles + engine_stats.reverse_settles;
        stats.cache_hits += engine_stats.cache_hits;
        stats.relaxed_edges += engine_stats.edge_relaxations;
        // |V_pop| for AIS is the number of entries popped from its own
        // search heap H (Algorithm 2), not the internal work of the distance
        // submodule.
        stats.vertex_pops = stats.index_pops;
        stats
    }

    fn complete(&mut self) -> StepOutcome {
        self.stats = self.merged_stats();
        self.stats.streamable_results = self.topk.finalized();
        self.stats.runtime = self.start.elapsed();
        let topk = std::mem::replace(&mut self.topk, TopK::new(0));
        self.result = Some(Ok(QueryResult {
            ranked: topk.into_sorted_vec(),
            k: self.request.k(),
            degraded: false,
            stats: self.stats,
        }));
        self.done = true;
        StepOutcome::Complete
    }
}

impl QueryDriver for AisDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        if self.done {
            return StepOutcome::Complete;
        }
        let Some(Entry { key, item }) = self.heap.pop() else {
            // The search heap drained: every remaining user was pruned with
            // a key at or above `f_k`, so no held entry can be displaced —
            // the interim result is final.
            self.topk.raise_threshold(f64::INFINITY);
            return self.complete();
        };
        self.stats.index_pops += 1;
        // Every candidate still in the heap (and everything reachable from
        // it) scores at least `key`: pops arrive in non-decreasing key
        // order, so `key` is a finalization bound for the entries held.
        self.topk.raise_threshold(key);
        if key >= self.topk.fk() {
            return self.complete();
        }
        match item {
            Item::Node(node) => match self.index.grid().node_kind(node) {
                NodeKind::Internal => {
                    for child in self.index.grid().children(node) {
                        let child_key = node_lower_bound(
                            self.index,
                            &self.ctx,
                            child,
                            self.query_location,
                            &self.query_vector,
                        );
                        if child_key.is_finite() && child_key < self.topk.fk() {
                            self.heap.push(Entry {
                                key: child_key,
                                item: Item::Node(child),
                            });
                        }
                    }
                }
                NodeKind::Leaf => {
                    for &user in self.index.grid().leaf_items(node) {
                        if !self.request.admits(self.dataset, user) {
                            continue;
                        }
                        let spatial = self.ctx.spatial(user);
                        let social_lb = self.ctx.normalize_social(
                            self.landmarks.lower_bound(self.request.user(), user),
                        );
                        let user_key = self.ctx.score_lower_bound(social_lb, spatial);
                        if user_key.is_finite() && user_key < self.topk.fk() {
                            self.heap.push(Entry {
                                key: user_key,
                                item: Item::User(user, spatial),
                            });
                        }
                    }
                }
            },
            Item::User(user, spatial) => {
                // Delayed evaluation (§5.3): if the shared forward search has
                // progressed beyond this user's landmark bound, re-insert it
                // with the tighter β-based key instead of evaluating it now.
                if self.variant.delayed_evaluation {
                    let beta_bound = self.ctx.normalize_social(self.distance_engine.beta());
                    let delayed_key = self.ctx.score_lower_bound(beta_bound, spatial);
                    if key < delayed_key - 1e-12
                        && self.distance_engine.known_distance(user).is_none()
                    {
                        self.stats.delayed_reinsertions += 1;
                        self.heap.push(Entry {
                            key: delayed_key,
                            item: Item::User(user, spatial),
                        });
                        return StepOutcome::Progress;
                    }
                }
                // Evaluate or disqualify: the exact social distance is only
                // needed up to the budget beyond which the user cannot beat
                // the current threshold f_k.
                let fk = self.topk.fk();
                let budget = if fk.is_finite() {
                    let social_budget =
                        (fk - (1.0 - self.request.alpha()) * spatial) / self.request.alpha();
                    self.dataset.social_norm() * social_budget
                } else {
                    f64::INFINITY
                };
                let raw_social = self.distance_engine.distance_within(user, budget);
                self.stats.distance_calls += 1;
                self.stats.evaluated_users += 1;
                let social = self.ctx.normalize_social(raw_social);
                let score = self.ctx.score(social, spatial);
                self.topk.consider(RankedUser {
                    user,
                    score,
                    social,
                    spatial,
                });
            }
        }
        StepOutcome::Progress
    }

    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>) {
        if !self.done {
            drain_new_finalized(&self.topk, &mut self.emitted, out);
        }
    }

    fn is_complete(&self) -> bool {
        self.done
    }

    fn stats(&self) -> QueryStats {
        if self.done {
            return self.stats;
        }
        let mut stats = self.merged_stats();
        stats.streamable_results = self.topk.finalized();
        stats.runtime = self.start.elapsed();
        stats
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        self.result
            .take()
            .expect("AisDriver not complete or result already taken")
    }
}

/// Runs the AIS branch-and-bound search (Algorithm 2 of the paper) with the
/// chosen variant.
///
/// This is the eager wrapper over [`AisDriver`].
pub fn ais_query(
    dataset: &GeoSocialDataset,
    index: &AisIndex,
    landmarks: &LandmarkSet,
    request: &QueryRequest,
    variant: AisVariant,
    qctx: &mut QueryContext,
) -> Result<QueryResult, CoreError> {
    AisDriver::new(dataset, index, landmarks, request, variant, qctx)?.run_to_completion()
}

/// `MINF(u_q, C)` of Theorem 1, in normalized/ranking units.
fn node_lower_bound(
    index: &AisIndex,
    ctx: &RankingContext<'_>,
    node: NodeId,
    query_location: ssrq_spatial::Point,
    query_vector: &[f64],
) -> f64 {
    let spatial_lb = ctx.normalize_spatial(index.spatial_lower_bound(node, query_location));
    let social_lb = ctx.normalize_social(index.social_lower_bound(node, query_vector));
    ctx.score_lower_bound(social_lb, spatial_lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive;
    use ssrq_graph::{GraphBuilder, LandmarkSelection};
    use ssrq_spatial::Point;

    fn req(user: u32, k: usize, alpha: f64) -> QueryRequest {
        QueryRequest::for_user(user)
            .k(k)
            .alpha(alpha)
            .build()
            .unwrap()
    }

    /// A deterministic 30-user dataset mixing two spatial clusters and a
    /// ring-with-chords social topology.
    fn dataset() -> (GeoSocialDataset, LandmarkSet) {
        let n = 30u32;
        let mut builder = GraphBuilder::new(n as usize);
        for i in 0..n {
            builder
                .add_edge(i, (i + 1) % n, 0.5 + (i % 5) as f64 * 0.3)
                .unwrap();
        }
        for i in (0..n).step_by(3) {
            builder
                .add_edge(i, (i + 7) % n, 1.0 + (i % 4) as f64 * 0.5)
                .unwrap();
        }
        let graph = builder.build();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| {
                if i % 7 == 6 {
                    None
                } else if i % 2 == 0 {
                    Some(Point::new(
                        0.1 + (i as f64) * 0.01,
                        0.2 + (i as f64 % 5.0) * 0.05,
                    ))
                } else {
                    Some(Point::new(
                        0.8 - (i as f64) * 0.005,
                        0.7 + (i as f64 % 3.0) * 0.08,
                    ))
                }
            })
            .collect();
        let landmarks =
            LandmarkSet::build(&graph, 3, LandmarkSelection::FarthestFirst, 11).unwrap();
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        (dataset, landmarks)
    }

    fn check_variant(variant: AisVariant) {
        let (dataset, landmarks) = dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        for &alpha in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            for &k in &[1usize, 3, 5, 10] {
                for user in [0u32, 5, 13, 22] {
                    let request = req(user, k, alpha);
                    let expected =
                        exhaustive::exhaustive_query(&dataset, &request, &mut QueryContext::new())
                            .unwrap();
                    let got = ais_query(
                        &dataset,
                        &index,
                        &landmarks,
                        &request,
                        variant,
                        &mut QueryContext::new(),
                    )
                    .unwrap();
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "variant {variant:?}, alpha {alpha}, k {k}, user {user}:\n  got {:?}\n  expected {:?}",
                        got.users(),
                        expected.users()
                    );
                }
            }
        }
    }

    #[test]
    fn ais_bid_matches_exhaustive() {
        check_variant(AisVariant::bid());
    }

    #[test]
    fn ais_minus_matches_exhaustive() {
        check_variant(AisVariant::minus());
    }

    #[test]
    fn ais_full_matches_exhaustive() {
        check_variant(AisVariant::full());
    }

    #[test]
    fn query_user_without_location_gets_empty_result() {
        let (dataset, landmarks) = dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        // User 6 has no location (6 % 7 == 6).
        let request = req(6, 5, 0.5);
        let result = ais_query(
            &dataset,
            &index,
            &landmarks,
            &request,
            AisVariant::full(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.ranked.is_empty());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let (dataset, landmarks) = dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        let bad_alpha = QueryRequest::for_user(0)
            .k(5)
            .alpha(1.0)
            .build_unvalidated();
        assert!(ais_query(
            &dataset,
            &index,
            &landmarks,
            &bad_alpha,
            AisVariant::full(),
            &mut QueryContext::new()
        )
        .is_err());
        let bad_user = req(999, 5, 0.5);
        assert!(ais_query(
            &dataset,
            &index,
            &landmarks,
            &bad_user,
            AisVariant::full(),
            &mut QueryContext::new()
        )
        .is_err());
    }

    #[test]
    fn stats_report_search_effort() {
        let (dataset, landmarks) = dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        let request = req(0, 5, 0.3);
        let result = ais_query(
            &dataset,
            &index,
            &landmarks,
            &request,
            AisVariant::full(),
            &mut QueryContext::new(),
        )
        .unwrap();
        assert!(result.stats.index_pops > 0);
        assert!(result.stats.evaluated_users >= result.ranked.len());
        assert!(result.stats.runtime.as_nanos() > 0);
    }

    #[test]
    fn full_variant_evaluates_no_more_users_than_bid() {
        let (dataset, landmarks) = dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        let request = req(3, 5, 0.5);
        let bid = ais_query(
            &dataset,
            &index,
            &landmarks,
            &request,
            AisVariant::bid(),
            &mut QueryContext::new(),
        )
        .unwrap();
        let full = ais_query(
            &dataset,
            &index,
            &landmarks,
            &request,
            AisVariant::full(),
            &mut QueryContext::new(),
        )
        .unwrap();
        // The optimizations must never *increase* the number of exact
        // distance evaluations.
        assert!(full.stats.evaluated_users <= bid.stats.evaluated_users + 1);
    }
}
