//! The Aggregate Index Search (AIS) — the paper's primary contribution (§5).
//!
//! AIS summarizes both spatial and social information in a single index: a
//! multi-level regular grid whose nodes carry *social summaries* — per-node
//! aggregates of the landmark-distance vectors of the users underneath.
//! Combining the spatial lower bound `ď(u_q, C)` with the social lower bound
//! `p̌(v_q, C)` (Lemma 2) yields `MINF(u_q, C)` (Theorem 1), which drives a
//! best-first branch-and-bound search that quickly zooms into users close in
//! *both* domains.
//!
//! Three variants of the search are exposed (matching the evaluation of the
//! paper, Figure 10):
//!
//! * **AIS-BID** — the plain search with fresh bidirectional distance
//!   computations per evaluated user;
//! * **AIS⁻** — adds the computation-sharing optimizations of §5.2
//!   (distance caching + forward heap caching);
//! * **AIS** — additionally applies the delayed-evaluation strategy of §5.3.

mod index;
mod search;

pub use index::{AisIndex, SocialSummary};
pub use search::{ais_query, AisDriver, AisVariant};
