use crate::{CoreError, GeoSocialDataset, UserId};
use ssrq_graph::LandmarkSet;
use ssrq_spatial::{MultiLevelGrid, NodeId, NodeKind, Point, Rect};

/// The social summary of an index node: for each landmark `j`, the minimum
/// (`m̌[j]`) and maximum (`m̂[j]`) graph distance between any user below the
/// node and that landmark (§5.1).
///
/// An empty node keeps `m̌ = +∞` and `m̂ = −∞`, which makes its social lower
/// bound infinite — empty cells are pruned automatically.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialSummary {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl SocialSummary {
    /// Creates the summary of an empty node for `m` landmarks.
    pub fn empty(m: usize) -> Self {
        SocialSummary {
            min: vec![f64::INFINITY; m],
            max: vec![f64::NEG_INFINITY; m],
        }
    }

    /// Folds one user's landmark-distance vector into the summary.
    pub fn absorb_vector(&mut self, vector: &[f64]) {
        for (j, &d) in vector.iter().enumerate() {
            if d < self.min[j] {
                self.min[j] = d;
            }
            if d > self.max[j] {
                self.max[j] = d;
            }
        }
    }

    /// Folds another summary (e.g. of a child node) into this one.
    pub fn absorb_summary(&mut self, other: &SocialSummary) {
        for j in 0..self.min.len() {
            if other.min[j] < self.min[j] {
                self.min[j] = other.min[j];
            }
            if other.max[j] > self.max[j] {
                self.max[j] = other.max[j];
            }
        }
    }

    /// `m̌[j]`.
    pub fn min_distance(&self, j: usize) -> f64 {
        self.min[j]
    }

    /// `m̂[j]`.
    pub fn max_distance(&self, j: usize) -> f64 {
        self.max[j]
    }

    /// Returns `true` when no user has been folded in.
    pub fn is_empty(&self) -> bool {
        self.min.iter().all(|d| d.is_infinite() && *d > 0.0)
    }

    /// Approximate heap footprint of the summary's two aggregate vectors in
    /// bytes.
    pub fn approx_heap_bytes(&self) -> usize {
        (self.min.capacity() + self.max.capacity()) * std::mem::size_of::<f64>()
    }

    /// The social lower bound `p̌(v_q, C)` of Lemma 2, given the query
    /// user's landmark-distance vector.
    ///
    /// For each landmark `j`:
    /// * if `m_qj < m̌[j]` the bound `m̌[j] − m_qj` applies,
    /// * if `m_qj > m̂[j]` the bound `m_qj − m̂[j]` applies,
    /// * otherwise the landmark yields no information.
    ///
    /// The tightest (largest) bound over all landmarks is returned.
    pub fn lower_bound(&self, query_vector: &[f64]) -> f64 {
        debug_assert_eq!(query_vector.len(), self.min.len());
        let mut best = 0.0_f64;
        for (j, &mqj) in query_vector.iter().enumerate() {
            let bound = if mqj < self.min[j] {
                self.min[j] - mqj
            } else if mqj > self.max[j] {
                mqj - self.max[j]
            } else {
                0.0
            };
            if bound > best {
                best = bound;
            }
        }
        best
    }
}

/// The AIS aggregate index: a multi-level regular grid over user locations
/// with a [`SocialSummary`] attached to every node.
#[derive(Debug, Clone)]
pub struct AisIndex {
    grid: MultiLevelGrid,
    summaries: Vec<SocialSummary>,
    num_landmarks: usize,
}

impl AisIndex {
    /// Builds the index over every located user of `dataset`.
    ///
    /// * `branch` — the partitioning granularity `s` (each node has `s × s`
    ///   children).
    /// * `levels` — retained grid levels (the paper's default keeps two).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the spatial substrate.
    pub fn build(
        dataset: &GeoSocialDataset,
        landmarks: &LandmarkSet,
        branch: u32,
        levels: u32,
    ) -> Result<Self, CoreError> {
        // Expand the bounds marginally so boundary points stay strictly
        // inside and the index tolerates small location drifts.
        let bounds = expanded_bounds(dataset.bounds());
        let grid = MultiLevelGrid::bulk_load(bounds, branch, levels, dataset.located_users())?;
        let num_landmarks = landmarks.len();
        let summaries = vec![SocialSummary::empty(num_landmarks); grid.node_count() as usize];
        let mut index = AisIndex {
            grid,
            summaries,
            num_landmarks,
        };
        for top in index.grid.top_nodes().collect::<Vec<_>>() {
            let summary = index.compute_summary(top, landmarks);
            index.summaries[top.0 as usize] = summary;
        }
        Ok(index)
    }

    fn compute_summary(&mut self, node: NodeId, landmarks: &LandmarkSet) -> SocialSummary {
        let mut summary = SocialSummary::empty(self.num_landmarks);
        match self.grid.node_kind(node) {
            NodeKind::Leaf => {
                for &user in self.grid.leaf_items(node) {
                    summary.absorb_vector(landmarks.vector(user));
                }
            }
            NodeKind::Internal => {
                for child in self.grid.children(node) {
                    let child_summary = self.compute_summary(child, landmarks);
                    summary.absorb_summary(&child_summary);
                    self.summaries[child.0 as usize] = child_summary;
                }
            }
        }
        summary
    }

    /// The underlying multi-level grid.
    pub fn grid(&self) -> &MultiLevelGrid {
        &self.grid
    }

    /// Number of landmarks per summary.
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Approximate heap footprint of the index in bytes: the multi-level
    /// grid plus every node's social summary.  The index aggregates
    /// *locations*, so it is per-shard state in a partitioned deployment.
    pub fn approx_heap_bytes(&self) -> usize {
        self.grid.approx_heap_bytes()
            + self.summaries.capacity() * std::mem::size_of::<SocialSummary>()
            + self
                .summaries
                .iter()
                .map(SocialSummary::approx_heap_bytes)
                .sum::<usize>()
    }

    /// The social summary of a node.
    pub fn summary(&self, node: NodeId) -> &SocialSummary {
        &self.summaries[node.0 as usize]
    }

    /// The raw (unnormalized) social lower bound `p̌(v_q, C)` for a node.
    pub fn social_lower_bound(&self, node: NodeId, query_vector: &[f64]) -> f64 {
        self.summaries[node.0 as usize].lower_bound(query_vector)
    }

    /// The raw spatial lower bound `ď(u_q, C)` for a node.
    pub fn spatial_lower_bound(&self, node: NodeId, query_location: Point) -> f64 {
        self.grid.node_rect(node).min_distance(query_location)
    }

    /// Moves a user to a new location, maintaining leaf membership and the
    /// social summaries along the affected paths (the update procedure of
    /// §5.1: a move is a deletion from the old cell plus an insertion into
    /// the new one; summaries are recomputed and propagated upward).
    pub fn update_location(
        &mut self,
        user: UserId,
        location: Point,
        landmarks: &LandmarkSet,
    ) -> Result<(), CoreError> {
        if self.grid.position(user).is_some() {
            let (old_leaf, new_leaf) = self.grid.update(user, location)?;
            if old_leaf != new_leaf {
                self.rebuild_path(old_leaf, landmarks);
                self.rebuild_path(new_leaf, landmarks);
            }
        } else {
            let leaf = self.grid.insert(user, location);
            self.rebuild_path(leaf, landmarks);
        }
        Ok(())
    }

    /// Removes a user (e.g. one whose location became unknown), updating the
    /// summaries along its former path.
    pub fn remove_user(&mut self, user: UserId, landmarks: &LandmarkSet) -> Result<(), CoreError> {
        let leaf = self.grid.remove(user)?;
        self.rebuild_path(leaf, landmarks);
        Ok(())
    }

    /// Recomputes the summary of a leaf from its users, then refreshes every
    /// ancestor from its children.
    fn rebuild_path(&mut self, leaf: NodeId, landmarks: &LandmarkSet) {
        let mut summary = SocialSummary::empty(self.num_landmarks);
        for &user in self.grid.leaf_items(leaf) {
            summary.absorb_vector(landmarks.vector(user));
        }
        self.summaries[leaf.0 as usize] = summary;
        let ancestors = self.grid.ancestors(leaf);
        for node in ancestors.into_iter().skip(1) {
            let mut summary = SocialSummary::empty(self.num_landmarks);
            for child in self.grid.children(node) {
                summary.absorb_summary(&self.summaries[child.0 as usize]);
            }
            self.summaries[node.0 as usize] = summary;
        }
    }
}

fn expanded_bounds(bounds: Rect) -> Rect {
    let margin = (bounds.width().max(bounds.height()) * 1e-6).max(1e-9);
    bounds.expanded(margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::{dijkstra_all, GraphBuilder, LandmarkSelection, SocialGraph};

    fn small_dataset() -> (GeoSocialDataset, LandmarkSet) {
        // A ring of 8 users with unit weights, located on a 3x3-ish layout.
        let graph: SocialGraph =
            GraphBuilder::from_edges(8, (0..8).map(|i| (i as u32, ((i + 1) % 8) as u32, 1.0)))
                .unwrap();
        let locations = vec![
            Some(Point::new(0.1, 0.1)),
            Some(Point::new(0.9, 0.1)),
            Some(Point::new(0.5, 0.5)),
            Some(Point::new(0.1, 0.9)),
            Some(Point::new(0.9, 0.9)),
            Some(Point::new(0.3, 0.7)),
            Some(Point::new(0.7, 0.3)),
            None,
        ];
        let landmarks = LandmarkSet::build(&graph, 2, LandmarkSelection::FarthestFirst, 7).unwrap();
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        (dataset, landmarks)
    }

    #[test]
    fn summary_lower_bound_is_valid_for_every_cell() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        // For every query user and every node, the social lower bound must
        // not exceed the true distance to any user stored below the node.
        for q in 0..8u32 {
            let truth = dijkstra_all(dataset.graph(), q);
            let qvec: Vec<f64> = landmarks.vector(q).to_vec();
            for node_id in 0..index.grid().node_count() {
                let node = NodeId(node_id);
                let bound = index.social_lower_bound(node, &qvec);
                let mut users: Vec<UserId> = Vec::new();
                collect_users(&index, node, &mut users);
                for u in users {
                    assert!(
                        bound <= truth[u as usize] + 1e-9,
                        "node {node_id}: bound {bound} exceeds d({q},{u}) = {}",
                        truth[u as usize]
                    );
                }
            }
        }
    }

    fn collect_users(index: &AisIndex, node: NodeId, out: &mut Vec<UserId>) {
        match index.grid().node_kind(node) {
            NodeKind::Leaf => out.extend_from_slice(index.grid().leaf_items(node)),
            NodeKind::Internal => {
                for child in index.grid().children(node) {
                    collect_users(index, child, out);
                }
            }
        }
    }

    #[test]
    fn empty_cells_get_infinite_bound() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        let qvec: Vec<f64> = landmarks.vector(0).to_vec();
        let mut found_empty = false;
        for node_id in 0..index.grid().node_count() {
            let node = NodeId(node_id);
            if index.grid().node_kind(node) == NodeKind::Leaf
                && index.grid().leaf_items(node).is_empty()
            {
                found_empty = true;
                assert!(index.social_lower_bound(node, &qvec).is_infinite());
                assert!(index.summary(node).is_empty());
            }
        }
        assert!(found_empty, "expected at least one empty leaf cell");
    }

    #[test]
    fn internal_summaries_cover_children() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        for top in index.grid().top_nodes() {
            let parent = index.summary(top);
            for child in index.grid().children(top) {
                let child_summary = index.summary(child);
                for j in 0..index.num_landmarks() {
                    if !child_summary.is_empty() {
                        assert!(parent.min_distance(j) <= child_summary.min_distance(j));
                        assert!(parent.max_distance(j) >= child_summary.max_distance(j));
                    }
                }
            }
        }
    }

    #[test]
    fn paper_figure4_example_bound() {
        // Figure 4 of the paper: cell containing v3, v4, v5 with distances
        // 4, 3, 1 to the single landmark; the query vertex v1 is at distance
        // 0 from the landmark... the paper derives p̌ = 1 for a query at
        // landmark distance 0.  Reproduce with a hand-built summary.
        let mut summary = SocialSummary::empty(1);
        summary.absorb_vector(&[4.0]);
        summary.absorb_vector(&[3.0]);
        summary.absorb_vector(&[1.0]);
        assert_eq!(summary.min_distance(0), 1.0);
        assert_eq!(summary.max_distance(0), 4.0);
        assert_eq!(summary.lower_bound(&[0.0]), 1.0);
        // A query vertex between min and max yields no bound.
        assert_eq!(summary.lower_bound(&[2.0]), 0.0);
        // A query vertex beyond the max yields mqj - max.
        assert_eq!(summary.lower_bound(&[6.0]), 2.0);
    }

    #[test]
    fn location_update_maintains_summaries() {
        let (dataset, landmarks) = small_dataset();
        let mut index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        // Move user 0 to the opposite corner and verify the summaries match
        // a freshly built index over the updated dataset.
        let mut moved = dataset.clone();
        moved.set_location(0, Some(Point::new(0.85, 0.85))).unwrap();
        index
            .update_location(0, Point::new(0.85, 0.85), &landmarks)
            .unwrap();
        let fresh = AisIndex::build(&moved, &landmarks, 3, 2).unwrap();
        for node_id in 0..index.grid().node_count() {
            let node = NodeId(node_id);
            assert_eq!(
                index.summary(node),
                fresh.summary(node),
                "summary mismatch at node {node_id}"
            );
        }
    }

    #[test]
    fn inserting_a_previously_unlocated_user_works() {
        let (dataset, landmarks) = small_dataset();
        let mut index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        assert_eq!(index.grid().len(), 7);
        index
            .update_location(7, Point::new(0.2, 0.2), &landmarks)
            .unwrap();
        assert_eq!(index.grid().len(), 8);
        let leaf = index.grid().leaf_of(Point::new(0.2, 0.2));
        assert!(index.grid().leaf_items(leaf).contains(&7));
        index.remove_user(7, &landmarks).unwrap();
        assert_eq!(index.grid().len(), 7);
    }

    #[test]
    fn spatial_lower_bound_is_zero_inside_the_cell() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        let q = Point::new(0.5, 0.5);
        let leaf = index.grid().leaf_of(q);
        assert_eq!(index.spatial_lower_bound(leaf, q), 0.0);
    }
}
