use crate::{CoreError, GeoSocialDataset, UserId};
use ssrq_graph::LandmarkSet;
use ssrq_spatial::{MultiLevelGrid, NodeId, NodeKind, Point, Rect};
use std::collections::HashMap;

/// The social summary of an index node: for each landmark `j`, the minimum
/// (`m̌[j]`) and maximum (`m̂[j]`) graph distance between any user below the
/// node and that landmark (§5.1).
///
/// An empty node keeps `m̌ = +∞` and `m̂ = −∞`, which makes its social lower
/// bound infinite — empty cells are pruned automatically.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialSummary {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl SocialSummary {
    /// Creates the summary of an empty node for `m` landmarks.
    pub fn empty(m: usize) -> Self {
        SocialSummary {
            min: vec![f64::INFINITY; m],
            max: vec![f64::NEG_INFINITY; m],
        }
    }

    /// Folds one user's landmark-distance vector into the summary.
    pub fn absorb_vector(&mut self, vector: &[f64]) {
        for (j, &d) in vector.iter().enumerate() {
            if d < self.min[j] {
                self.min[j] = d;
            }
            if d > self.max[j] {
                self.max[j] = d;
            }
        }
    }

    /// Folds another summary (e.g. of a child node) into this one.
    pub fn absorb_summary(&mut self, other: &SocialSummary) {
        for j in 0..self.min.len() {
            if other.min[j] < self.min[j] {
                self.min[j] = other.min[j];
            }
            if other.max[j] > self.max[j] {
                self.max[j] = other.max[j];
            }
        }
    }

    /// `m̌[j]`.
    pub fn min_distance(&self, j: usize) -> f64 {
        self.min[j]
    }

    /// `m̂[j]`.
    pub fn max_distance(&self, j: usize) -> f64 {
        self.max[j]
    }

    /// Returns `true` when no user has been folded in.
    ///
    /// The test is `m̂ = −∞`: absorbing any vector raises every `m̂[j]` to at
    /// least the vector's (non-negative, possibly infinite) entry.  Testing
    /// `m̌ = +∞` instead would misclassify a cell whose users are all
    /// unreachable from every landmark (their vectors are all-`∞`, leaving
    /// `m̌ = +∞` but pushing `m̂` to `+∞`) — such a cell is occupied and must
    /// yield bound 0, not `∞`, for a query vertex that also cannot reach the
    /// landmarks.
    pub fn is_empty(&self) -> bool {
        self.max.iter().all(|d| d.is_infinite() && *d < 0.0)
    }

    /// Approximate heap footprint of the summary's two aggregate vectors in
    /// bytes.
    pub fn approx_heap_bytes(&self) -> usize {
        (self.min.capacity() + self.max.capacity()) * std::mem::size_of::<f64>()
    }

    /// The social lower bound `p̌(v_q, C)` of Lemma 2, given the query
    /// user's landmark-distance vector.
    ///
    /// For each landmark `j`:
    /// * if `m_qj < m̌[j]` the bound `m̌[j] − m_qj` applies,
    /// * if `m_qj > m̂[j]` the bound `m_qj − m̂[j]` applies,
    /// * otherwise the landmark yields no information.
    ///
    /// The tightest (largest) bound over all landmarks is returned.
    pub fn lower_bound(&self, query_vector: &[f64]) -> f64 {
        debug_assert_eq!(query_vector.len(), self.min.len());
        let mut best = 0.0_f64;
        for (j, &mqj) in query_vector.iter().enumerate() {
            let bound = if mqj < self.min[j] {
                self.min[j] - mqj
            } else if mqj > self.max[j] {
                mqj - self.max[j]
            } else {
                0.0
            };
            if bound > best {
                best = bound;
            }
        }
        best
    }
}

/// The AIS aggregate index: a multi-level regular grid over user locations
/// with a [`SocialSummary`] attached to every **occupied** node.
///
/// Summaries live in an occupancy-aware layout: a dense `Vec` holds the
/// summaries of occupied nodes only, behind a compact node→slot map, and
/// every unoccupied node shares one static empty summary whose lower bound
/// is infinite — the same infinite-lower-bound fast path the search already
/// uses to prune empty cells, so sparsification is admission-neutral (bounds
/// are bit-identical, never loosened or tightened).  An index over a shard
/// with few residents therefore costs kilobytes instead of the ~2 MiB a
/// dense per-cell layout needs at the default granularity.
#[derive(Debug, Clone)]
pub struct AisIndex {
    grid: MultiLevelGrid,
    /// Slot of each occupied node in `summaries`.
    slots: HashMap<u32, u32>,
    /// Summaries of occupied nodes; slots are recycled via `free_slots` as
    /// cells vacate, so the vector's length tracks the historical maximum of
    /// concurrently occupied nodes.
    summaries: Vec<SocialSummary>,
    /// Slots whose node vacated; reused before the vector grows.
    free_slots: Vec<u32>,
    /// The shared summary of every unoccupied node (`m̌ = +∞`, `m̂ = −∞`).
    empty_summary: SocialSummary,
    num_landmarks: usize,
}

impl AisIndex {
    /// Builds the index over every located user of `dataset`.
    ///
    /// * `branch` — the partitioning granularity `s` (each node has `s × s`
    ///   children).
    /// * `levels` — retained grid levels (the paper's default keeps two).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the spatial substrate.
    pub fn build(
        dataset: &GeoSocialDataset,
        landmarks: &LandmarkSet,
        branch: u32,
        levels: u32,
    ) -> Result<Self, CoreError> {
        // Expand the bounds marginally so boundary points stay strictly
        // inside and the index tolerates small location drifts.
        let bounds = expanded_bounds(dataset.bounds());
        let grid = MultiLevelGrid::bulk_load(bounds, branch, levels, dataset.located_users())?;
        let num_landmarks = landmarks.len();
        let mut index = AisIndex {
            grid,
            slots: HashMap::new(),
            summaries: Vec::new(),
            free_slots: Vec::new(),
            empty_summary: SocialSummary::empty(num_landmarks),
            num_landmarks,
        };
        for top in index.grid.top_nodes().collect::<Vec<_>>() {
            let summary = index.compute_summary(top, landmarks);
            index.set_summary(top, summary);
        }
        Ok(index)
    }

    fn compute_summary(&mut self, node: NodeId, landmarks: &LandmarkSet) -> SocialSummary {
        let mut summary = SocialSummary::empty(self.num_landmarks);
        match self.grid.node_kind(node) {
            NodeKind::Leaf => {
                for &user in self.grid.leaf_items(node) {
                    summary.absorb_vector(landmarks.vector(user));
                }
            }
            NodeKind::Internal => {
                for child in self.grid.children(node) {
                    let child_summary = self.compute_summary(child, landmarks);
                    summary.absorb_summary(&child_summary);
                    self.set_summary(child, child_summary);
                }
            }
        }
        summary
    }

    /// Stores (or clears) the summary of a node.  Empty summaries release
    /// the node's slot — a node that loses its last user goes back to
    /// answering through the shared empty summary and costs nothing.
    ///
    /// "Empty" is [`SocialSummary::is_empty`]'s no-vector-ever-absorbed test
    /// (`m̂ = −∞`), **not** `m̌ = +∞`: a cell whose users all sit at infinite
    /// landmark distance stays materialised, because its stored summary
    /// (`m̂ = +∞`) yields bound 0 for an equally unreachable query vertex
    /// where the shared empty summary would wrongly yield `∞`.
    fn set_summary(&mut self, node: NodeId, summary: SocialSummary) {
        if summary.is_empty() {
            if let Some(slot) = self.slots.remove(&node.0) {
                // Replace the vacated slot's payload with a zero-capacity
                // stub so its landmark vectors are freed immediately.
                self.summaries[slot as usize] = SocialSummary::empty(0);
                self.free_slots.push(slot);
            }
            if self.slots.is_empty() {
                // The last occupied node vacated: release the slot
                // machinery outright so a fully drained index returns to
                // its empty footprint instead of keeping stub capacity.
                self.slots = HashMap::new();
                self.summaries = Vec::new();
                self.free_slots = Vec::new();
            }
            return;
        }
        if let Some(&slot) = self.slots.get(&node.0) {
            self.summaries[slot as usize] = summary;
        } else if let Some(slot) = self.free_slots.pop() {
            self.summaries[slot as usize] = summary;
            self.slots.insert(node.0, slot);
        } else {
            let slot = self.summaries.len() as u32;
            self.summaries.push(summary);
            self.slots.insert(node.0, slot);
        }
    }

    /// The underlying multi-level grid.
    pub fn grid(&self) -> &MultiLevelGrid {
        &self.grid
    }

    /// Number of landmarks per summary.
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Number of grid nodes (across all levels) that currently hold at least
    /// one user below them and therefore carry a materialised summary.
    pub fn occupied_cells(&self) -> usize {
        self.slots.len()
    }

    /// Total number of grid nodes of the geometry, occupied or not.
    pub fn total_cells(&self) -> usize {
        self.grid.node_count() as usize
    }

    /// Fraction of grid nodes carrying a materialised summary (0 for an
    /// index over an empty shard).  This is the ratio the per-shard memory
    /// accounting reports: index bytes are proportional to it, not to the
    /// geometry.
    pub fn occupancy_ratio(&self) -> f64 {
        if self.total_cells() == 0 {
            return 0.0;
        }
        self.occupied_cells() as f64 / self.total_cells() as f64
    }

    /// Approximate heap footprint of the index in bytes: the multi-level
    /// grid, the node→slot map and the summaries of **occupied** nodes only
    /// (unoccupied nodes share one empty summary).  The index aggregates
    /// *locations*, so it is per-shard state in a partitioned deployment —
    /// and these bytes scale with shard occupancy, not with the geometry.
    pub fn approx_heap_bytes(&self) -> usize {
        self.grid.approx_heap_bytes()
            + self.slots.capacity() * (std::mem::size_of::<(u32, u32)>() + 1)
            + self.summaries.capacity() * std::mem::size_of::<SocialSummary>()
            + self.free_slots.capacity() * std::mem::size_of::<u32>()
            + self
                .summaries
                .iter()
                .map(SocialSummary::approx_heap_bytes)
                .sum::<usize>()
            + self.empty_summary.approx_heap_bytes()
    }

    /// The social summary of a node (the shared empty summary for nodes with
    /// no users below them).
    pub fn summary(&self, node: NodeId) -> &SocialSummary {
        match self.slots.get(&node.0) {
            Some(&slot) => &self.summaries[slot as usize],
            None => &self.empty_summary,
        }
    }

    /// The raw (unnormalized) social lower bound `p̌(v_q, C)` for a node
    /// (infinite for unoccupied nodes — the pruning fast path).
    pub fn social_lower_bound(&self, node: NodeId, query_vector: &[f64]) -> f64 {
        self.summary(node).lower_bound(query_vector)
    }

    /// The raw spatial lower bound `ď(u_q, C)` for a node.
    pub fn spatial_lower_bound(&self, node: NodeId, query_location: Point) -> f64 {
        self.grid.node_rect(node).min_distance(query_location)
    }

    /// Moves a user to a new location, maintaining leaf membership and the
    /// social summaries along the affected paths (the update procedure of
    /// §5.1: a move is a deletion from the old cell plus an insertion into
    /// the new one; summaries are recomputed and propagated upward).
    pub fn update_location(
        &mut self,
        user: UserId,
        location: Point,
        landmarks: &LandmarkSet,
    ) -> Result<(), CoreError> {
        if self.grid.position(user).is_some() {
            let (old_leaf, new_leaf) = self.grid.update(user, location)?;
            if old_leaf != new_leaf {
                self.rebuild_path(old_leaf, landmarks);
                self.rebuild_path(new_leaf, landmarks);
            }
        } else {
            let leaf = self.grid.insert(user, location);
            self.rebuild_path(leaf, landmarks);
        }
        Ok(())
    }

    /// Removes a user (e.g. one whose location became unknown), updating the
    /// summaries along its former path.
    pub fn remove_user(&mut self, user: UserId, landmarks: &LandmarkSet) -> Result<(), CoreError> {
        let leaf = self.grid.remove(user)?;
        self.rebuild_path(leaf, landmarks);
        Ok(())
    }

    /// Recomputes the summary of a leaf from its users, then refreshes every
    /// ancestor from its children.
    fn rebuild_path(&mut self, leaf: NodeId, landmarks: &LandmarkSet) {
        let mut summary = SocialSummary::empty(self.num_landmarks);
        for &user in self.grid.leaf_items(leaf) {
            summary.absorb_vector(landmarks.vector(user));
        }
        self.set_summary(leaf, summary);
        let ancestors = self.grid.ancestors(leaf);
        for node in ancestors.into_iter().skip(1) {
            let mut summary = SocialSummary::empty(self.num_landmarks);
            for child in self.grid.children(node) {
                summary.absorb_summary(self.summary(child));
            }
            self.set_summary(node, summary);
        }
    }
}

fn expanded_bounds(bounds: Rect) -> Rect {
    let margin = (bounds.width().max(bounds.height()) * 1e-6).max(1e-9);
    bounds.expanded(margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::{dijkstra_all, GraphBuilder, LandmarkSelection, SocialGraph};

    fn small_dataset() -> (GeoSocialDataset, LandmarkSet) {
        // A ring of 8 users with unit weights, located on a 3x3-ish layout.
        let graph: SocialGraph =
            GraphBuilder::from_edges(8, (0..8).map(|i| (i as u32, ((i + 1) % 8) as u32, 1.0)))
                .unwrap();
        let locations = vec![
            Some(Point::new(0.1, 0.1)),
            Some(Point::new(0.9, 0.1)),
            Some(Point::new(0.5, 0.5)),
            Some(Point::new(0.1, 0.9)),
            Some(Point::new(0.9, 0.9)),
            Some(Point::new(0.3, 0.7)),
            Some(Point::new(0.7, 0.3)),
            None,
        ];
        let landmarks = LandmarkSet::build(&graph, 2, LandmarkSelection::FarthestFirst, 7).unwrap();
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        (dataset, landmarks)
    }

    #[test]
    fn summary_lower_bound_is_valid_for_every_cell() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        // For every query user and every node, the social lower bound must
        // not exceed the true distance to any user stored below the node.
        for q in 0..8u32 {
            let truth = dijkstra_all(dataset.graph(), q);
            let qvec: Vec<f64> = landmarks.vector(q).to_vec();
            for node_id in 0..index.grid().node_count() {
                let node = NodeId(node_id);
                let bound = index.social_lower_bound(node, &qvec);
                let mut users: Vec<UserId> = Vec::new();
                collect_users(&index, node, &mut users);
                for u in users {
                    assert!(
                        bound <= truth[u as usize] + 1e-9,
                        "node {node_id}: bound {bound} exceeds d({q},{u}) = {}",
                        truth[u as usize]
                    );
                }
            }
        }
    }

    fn collect_users(index: &AisIndex, node: NodeId, out: &mut Vec<UserId>) {
        match index.grid().node_kind(node) {
            NodeKind::Leaf => out.extend_from_slice(index.grid().leaf_items(node)),
            NodeKind::Internal => {
                for child in index.grid().children(node) {
                    collect_users(index, child, out);
                }
            }
        }
    }

    #[test]
    fn empty_cells_get_infinite_bound() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        let qvec: Vec<f64> = landmarks.vector(0).to_vec();
        let mut found_empty = false;
        for node_id in 0..index.grid().node_count() {
            let node = NodeId(node_id);
            if index.grid().node_kind(node) == NodeKind::Leaf
                && index.grid().leaf_items(node).is_empty()
            {
                found_empty = true;
                assert!(index.social_lower_bound(node, &qvec).is_infinite());
                assert!(index.summary(node).is_empty());
            }
        }
        assert!(found_empty, "expected at least one empty leaf cell");
    }

    #[test]
    fn internal_summaries_cover_children() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        for top in index.grid().top_nodes() {
            let parent = index.summary(top);
            for child in index.grid().children(top) {
                let child_summary = index.summary(child);
                for j in 0..index.num_landmarks() {
                    if !child_summary.is_empty() {
                        assert!(parent.min_distance(j) <= child_summary.min_distance(j));
                        assert!(parent.max_distance(j) >= child_summary.max_distance(j));
                    }
                }
            }
        }
    }

    #[test]
    fn paper_figure4_example_bound() {
        // Figure 4 of the paper: cell containing v3, v4, v5 with distances
        // 4, 3, 1 to the single landmark; the query vertex v1 is at distance
        // 0 from the landmark... the paper derives p̌ = 1 for a query at
        // landmark distance 0.  Reproduce with a hand-built summary.
        let mut summary = SocialSummary::empty(1);
        summary.absorb_vector(&[4.0]);
        summary.absorb_vector(&[3.0]);
        summary.absorb_vector(&[1.0]);
        assert_eq!(summary.min_distance(0), 1.0);
        assert_eq!(summary.max_distance(0), 4.0);
        assert_eq!(summary.lower_bound(&[0.0]), 1.0);
        // A query vertex between min and max yields no bound.
        assert_eq!(summary.lower_bound(&[2.0]), 0.0);
        // A query vertex beyond the max yields mqj - max.
        assert_eq!(summary.lower_bound(&[6.0]), 2.0);
    }

    #[test]
    fn location_update_maintains_summaries() {
        let (dataset, landmarks) = small_dataset();
        let mut index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        // Move user 0 to the opposite corner and verify the summaries match
        // a freshly built index over the updated dataset.
        let mut moved = dataset.clone();
        moved.set_location(0, Some(Point::new(0.85, 0.85))).unwrap();
        index
            .update_location(0, Point::new(0.85, 0.85), &landmarks)
            .unwrap();
        let fresh = AisIndex::build(&moved, &landmarks, 3, 2).unwrap();
        for node_id in 0..index.grid().node_count() {
            let node = NodeId(node_id);
            assert_eq!(
                index.summary(node),
                fresh.summary(node),
                "summary mismatch at node {node_id}"
            );
        }
    }

    #[test]
    fn inserting_a_previously_unlocated_user_works() {
        let (dataset, landmarks) = small_dataset();
        let mut index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        assert_eq!(index.grid().len(), 7);
        index
            .update_location(7, Point::new(0.2, 0.2), &landmarks)
            .unwrap();
        assert_eq!(index.grid().len(), 8);
        let leaf = index.grid().leaf_of(Point::new(0.2, 0.2));
        assert!(index.grid().leaf_items(leaf).contains(&7));
        index.remove_user(7, &landmarks).unwrap();
        assert_eq!(index.grid().len(), 7);
    }

    #[test]
    fn summaries_are_materialised_only_for_occupied_nodes() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 10, 2).unwrap();
        // 7 located users in a 100 + 10,000 node geometry: at most
        // 7 leaves + 7 level-0 parents can be occupied.
        assert_eq!(index.total_cells(), 10_100);
        assert!(index.occupied_cells() <= 14);
        assert!(index.occupancy_ratio() < 0.002);
        // The footprint reflects occupancy, not geometry: far below the
        // ~2 MiB a dense summary-per-cell layout would cost here.
        assert!(index.approx_heap_bytes() < 16 * 1024);
    }

    #[test]
    fn fully_migrated_index_returns_to_empty_footprint() {
        let (dataset, landmarks) = small_dataset();
        let mut index = AisIndex::build(&dataset, &landmarks, 10, 2).unwrap();
        assert!(index.occupied_cells() > 0);
        // Migrate every resident away (the shard-drain scenario).
        for u in 0..7u32 {
            index.remove_user(u, &landmarks).unwrap();
        }
        assert_eq!(index.grid().len(), 0);
        assert_eq!(index.occupied_cells(), 0);
        assert_eq!(index.occupancy_ratio(), 0.0);
        // Every node now answers through the shared empty summary.
        let qvec: Vec<f64> = landmarks.vector(0).to_vec();
        for node_id in 0..index.grid().node_count() {
            assert!(index
                .social_lower_bound(NodeId(node_id), &qvec)
                .is_infinite());
        }
        assert!(index.approx_heap_bytes() < 16 * 1024);
        // Cells re-occupy correctly after a drain: slots are recycled.
        index
            .update_location(3, Point::new(0.4, 0.4), &landmarks)
            .unwrap();
        assert!(index.occupied_cells() > 0);
        let leaf = index.grid().leaf_of(Point::new(0.4, 0.4));
        assert!(!index.summary(leaf).is_empty());
    }

    #[test]
    fn landmark_unreachable_cells_stay_materialised_with_zero_bound() {
        // Two components: {0, 1} holds the landmarks, {2, 3} is unreachable
        // from them, so vertices 2 and 3 have all-infinite landmark vectors.
        // The cell storing them must NOT be treated as empty: for a query
        // vertex that also cannot reach the landmarks (vertex 2 querying
        // towards 3) the bound must be 0 (no information), never infinite —
        // an infinite bound would wrongly prune a reachable candidate.
        let graph: SocialGraph =
            GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let landmarks = LandmarkSet::build(&graph, 2, LandmarkSelection::FarthestFirst, 1).unwrap();
        let locations = vec![
            Some(Point::new(0.1, 0.1)),
            Some(Point::new(0.2, 0.2)),
            Some(Point::new(0.8, 0.8)),
            Some(Point::new(0.85, 0.85)),
        ];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let index = AisIndex::build(&dataset, &landmarks, 4, 2).unwrap();
        // Landmarks live in one component; at least one of vertices 2/3 has
        // an all-infinite vector exactly when the landmarks are in {0, 1}.
        let far_vec: Vec<f64> = landmarks.vector(2).to_vec();
        if far_vec.iter().all(|d| d.is_infinite()) {
            let leaf = index.grid().leaf_of(Point::new(0.85, 0.85));
            assert!(!index.summary(leaf).is_empty());
            // Unreachable query vertex: no landmark information, bound 0.
            assert_eq!(index.social_lower_bound(leaf, &far_vec), 0.0);
            // Reachable query vertex: the cell is provably in another
            // component, so an infinite bound is correct there.
            let near_vec: Vec<f64> = landmarks.vector(0).to_vec();
            assert!(index.social_lower_bound(leaf, &near_vec).is_infinite());
        }
    }

    #[test]
    fn spatial_lower_bound_is_zero_inside_the_cell() {
        let (dataset, landmarks) = small_dataset();
        let index = AisIndex::build(&dataset, &landmarks, 3, 2).unwrap();
        let q = Point::new(0.5, 0.5);
        let leaf = index.grid().leaf_of(q);
        assert_eq!(index.spatial_lower_bound(leaf, q), 0.0);
    }
}
