use crate::{GeoSocialDataset, QueryRequest, UserId};
use ssrq_spatial::Point;

/// Combines a normalized social distance and a normalized spatial distance
/// into the SSRQ ranking value `f = α · p + (1 − α) · d` (Equation 1 of the
/// paper).
///
/// Either input may be `f64::INFINITY` (socially unreachable user or missing
/// location); since both coefficients are positive for the supported `α`
/// range, the result is then infinite as well and the user can never enter a
/// top-k result.
#[inline]
pub fn combine(alpha: f64, social_norm: f64, spatial_norm: f64) -> f64 {
    alpha * social_norm + (1.0 - alpha) * spatial_norm
}

/// Per-query helper bundling the dataset, the query user and `α`, and
/// exposing the normalized distance/ranking computations every algorithm
/// needs.
///
/// All algorithm implementations go through this type so that normalization
/// and the handling of missing locations stay consistent.
#[derive(Debug, Clone, Copy)]
pub struct RankingContext<'a> {
    dataset: &'a GeoSocialDataset,
    query_user: UserId,
    /// The resolved spatial origin (request override, else the stored
    /// location); `None` when neither exists — every spatial distance is
    /// then infinite.
    origin: Option<Point>,
    alpha: f64,
}

impl<'a> RankingContext<'a> {
    /// Creates a ranking context for one query, resolving the spatial
    /// origin once (see [`QueryRequest::resolved_origin`]).
    pub fn new(dataset: &'a GeoSocialDataset, request: &QueryRequest) -> Self {
        RankingContext {
            dataset,
            query_user: request.user(),
            origin: request.resolved_origin(dataset),
            alpha: request.alpha(),
        }
    }

    /// The dataset the context refers to.
    pub fn dataset(&self) -> &'a GeoSocialDataset {
        self.dataset
    }

    /// The query user `u_q`.
    pub fn query_user(&self) -> UserId {
        self.query_user
    }

    /// The preference parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The resolved spatial origin of the query.
    pub fn origin(&self) -> Option<Point> {
        self.origin
    }

    /// Normalized spatial distance between the query origin and `other`
    /// (`INFINITY` when either location is missing).
    #[inline]
    pub fn spatial(&self, other: UserId) -> f64 {
        match (self.origin, self.dataset.location(other)) {
            (Some(origin), Some(p)) => origin.distance(p) / self.dataset.spatial_norm(),
            _ => f64::INFINITY,
        }
    }

    /// Normalizes a raw social distance.
    #[inline]
    pub fn normalize_social(&self, raw: f64) -> f64 {
        self.dataset.normalize_social(raw)
    }

    /// Normalizes a raw spatial distance.
    #[inline]
    pub fn normalize_spatial(&self, raw: f64) -> f64 {
        self.dataset.normalize_spatial(raw)
    }

    /// Ranking value from a *raw* social distance and the stored locations.
    #[inline]
    pub fn score_from_raw_social(&self, other: UserId, raw_social: f64) -> (f64, f64, f64) {
        let social = self.normalize_social(raw_social);
        let spatial = self.spatial(other);
        (combine(self.alpha, social, spatial), social, spatial)
    }

    /// Ranking value from already-normalized distances.
    #[inline]
    pub fn score(&self, social_norm: f64, spatial_norm: f64) -> f64 {
        combine(self.alpha, social_norm, spatial_norm)
    }

    /// Lower bound on `f` given lower bounds on the two normalized
    /// distances.
    #[inline]
    pub fn score_lower_bound(&self, social_lb: f64, spatial_lb: f64) -> f64 {
        combine(self.alpha, social_lb, spatial_lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;

    fn dataset() -> GeoSocialDataset {
        let graph = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let locations = vec![Some(Point::new(0.0, 0.0)), Some(Point::new(1.0, 0.0)), None];
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn combine_is_a_convex_combination() {
        assert_eq!(combine(0.0, 5.0, 3.0), 3.0);
        assert_eq!(combine(1.0, 5.0, 3.0), 5.0);
        assert_eq!(combine(0.5, 4.0, 2.0), 3.0);
    }

    #[test]
    fn combine_propagates_infinity() {
        assert!(combine(0.3, f64::INFINITY, 0.2).is_infinite());
        assert!(combine(0.3, 0.2, f64::INFINITY).is_infinite());
    }

    #[test]
    fn context_normalizes_both_domains() {
        let ds = dataset();
        let request = QueryRequest::for_user(0).k(1).alpha(0.5).build().unwrap();
        let ctx = RankingContext::new(&ds, &request);
        assert_eq!(ctx.query_user(), 0);
        assert_eq!(ctx.alpha(), 0.5);
        // User 1: raw social 1.0 of diameter 2.0 -> 0.5; raw spatial 1.0 of
        // diagonal 1.0 -> 1.0.
        let (f, social, spatial) = ctx.score_from_raw_social(1, 1.0);
        assert!((social - 0.5).abs() < 1e-12);
        assert!((spatial - 1.0).abs() < 1e-12);
        assert!((f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn missing_location_gives_infinite_score() {
        let ds = dataset();
        let request = QueryRequest::for_user(0).k(1).alpha(0.5).build().unwrap();
        let ctx = RankingContext::new(&ds, &request);
        let (f, _, spatial) = ctx.score_from_raw_social(2, 2.0);
        assert!(spatial.is_infinite());
        assert!(f.is_infinite());
    }

    #[test]
    fn score_lower_bound_matches_score_for_exact_inputs() {
        let ds = dataset();
        let request = QueryRequest::for_user(0).k(1).alpha(0.3).build().unwrap();
        let ctx = RankingContext::new(&ds, &request);
        assert_eq!(ctx.score(0.4, 0.6), ctx.score_lower_bound(0.4, 0.6));
        assert!(ctx.score_lower_bound(0.0, 0.0) <= ctx.score(0.4, 0.6));
    }
}
