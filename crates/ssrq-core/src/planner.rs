//! The adaptive query planner behind [`Algorithm::Auto`].
//!
//! The twelve paper algorithms return the exact same answer for the same
//! request, but their costs swing 2–3.5× with `k`, filter selectivity,
//! the query user's social neighbourhood and which auxiliary indexes are
//! installed.  [`QueryPlanner`] exploits the exactness guarantee: since
//! *any* algorithm is correct, choosing one per query is purely a
//! performance decision, made from two inputs:
//!
//! 1. **Cheap signals**, folded into a coarse [`SignalBucket`]: the
//!    requested `k`, the area of the spatial filter window relative to the
//!    dataset bounds, and the query user's social degree.  The candidate
//!    set itself is derived from which indexes are *already installed*
//!    (Contraction Hierarchies, social neighbour cache) — the planner
//!    never triggers a lazy index build — and the heuristic prior also
//!    weighs `α` and the AIS grid occupancy.
//! 2. **Online feedback**: a per-`(bucket, algorithm)` EWMA over the
//!    [`QueryStats`] work counters (`runtime`, `relaxed_edges`,
//!    `evaluated_users`) of completed queries, so the planner converges on
//!    the empirically-fastest choice for the live workload.  Each bucket
//!    first tries every candidate once (in prior order) and thereafter
//!    re-probes the least-sampled candidate periodically, so a shifting
//!    workload is re-learned.
//!
//! # Hot-result cache
//!
//! The planner layers a per-user hot-result cache over the choice logic:
//! a repeated identical request (same user, `k`, `α`, origin and filters)
//! is answered from the cache in microseconds.  Location churn invalidates
//! **only the entries whose result could actually change**, using a
//! score-delta admission test: when user `u` moves to point `q`, a cached
//! entry with spatial origin `o`, preference `α` and top-k threshold `f_k`
//! can only change if `u` was the (derived-origin) query user, appears in
//! the cached result, or could newly enter it — and `u` can enter only if
//! its spatial-only score lower bound `(1 − α) · d(o, q)` does not exceed
//! the entry's admission bound (`f_k` for a full result, the `max_score`
//! cutoff — or nothing — for a truncated one), and only if `q` lies inside
//! the entry's filter window.  Social distances never change under
//! location churn (the PR 4 staleness audit), so this test is exact up to
//! conservativeness: the churn property test asserts a cached answer is
//! never stale.
//!
//! The planner is engine-local state: cloning a [`GeoSocialEngine`] gives
//! the clone a **fresh** planner, because clones' location vectors diverge
//! independently and a shared cache could serve answers from the sibling's
//! world.

use crate::driver::{EagerDriver, QueryDriver, StepOutcome};
use crate::{
    Algorithm, AlgorithmStrategy, CoreError, GeoSocialDataset, GeoSocialEngine, IndexRequirements,
    QueryContext, QueryRequest, QueryResult, QueryStats, RankedUser, UserId,
};
use ssrq_spatial::Point;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The name the planner strategy is registered under — also
/// [`Algorithm::Auto`]'s [`Algorithm::name`].
pub const AUTO_STRATEGY_NAME: &str = "AUTO";

/// Tuning knobs of a [`QueryPlanner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Weight of the newest observation in the per-`(bucket, algorithm)`
    /// EWMA (`new = w · sample + (1 − w) · old`).
    pub ewma_weight: f64,
    /// After every candidate has at least one sample, every
    /// `explore_period`-th decision in a bucket re-probes the
    /// least-sampled candidate instead of the cheapest one, so the EWMA
    /// tracks workload shifts.  `0` disables re-exploration.
    pub explore_period: u64,
    /// Maximum number of hot results kept (least-recently-used eviction);
    /// `0` disables the cache entirely.
    pub cache_capacity: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            ewma_weight: 0.3,
            explore_period: 32,
            cache_capacity: 1024,
        }
    }
}

/// Why the planner picked an algorithm for one query — the `reason` label
/// of the `ssrq_planner_choices_total` metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoiceReason {
    /// A test/operator pin forced the choice ([`QueryPlanner::pin`]).
    Pinned,
    /// Cold start: the signal-based prior picked, no feedback yet.
    Heuristic,
    /// Deliberate probe of an untried or under-sampled candidate.
    Explore,
    /// The per-bucket EWMA cost model picked the cheapest candidate.
    Feedback,
}

impl ChoiceReason {
    /// The metric-label spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChoiceReason::Pinned => "pinned",
            ChoiceReason::Heuristic => "heuristic",
            ChoiceReason::Explore => "explore",
            ChoiceReason::Feedback => "feedback",
        }
    }
}

/// Coarse signal bucket a query is classified into; the EWMA feedback is
/// keyed per bucket so "cheapest algorithm" can differ between, say, tiny
/// filtered queries and large unfiltered ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalBucket {
    /// Result size class: 0 (`k ≤ 1`), 1 (`k ≤ 10`), 2 (`k ≤ 50`), 3.
    pub k: u8,
    /// Spatial filter class: 0 = no window, 1 = selective window
    /// (≤ 5 % of the dataset bounds' area), 2 = wide window.
    pub rect: u8,
    /// Query-user social degree class: 0 (`deg ≤ 8`), 1 (`deg ≤ 64`), 2.
    pub degree: u8,
}

impl SignalBucket {
    fn classify(engine: &GeoSocialEngine, request: &QueryRequest) -> SignalBucket {
        let k = match request.k() {
            0..=1 => 0,
            2..=10 => 1,
            11..=50 => 2,
            _ => 3,
        };
        let rect = match rect_area_ratio(engine, request) {
            None => 0,
            Some(ratio) if ratio <= 0.05 => 1,
            Some(_) => 2,
        };
        let deg = engine.dataset().graph().degree(request.user());
        let degree = match deg {
            0..=8 => 0,
            9..=64 => 1,
            _ => 2,
        };
        SignalBucket { k, rect, degree }
    }
}

/// Area of the request's filter window relative to the dataset bounds
/// (`None` without a window; clamped to `[0, 1]`).
fn rect_area_ratio(engine: &GeoSocialEngine, request: &QueryRequest) -> Option<f64> {
    let rect = request.within()?;
    let bounds_area = engine.dataset().bounds().area();
    if bounds_area <= 0.0 {
        return Some(1.0);
    }
    Some((rect.area() / bounds_area).clamp(0.0, 1.0))
}

/// EWMA over the work counters of one `(bucket, algorithm)` cell.
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    runtime_ns: f64,
    relaxed_edges: f64,
    evaluated_users: f64,
    samples: u64,
}

impl Ewma {
    fn observe(&mut self, weight: f64, stats: &QueryStats) {
        let runtime = stats.runtime.as_nanos() as f64;
        let relaxed = stats.relaxed_edges as f64;
        let evaluated = stats.evaluated_users as f64;
        if self.samples == 0 {
            self.runtime_ns = runtime;
            self.relaxed_edges = relaxed;
            self.evaluated_users = evaluated;
        } else {
            self.runtime_ns += weight * (runtime - self.runtime_ns);
            self.relaxed_edges += weight * (relaxed - self.relaxed_edges);
            self.evaluated_users += weight * (evaluated - self.evaluated_users);
        }
        self.samples += 1;
    }

    /// Scalar cost the planner minimizes.  Wall time dominates; the work
    /// counters act as a deterministic tie-break when the clock granularity
    /// makes sub-microsecond candidates indistinguishable.
    fn cost(&self) -> f64 {
        self.runtime_ns + self.relaxed_edges + 4.0 * self.evaluated_users
    }
}

#[derive(Debug, Default)]
struct BucketState {
    per_algorithm: HashMap<Algorithm, Ewma>,
    decisions: u64,
}

#[derive(Debug, Default)]
struct PlannerState {
    buckets: HashMap<SignalBucket, BucketState>,
    pinned: Option<Algorithm>,
    choice_counts: HashMap<(Algorithm, ChoiceReason), u64>,
}

/// Identity of a request as a cache key: everything that determines the
/// exact answer except the algorithm (all algorithms agree) — user, `k`,
/// `α`, the explicit origin override and every admissibility filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    user: UserId,
    k: usize,
    alpha: u64,
    origin: Option<(u64, u64)>,
    within: Option<(u64, u64, u64, u64)>,
    exclude: Vec<UserId>,
    max_score: Option<u64>,
}

impl CacheKey {
    fn of(request: &QueryRequest) -> CacheKey {
        let mut exclude: Vec<UserId> = request.excluded().iter().copied().collect();
        exclude.sort_unstable();
        CacheKey {
            user: request.user(),
            k: request.k(),
            alpha: request.alpha().to_bits(),
            origin: request.origin().map(|p| (p.x.to_bits(), p.y.to_bits())),
            within: request.within().map(|r| {
                (
                    r.min.x.to_bits(),
                    r.min.y.to_bits(),
                    r.max.x.to_bits(),
                    r.max.y.to_bits(),
                )
            }),
            exclude,
            max_score: request.max_score().map(f64::to_bits),
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// The request this entry answers (identity fields only matter).
    request: QueryRequest,
    /// The spatial origin the result was evaluated from, resolved at
    /// admission time (explicit override, else the query user's stored
    /// location — `None` when neither existed).
    origin: Option<Point>,
    result: QueryResult,
    /// Score a new entrant must stay *under* to change the result: `f_k`
    /// when the result is full, else the `max_score` cutoff (or `+∞`).
    bound: f64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<CacheKey, CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Aggregated planner introspection, for tests and the bench harness.
#[derive(Debug, Clone, Default)]
pub struct PlannerSnapshot {
    /// `(algorithm name, reason, count)` of every planner decision so far.
    pub choices: Vec<(String, &'static str, u64)>,
    /// Number of signal buckets with recorded feedback.
    pub buckets: usize,
    /// Hot-result cache hits served.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Entries dropped by churn-aware invalidation.
    pub cache_invalidations: u64,
    /// Entries currently cached.
    pub cache_len: usize,
}

impl PlannerSnapshot {
    /// Total number of planner decisions recorded.
    pub fn decisions(&self) -> u64 {
        self.choices.iter().map(|(_, _, n)| n).sum()
    }

    /// Decisions that chose `algorithm`.
    pub fn choices_for(&self, algorithm: Algorithm) -> u64 {
        let name = algorithm.name();
        self.choices
            .iter()
            .filter(|(a, _, _)| a == name)
            .map(|(_, _, n)| n)
            .sum()
    }
}

/// The adaptive planner state: per-bucket EWMA cost model, choice
/// counters, pin, and the churn-aware hot-result cache.  One instance per
/// [`GeoSocialEngine`] (see [`GeoSocialEngine::planner`]); all methods
/// take `&self` (interior mutability) so the planner serves the parallel
/// batch path.
#[derive(Debug)]
pub struct QueryPlanner {
    config: PlannerConfig,
    /// Live cache capacity; starts at `config.cache_capacity` and is
    /// adjustable at runtime via [`QueryPlanner::set_cache_capacity`].
    effective_capacity: AtomicUsize,
    state: Mutex<PlannerState>,
    cache: Mutex<CacheState>,
}

impl Default for QueryPlanner {
    fn default() -> Self {
        QueryPlanner::new(PlannerConfig::default())
    }
}

impl QueryPlanner {
    /// A fresh planner with the given tuning knobs.
    pub fn new(config: PlannerConfig) -> QueryPlanner {
        QueryPlanner {
            config,
            effective_capacity: AtomicUsize::new(config.cache_capacity),
            state: Mutex::new(PlannerState::default()),
            cache: Mutex::new(CacheState::default()),
        }
    }

    /// The planner's configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// Forces every subsequent decision to `algorithm` (`None` restores
    /// adaptive choice).  The agreement tests use this to steer `Auto`
    /// through each concrete candidate; a pinned choice bypasses the
    /// candidate filter, so pinning an algorithm whose index is missing
    /// surfaces the usual [`CoreError::MissingIndex`].
    pub fn pin(&self, algorithm: Option<Algorithm>) {
        self.state.lock().unwrap().pinned = algorithm;
    }

    /// Replaces the hot-result cache capacity (`0` disables caching) and
    /// drops entries beyond the new bound.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.effective_capacity.store(capacity, Ordering::Relaxed);
        let mut cache = self.cache.lock().unwrap();
        while cache.entries.len() > capacity {
            evict_lru(&mut cache.entries);
        }
    }

    /// Number of currently cached hot results.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().entries.len()
    }

    /// A copy of the planner's decision and cache counters.
    pub fn snapshot(&self) -> PlannerSnapshot {
        let state = self.state.lock().unwrap();
        let cache = self.cache.lock().unwrap();
        let mut choices: Vec<(String, &'static str, u64)> = state
            .choice_counts
            .iter()
            .map(|(&(algorithm, reason), &n)| (algorithm.name().to_owned(), reason.as_str(), n))
            .collect();
        choices.sort();
        PlannerSnapshot {
            choices,
            buckets: state.buckets.len(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_invalidations: cache.invalidations,
            cache_len: cache.entries.len(),
        }
    }

    /// The concrete algorithms the planner may delegate to on `engine`:
    /// the seven index-free methods, the `*-CH` trio when a Contraction
    /// Hierarchies index is **already installed or built** (the planner
    /// never triggers a lazy build), and the cached method when the social
    /// neighbour cache exists.  The exhaustive oracle is excluded — it is
    /// never competitive — but reachable through [`QueryPlanner::pin`].
    pub fn candidates(engine: &GeoSocialEngine) -> Vec<Algorithm> {
        let mut candidates = vec![
            Algorithm::Ais,
            Algorithm::AisMinus,
            Algorithm::AisBid,
            Algorithm::TsaQc,
            Algorithm::Tsa,
            Algorithm::Spa,
            Algorithm::Sfa,
        ];
        if engine.contraction_hierarchy().is_some() {
            candidates.extend([Algorithm::SfaCh, Algorithm::SpaCh, Algorithm::TsaCh]);
        }
        if engine.social_cache().is_some() {
            candidates.push(Algorithm::SfaCached);
        }
        candidates
    }

    /// Picks the algorithm for one query and records the decision (and its
    /// `ssrq_planner_choices_total{algorithm,reason}` metric sample).
    pub fn choose(
        &self,
        engine: &GeoSocialEngine,
        request: &QueryRequest,
    ) -> (Algorithm, ChoiceReason, SignalBucket) {
        let bucket = SignalBucket::classify(engine, request);
        let mut state = self.state.lock().unwrap();
        let (algorithm, reason) = if let Some(pinned) = state.pinned {
            (pinned, ChoiceReason::Pinned)
        } else {
            let mut candidates = QueryPlanner::candidates(engine);
            let occupancy = grid_occupancy(engine);
            candidates.sort_by(|&a, &b| {
                prior_rank(a, engine, request, occupancy)
                    .total_cmp(&prior_rank(b, engine, request, occupancy))
            });
            let bucket_state = state.buckets.entry(bucket).or_default();
            bucket_state.decisions += 1;
            let samples =
                |s: &BucketState, a: Algorithm| s.per_algorithm.get(&a).map_or(0, |e| e.samples);
            if bucket_state.decisions == 1 {
                // Cold start: the signal prior alone decides.
                (candidates[0], ChoiceReason::Heuristic)
            } else if let Some(&untried) =
                candidates.iter().find(|&&a| samples(bucket_state, a) == 0)
            {
                // Give every candidate one sample, cheapest prior first.
                (untried, ChoiceReason::Explore)
            } else if self.config.explore_period > 0
                && bucket_state
                    .decisions
                    .is_multiple_of(self.config.explore_period)
            {
                let least = candidates
                    .iter()
                    .copied()
                    .min_by_key(|&a| samples(bucket_state, a))
                    .expect("candidate set is never empty");
                (least, ChoiceReason::Explore)
            } else {
                let best = candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let cost = |x: Algorithm| {
                            bucket_state
                                .per_algorithm
                                .get(&x)
                                .map_or(f64::INFINITY, Ewma::cost)
                        };
                        cost(a).total_cmp(&cost(b))
                    })
                    .expect("candidate set is never empty");
                (best, ChoiceReason::Feedback)
            }
        };
        *state.choice_counts.entry((algorithm, reason)).or_insert(0) += 1;
        drop(state);
        crate::obs::record_planner_choice(algorithm.name(), reason.as_str());
        (algorithm, reason, bucket)
    }

    /// Feeds one completed query back into the `(bucket, algorithm)` EWMA.
    pub fn record_feedback(&self, bucket: SignalBucket, algorithm: Algorithm, stats: &QueryStats) {
        let mut state = self.state.lock().unwrap();
        state
            .buckets
            .entry(bucket)
            .or_default()
            .per_algorithm
            .entry(algorithm)
            .or_default()
            .observe(self.config.ewma_weight, stats);
    }

    /// Looks the request up in the hot-result cache, counting the hit or
    /// miss.  A hit returns a clone of the cached result (its `stats` are
    /// the original computation's; the serving strategy replaces them).
    pub fn cache_lookup(&self, request: &QueryRequest) -> Option<QueryResult> {
        if self.capacity() == 0 {
            return None;
        }
        let key = CacheKey::of(request);
        let mut cache = self.cache.lock().unwrap();
        cache.tick += 1;
        let tick = cache.tick;
        match cache.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let result = entry.result.clone();
                cache.hits += 1;
                drop(cache);
                crate::obs::record_cache_event("hit", 1);
                Some(result)
            }
            None => {
                cache.misses += 1;
                drop(cache);
                crate::obs::record_cache_event("miss", 1);
                None
            }
        }
    }

    /// Admits a freshly computed result.  Degraded results are never
    /// cached (their identity depends on how far the stream was driven).
    pub fn cache_admit(&self, request: &QueryRequest, origin: Option<Point>, result: &QueryResult) {
        let capacity = self.capacity();
        if capacity == 0 || result.degraded {
            return;
        }
        let bound = if result.ranked.len() >= request.k() {
            result.fk().unwrap_or(f64::INFINITY)
        } else {
            request.max_score().unwrap_or(f64::INFINITY)
        };
        let key = CacheKey::of(request);
        let mut cache = self.cache.lock().unwrap();
        cache.tick += 1;
        let entry = CacheEntry {
            request: request.clone(),
            origin,
            result: result.clone(),
            bound,
            last_used: cache.tick,
        };
        cache.entries.insert(key, entry);
        while cache.entries.len() > capacity {
            evict_lru(&mut cache.entries);
        }
    }

    /// Churn hook: `user` moved to `location` (or lost its location when
    /// `None`).  Drops exactly the entries whose result could change; see
    /// the module docs for the admission test.  `dataset` provides the
    /// spatial normalization so the score lower bound matches what the
    /// algorithms would compute.
    pub fn note_location_change(
        &self,
        user: UserId,
        location: Option<Point>,
        dataset: &GeoSocialDataset,
    ) {
        if self.capacity() == 0 {
            return;
        }
        let mut cache = self.cache.lock().unwrap();
        let before = cache.entries.len();
        cache
            .entries
            .retain(|_, entry| entry_survives_churn(entry, user, location, dataset));
        let dropped = (before - cache.entries.len()) as u64;
        cache.invalidations += dropped;
        drop(cache);
        if dropped > 0 {
            crate::obs::record_cache_event("invalidation", dropped);
        }
    }

    fn capacity(&self) -> usize {
        self.effective_capacity.load(Ordering::Relaxed)
    }
}

/// Returns `true` when the cached entry provably cannot change because
/// `user` moved to `location` (`None` = location removed).
fn entry_survives_churn(
    entry: &CacheEntry,
    user: UserId,
    location: Option<Point>,
    dataset: &GeoSocialDataset,
) -> bool {
    // The query user moved and the entry's origin was derived from their
    // stored location: every spatial distance in the result changes.
    if entry.request.user() == user && entry.request.origin().is_none() {
        return false;
    }
    // The mover is in the cached result: its own score changed (or it left
    // the spatial domain / the filter window).
    if entry.result.ranked.iter().any(|r| r.user == user) {
        return false;
    }
    // From here on the question is only whether the mover could *enter*
    // the cached result.
    if entry.request.user() == user {
        // Explicit-origin entry of the mover's own query: the query user
        // never appears in its own result and the origin is pinned.
        return true;
    }
    if entry.request.excluded().contains(&user) {
        return true;
    }
    let Some(location) = location else {
        // Removal: the mover's spatial distance becomes infinite; a user
        // that was not in the result cannot enter by disappearing.
        return true;
    };
    if let Some(rect) = entry.request.within() {
        if !rect.contains(location) {
            return true;
        }
    }
    let Some(origin) = entry.origin else {
        // No origin at all: every candidate's spatial distance is infinite
        // and every score is infinite — the mover's stays so too.
        return true;
    };
    // Score lower bound of the mover at its new location: the social term
    // is non-negative, so f ≥ (1 − α) · d.  Strictly above the entry's
    // admission bound ⇒ the mover cannot displace anything; at or below it
    // (including score ties, where the canonical answer could swap the
    // tied user) ⇒ conservatively invalidate.
    let spatial = dataset.normalize_spatial(origin.distance(location));
    let lower_bound = (1.0 - entry.request.alpha()) * spatial;
    lower_bound > entry.bound
}

fn evict_lru(entries: &mut HashMap<CacheKey, CacheEntry>) {
    if let Some(key) = entries
        .iter()
        .min_by_key(|(_, e)| e.last_used)
        .map(|(k, _)| k.clone())
    {
        entries.remove(&key);
    }
}

/// Fraction of AIS grid nodes holding a materialized summary — a cheap
/// proxy for how clustered the located users are.
fn grid_occupancy(engine: &GeoSocialEngine) -> f64 {
    let total = engine.ais_index().total_cells();
    if total == 0 {
        return 0.0;
    }
    engine.ais_index().occupied_cells() as f64 / total as f64
}

/// Signal-based prior rank (lower = preferred) used for the cold-start
/// choice and the exploration order.  The baseline order follows the
/// paper's evaluation (AIS and its variants dominate overall); the
/// adjustments encode the situations where the evaluation shows other
/// families winning.
fn prior_rank(
    algorithm: Algorithm,
    engine: &GeoSocialEngine,
    request: &QueryRequest,
    occupancy: f64,
) -> f64 {
    let mut rank = match algorithm {
        Algorithm::Ais => 0.0,
        Algorithm::SfaCached => 1.0,
        Algorithm::AisMinus => 2.0,
        Algorithm::AisBid => 3.0,
        Algorithm::TsaQc => 4.0,
        Algorithm::Tsa => 5.0,
        Algorithm::SpaCh => 6.0,
        Algorithm::Spa => 7.0,
        Algorithm::SfaCh => 8.0,
        Algorithm::Sfa => 9.0,
        Algorithm::TsaCh => 10.0,
        Algorithm::Exhaustive | Algorithm::Auto => 1000.0,
    };
    let ratio = rect_area_ratio(engine, request);
    if matches!(
        algorithm,
        Algorithm::Spa | Algorithm::SpaCh | Algorithm::Tsa | Algorithm::TsaQc | Algorithm::TsaCh
    ) {
        // A selective window (or a sparse, clustered grid) favours
        // spatially-driven probing.
        if ratio.is_some_and(|r| r <= 0.05) {
            rank -= 6.0;
        }
        if occupancy > 0.0 && occupancy < 0.05 {
            rank -= 0.5;
        }
    }
    let alpha = request.alpha();
    if alpha >= 0.75
        && matches!(
            algorithm,
            Algorithm::Sfa | Algorithm::SfaCh | Algorithm::SfaCached
        )
    {
        // Social-dominant preference: the social-first family terminates
        // early.
        rank -= 2.5;
    }
    if alpha <= 0.25 && matches!(algorithm, Algorithm::Spa | Algorithm::SpaCh) {
        rank -= 2.5;
    }
    rank
}

/// The [`AlgorithmStrategy`] registered under `"AUTO"`: consult the
/// planner (cache first, then the cost model) and delegate to the chosen
/// built-in strategy, feeding the completed query's stats back.
pub struct PlannerStrategy {
    planner: Arc<QueryPlanner>,
}

impl PlannerStrategy {
    /// A strategy dispatching through `planner` — the engine registers one
    /// over its own planner at construction time.
    pub fn new(planner: Arc<QueryPlanner>) -> PlannerStrategy {
        PlannerStrategy { planner }
    }

    /// A self-contained strategy with a private planner whose hot-result
    /// cache is **disabled** — the safe configuration for a strategy
    /// object detached from any engine's churn hooks (served by
    /// [`builtin_strategy`](crate::builtin_strategy) for
    /// [`Algorithm::Auto`]).  Algorithm choice still adapts; only result
    /// reuse is off.
    pub fn detached() -> PlannerStrategy {
        PlannerStrategy {
            planner: Arc::new(QueryPlanner::new(PlannerConfig {
                cache_capacity: 0,
                ..PlannerConfig::default()
            })),
        }
    }

    /// The planner the strategy consults.
    pub fn planner(&self) -> &Arc<QueryPlanner> {
        &self.planner
    }

    fn resolve_choice<'e>(
        &self,
        engine: &'e GeoSocialEngine,
        request: &QueryRequest,
    ) -> Result<(Algorithm, SignalBucket, &'e Arc<dyn AlgorithmStrategy>), CoreError> {
        let (algorithm, _reason, bucket) = self.planner.choose(engine, request);
        let inner = engine.strategies().resolve(algorithm.name())?;
        let requires = inner.requires();
        if requires.contraction_hierarchy {
            engine.require_contraction_hierarchy()?;
        }
        if requires.social_cache {
            engine.require_social_cache()?;
        }
        Ok((algorithm, bucket, inner))
    }
}

impl std::fmt::Debug for PlannerStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannerStrategy")
            .field("planner", &self.planner)
            .finish()
    }
}

impl AlgorithmStrategy for PlannerStrategy {
    fn name(&self) -> &str {
        AUTO_STRATEGY_NAME
    }

    fn requires(&self) -> IndexRequirements {
        // The planner only delegates to algorithms whose indexes already
        // exist (or builds them on demand for a pinned choice), so it has
        // no up-front requirements of its own.
        IndexRequirements::NONE
    }

    fn execute(
        &self,
        engine: &GeoSocialEngine,
        request: &QueryRequest,
        ctx: &mut QueryContext,
    ) -> Result<QueryResult, CoreError> {
        request.validate()?;
        engine.dataset().check_user(request.user())?;
        let started = Instant::now();
        if let Some(mut result) = self.planner.cache_lookup(request) {
            result.stats = QueryStats {
                cache_hits: 1,
                runtime: started.elapsed(),
                ..QueryStats::default()
            };
            return Ok(result);
        }
        let (algorithm, bucket, inner) = self.resolve_choice(engine, request)?;
        let result = inner.execute(engine, request, ctx)?;
        self.planner
            .record_feedback(bucket, algorithm, &result.stats);
        self.planner
            .cache_admit(request, request.resolved_origin(engine.dataset()), &result);
        Ok(result)
    }

    fn begin_stream<'a>(
        &'a self,
        engine: &'a GeoSocialEngine,
        request: &QueryRequest,
        ctx: &'a mut QueryContext,
    ) -> Result<Box<dyn QueryDriver + 'a>, CoreError> {
        request.validate()?;
        engine.dataset().check_user(request.user())?;
        let started = Instant::now();
        if let Some(mut result) = self.planner.cache_lookup(request) {
            result.stats = QueryStats {
                cache_hits: 1,
                runtime: started.elapsed(),
                ..QueryStats::default()
            };
            return Ok(Box::new(EagerDriver::new(result)));
        }
        let (algorithm, bucket, inner) = self.resolve_choice(engine, request)?;
        let driver = inner.begin_stream(engine, request, ctx)?;
        Ok(Box::new(PlannedDriver {
            inner: driver,
            planner: &self.planner,
            request: request.clone(),
            origin: request.resolved_origin(engine.dataset()),
            algorithm,
            bucket,
        }))
    }
}

/// Driver wrapper that feeds the planner (EWMA + cache admission) when a
/// delegated stream completes and its result is taken.  Streams abandoned
/// mid-search feed back nothing — their stats describe a truncated run.
struct PlannedDriver<'a> {
    inner: Box<dyn QueryDriver + 'a>,
    planner: &'a QueryPlanner,
    request: QueryRequest,
    origin: Option<Point>,
    algorithm: Algorithm,
    bucket: SignalBucket,
}

impl QueryDriver for PlannedDriver<'_> {
    fn step(&mut self) -> StepOutcome {
        self.inner.step()
    }

    fn drain_finalized(&mut self, out: &mut Vec<RankedUser>) {
        self.inner.drain_finalized(out)
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn stats(&self) -> QueryStats {
        self.inner.stats()
    }

    fn take_result(&mut self) -> Result<QueryResult, CoreError> {
        let result = self.inner.take_result()?;
        self.planner
            .record_feedback(self.bucket, self.algorithm, &result.stats);
        self.planner
            .cache_admit(&self.request, self.origin, &result);
        Ok(result)
    }
}
