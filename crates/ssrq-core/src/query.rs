use crate::{QueryStats, UserId};

/// One entry of an SSRQ result: a user together with its ranking value and
/// the two normalized distances it was derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedUser {
    /// The reported user.
    pub user: UserId,
    /// The ranking value `f(u_q, user)` (smaller is better).
    pub score: f64,
    /// Normalized social (shortest-path) distance `p`.
    pub social: f64,
    /// Normalized spatial (Euclidean) distance `d`.
    pub spatial: f64,
}

/// The answer to one SSRQ query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The top-k users in ascending order of ranking value.  May contain
    /// fewer than `k` entries when fewer than `k` users have a finite
    /// ranking value (or pass the request's filters).
    pub ranked: Vec<RankedUser>,
    /// The `k` the query asked for.  A result with `ranked.len() < k` is
    /// *complete*: every admissible user is listed.
    pub k: usize,
    /// `true` when part of the search space was **not** consulted — e.g. a
    /// remote shard failed mid-query under
    /// `FailurePolicy::Degrade` and the coordinator merged what the
    /// surviving shards returned.  A degraded result never claims
    /// completeness ([`QueryResult::is_complete`] returns `false`) even when
    /// it holds fewer than `k` entries; the failed shard is named in the
    /// coordinator's per-shard stats.  Always `false` on in-process paths.
    pub degraded: bool,
    /// Work counters and timing for the query.
    pub stats: QueryStats,
}

impl QueryResult {
    /// The user ids of the result, in rank order.
    pub fn users(&self) -> Vec<UserId> {
        self.ranked.iter().map(|r| r.user).collect()
    }

    /// The worst (largest) reported ranking value — the paper's `f_k`.
    /// `None` for an empty result.
    pub fn fk(&self) -> Option<f64> {
        self.ranked.last().map(|r| r.score)
    }

    /// Returns `true` when the result lists *every* admissible user, i.e.
    /// it was not truncated at `k` — and no part of the search space was
    /// skipped by a degraded partial-failure merge
    /// ([`QueryResult::degraded`]).
    pub fn is_complete(&self) -> bool {
        !self.degraded && self.ranked.len() < self.k
    }

    /// Returns `true` when the two results are interchangeable answers to
    /// the same query: same length, position-wise equal scores up to
    /// `tolerance`, and the same *user sets* within every score-tie group.
    ///
    /// Rank order of equal-score users may legitimately differ between
    /// algorithms, so users are compared per tie group rather than
    /// position-wise.  The one legitimate set difference is the final tie
    /// group of a *truncated* result (`ranked.len() == k`): when the k-th
    /// and (k+1)-th best scores tie, algorithms may break the tie toward
    /// different users, so that group is only compared when both results
    /// are complete.
    pub fn same_users_and_scores(&self, other: &QueryResult, tolerance: f64) -> bool {
        if self.ranked.len() != other.ranked.len() {
            return false;
        }
        // Scores must match position-wise.
        for (a, b) in self.ranked.iter().zip(other.ranked.iter()) {
            if (a.score - b.score).abs() > tolerance {
                return false;
            }
        }
        // User sets must match within every score-tie group (adjacent
        // entries whose scores differ by at most `tolerance`).
        let len = self.ranked.len();
        let compare_trailing = self.is_complete() && other.is_complete();
        let mut start = 0;
        while start < len {
            let mut end = start + 1;
            while end < len && self.ranked[end].score - self.ranked[end - 1].score <= tolerance {
                end += 1;
            }
            if end < len || compare_trailing {
                let mut a: Vec<UserId> = self.ranked[start..end].iter().map(|r| r.user).collect();
                let mut b: Vec<UserId> = other.ranked[start..end].iter().map(|r| r.user).collect();
                a.sort_unstable();
                b.sort_unstable();
                if a != b {
                    return false;
                }
            }
            start = end;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(user: UserId, score: f64) -> RankedUser {
        RankedUser {
            user,
            score,
            social: score / 2.0,
            spatial: score / 2.0,
        }
    }

    fn result(k: usize, entries: Vec<RankedUser>) -> QueryResult {
        QueryResult {
            ranked: entries,
            k,
            degraded: false,
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn result_accessors() {
        let result = result(5, vec![ranked(4, 0.1), ranked(2, 0.2), ranked(7, 0.35)]);
        assert_eq!(result.users(), vec![4, 2, 7]);
        assert_eq!(result.fk(), Some(0.35));
        assert!(result.is_complete());
        let empty = QueryResult {
            ranked: vec![],
            k: 3,
            degraded: false,
            stats: QueryStats::default(),
        };
        assert_eq!(empty.fk(), None);
    }

    #[test]
    fn result_comparison_tolerates_trailing_score_ties_when_truncated() {
        // k == len: the result is truncated, so the trailing tie group may
        // resolve to different users.
        let a = result(2, vec![ranked(1, 0.1), ranked(2, 0.2)]);
        let mut b = a.clone();
        b.ranked[1].user = 9; // different user, same score, trailing group
        assert!(a.same_users_and_scores(&b, 1e-9));
        b.ranked[1].score = 0.4;
        assert!(!a.same_users_and_scores(&b, 1e-9));
        let shorter = result(2, vec![ranked(1, 0.1)]);
        assert!(!a.same_users_and_scores(&shorter, 1e-9));
    }

    #[test]
    fn disjoint_users_with_equal_scores_no_longer_compare_equal() {
        // Complete results (len < k): every tie group must hold the same
        // user set, including the trailing one.
        let a = result(5, vec![ranked(1, 0.2), ranked(2, 0.2), ranked(3, 0.2)]);
        let mut b = a.clone();
        b.ranked[0].user = 7;
        b.ranked[1].user = 8;
        b.ranked[2].user = 9;
        assert!(!a.same_users_and_scores(&b, 1e-9));
        // Same set in a different order is fine.
        let mut c = a.clone();
        c.ranked.swap(0, 2);
        assert!(a.same_users_and_scores(&c, 1e-9));
    }

    #[test]
    fn interior_tie_groups_are_compared_even_when_truncated() {
        // The {0.2, 0.2} group is fully above the cutoff: its users must
        // match even though the result is truncated at k.
        let a = result(3, vec![ranked(1, 0.2), ranked(2, 0.2), ranked(3, 0.9)]);
        let mut b = a.clone();
        b.ranked[0].user = 5; // interior group differs -> not interchangeable
        assert!(!a.same_users_and_scores(&b, 1e-9));
        let mut c = a.clone();
        c.ranked.swap(0, 1); // same interior set, different order -> fine
        assert!(a.same_users_and_scores(&c, 1e-9));
    }
}
