use crate::{CoreError, QueryStats, UserId};

/// Parameters of one SSRQ query (Definition 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// The query user `u_q`.
    pub user: UserId,
    /// Number of users to report (`k`).
    pub k: usize,
    /// Preference parameter `α ∈ (0, 1)`: the weight of *social* proximity
    /// (`1 − α` weighs spatial proximity).
    pub alpha: f64,
}

impl QueryParams {
    /// Creates query parameters.
    pub fn new(user: UserId, k: usize, alpha: f64) -> Self {
        QueryParams { user, k, alpha }
    }

    /// Validates the parameters.
    ///
    /// `α` must lie strictly between 0 and 1: at the boundaries one of the
    /// domains carries zero weight and the single-domain algorithms of the
    /// paper lose their termination conditions (the evaluation uses
    /// `α ∈ [0.1, 0.9]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `k = 0` or `α` outside
    /// `(0, 1)`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::InvalidParameter("k must be at least 1".into()));
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "alpha must lie strictly between 0 and 1, got {}",
                self.alpha
            )));
        }
        Ok(())
    }
}

/// One entry of an SSRQ result: a user together with its ranking value and
/// the two normalized distances it was derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedUser {
    /// The reported user.
    pub user: UserId,
    /// The ranking value `f(u_q, user)` (smaller is better).
    pub score: f64,
    /// Normalized social (shortest-path) distance `p`.
    pub social: f64,
    /// Normalized spatial (Euclidean) distance `d`.
    pub spatial: f64,
}

/// The answer to one SSRQ query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The top-k users in ascending order of ranking value.  May contain
    /// fewer than `k` entries when fewer than `k` users have a finite
    /// ranking value.
    pub ranked: Vec<RankedUser>,
    /// Work counters and timing for the query.
    pub stats: QueryStats,
}

impl QueryResult {
    /// The user ids of the result, in rank order.
    pub fn users(&self) -> Vec<UserId> {
        self.ranked.iter().map(|r| r.user).collect()
    }

    /// The worst (largest) reported ranking value — the paper's `f_k`.
    /// `None` for an empty result.
    pub fn fk(&self) -> Option<f64> {
        self.ranked.last().map(|r| r.score)
    }

    /// Returns `true` when the two results contain the same users with the
    /// same scores up to `tolerance` (rank order of equal-score users may
    /// legitimately differ between algorithms).
    pub fn same_users_and_scores(&self, other: &QueryResult, tolerance: f64) -> bool {
        if self.ranked.len() != other.ranked.len() {
            return false;
        }
        // Scores must match position-wise.
        for (a, b) in self.ranked.iter().zip(other.ranked.iter()) {
            if (a.score - b.score).abs() > tolerance {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(user: UserId, score: f64) -> RankedUser {
        RankedUser {
            user,
            score,
            social: score / 2.0,
            spatial: score / 2.0,
        }
    }

    #[test]
    fn validation_accepts_paper_ranges() {
        for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
            assert!(QueryParams::new(0, 30, alpha).validate().is_ok());
        }
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(QueryParams::new(0, 0, 0.5).validate().is_err());
        assert!(QueryParams::new(0, 10, 0.0).validate().is_err());
        assert!(QueryParams::new(0, 10, 1.0).validate().is_err());
        assert!(QueryParams::new(0, 10, -0.3).validate().is_err());
        assert!(QueryParams::new(0, 10, f64::NAN).validate().is_err());
    }

    #[test]
    fn result_accessors() {
        let result = QueryResult {
            ranked: vec![ranked(4, 0.1), ranked(2, 0.2), ranked(7, 0.35)],
            stats: QueryStats::default(),
        };
        assert_eq!(result.users(), vec![4, 2, 7]);
        assert_eq!(result.fk(), Some(0.35));
        let empty = QueryResult {
            ranked: vec![],
            stats: QueryStats::default(),
        };
        assert_eq!(empty.fk(), None);
    }

    #[test]
    fn result_comparison_tolerates_score_ties() {
        let a = QueryResult {
            ranked: vec![ranked(1, 0.1), ranked(2, 0.2)],
            stats: QueryStats::default(),
        };
        let mut b = a.clone();
        b.ranked[0].user = 9; // different user with identical score
        assert!(a.same_users_and_scores(&b, 1e-9));
        b.ranked[1].score = 0.4;
        assert!(!a.same_users_and_scores(&b, 1e-9));
        let shorter = QueryResult {
            ranked: vec![ranked(1, 0.1)],
            stats: QueryStats::default(),
        };
        assert!(!a.same_users_and_scores(&shorter, 1e-9));
    }
}
