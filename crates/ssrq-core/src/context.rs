//! Per-worker reusable query state.
//!
//! Every SSRQ algorithm runs at least one graph search; [`QueryContext`]
//! owns the scratch buffers those searches draw from, so a worker that
//! processes many queries allocates the dense `O(|V|)` state once instead of
//! per query.  See [`SearchScratch`](ssrq_graph::SearchScratch) for the
//! epoch-versioning mechanics.

use ssrq_graph::{ChQueryScratch, SearchScratch};

/// Reusable per-worker state for query processing.
///
/// Create one per worker thread (or one for a single-threaded query loop)
/// and pass it to
/// [`GeoSocialEngine::run_with`](crate::GeoSocialEngine::run_with); the
/// batch API ([`GeoSocialEngine::run_batch`](crate::GeoSocialEngine::run_batch))
/// maintains one context per worker internally.
///
/// A context carries no query *results* — only working storage — and every
/// search resets its scratch before use, so reusing a context can never
/// change the answer of a query (the test-suite asserts this).
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    /// Scratch for the query-rooted social expansion (Dijkstra / shared
    /// forward search) every algorithm performs.
    pub(crate) social: SearchScratch,
    /// Scratch for Contraction Hierarchies point-to-point queries (the
    /// `*-CH` baselines).
    pub(crate) ch: ChQueryScratch,
}

impl QueryContext {
    /// An empty context; buffers grow on first use.
    pub fn new() -> Self {
        QueryContext::default()
    }

    /// A context pre-sized for graphs of up to `n` vertices, avoiding the
    /// one-time growth on the first query.
    pub fn with_capacity(n: usize) -> Self {
        QueryContext {
            social: SearchScratch::with_capacity(n),
            ch: ChQueryScratch::default(),
        }
    }

    /// Number of vertices the social scratch currently covers.
    pub fn capacity(&self) -> usize {
        self.social.capacity()
    }

    /// The social-expansion scratch, for callers that run their own graph
    /// searches (e.g. path reconstruction after a query) and want to share
    /// this context's storage.
    pub fn social_scratch(&mut self) -> &mut SearchScratch {
        &mut self.social
    }

    /// How many graph searches have reused this context so far.
    pub fn searches(&self) -> u64 {
        self.social.resets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_start_empty_and_grow() {
        let ctx = QueryContext::new();
        assert_eq!(ctx.capacity(), 0);
        assert_eq!(ctx.searches(), 0);
        let sized = QueryContext::with_capacity(64);
        assert_eq!(sized.capacity(), 64);
    }
}
