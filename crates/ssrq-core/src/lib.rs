//! The Social and Spatial Ranking Query (SSRQ) — core algorithms.
//!
//! This crate implements the primary contribution of *"Joint Search by
//! Social and Spatial Proximity"* (Mouratidis, Li, Tang, Mamoulis): given a
//! query user `u_q`, a preference parameter `α` and a result size `k`, the
//! SSRQ returns the `k` users minimizing
//!
//! ```text
//! f(u_q, u_i) = α · p(v_q, v_i) + (1 − α) · d(u_q, u_i)
//! ```
//!
//! where `p` is the normalized shortest-path distance in the social graph
//! and `d` the normalized Euclidean distance between current locations.
//!
//! # Processing algorithms
//!
//! | [`Algorithm`] | Paper section | Idea |
//! |---|---|---|
//! | [`Algorithm::Exhaustive`] | — | brute-force oracle used for testing |
//! | [`Algorithm::Sfa`] | §4.1 | expand the social graph around `v_q` (Dijkstra) |
//! | [`Algorithm::Spa`] | §4.1 | incremental spatial NN search around `u_q` |
//! | [`Algorithm::Tsa`] | §4.2 | twofold (social + spatial) search, round-robin |
//! | [`Algorithm::TsaQc`] | §4.2 | TSA probing with the Quick Combine heuristic |
//! | [`Algorithm::AisBid`] | §5 / §6 | aggregate index search, plain bidirectional distances |
//! | [`Algorithm::AisMinus`] | §5.2 | AIS + computation sharing (no delayed evaluation) |
//! | [`Algorithm::Ais`] | §5.3 | AIS + computation sharing + delayed evaluation |
//! | [`Algorithm::SfaCh`], [`Algorithm::SpaCh`], [`Algorithm::TsaCh`] | §6 | the `*-CH` baselines (Contraction Hierarchies distance module) |
//! | [`Algorithm::SfaCached`] | §5.4 | pre-computed socially-closest lists with AIS fallback |
//!
//! The entry point is [`GeoSocialEngine`]: build it once from a
//! [`GeoSocialDataset`] and an [`EngineConfig`], then issue any number of
//! queries with any algorithm.
//!
//! ```
//! use ssrq_core::{Algorithm, EngineConfig, GeoSocialDataset, GeoSocialEngine, QueryParams};
//! use ssrq_graph::GraphBuilder;
//! use ssrq_spatial::Point;
//!
//! // Four users on a line, chained as friends.
//! let graph = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
//! let locations = vec![
//!     Some(Point::new(0.1, 0.5)),
//!     Some(Point::new(0.9, 0.5)),
//!     Some(Point::new(0.2, 0.5)),
//!     Some(Point::new(0.8, 0.5)),
//! ];
//! let dataset = GeoSocialDataset::new(graph, locations).unwrap();
//! let engine = GeoSocialEngine::build(dataset, EngineConfig::default()).unwrap();
//! let result = engine
//!     .query(Algorithm::Ais, &QueryParams::new(0, 2, 0.5))
//!     .unwrap();
//! assert_eq!(result.ranked.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ais;
pub mod algorithms;
mod context;
mod dataset;
mod engine;
mod error;
mod query;
mod ranking;
mod result;
mod stats;

pub use context::QueryContext;
pub use dataset::{GeoSocialDataset, UserId};
pub use engine::{Algorithm, EngineConfig, GeoSocialEngine};
pub use error::CoreError;
pub use query::{QueryParams, QueryResult, RankedUser};
pub use ranking::{combine, RankingContext};
pub use result::TopK;
pub use stats::QueryStats;
