//! The Social and Spatial Ranking Query (SSRQ) — core algorithms.
//!
//! This crate implements the primary contribution of *"Joint Search by
//! Social and Spatial Proximity"* (Mouratidis, Li, Tang, Mamoulis): given a
//! query user `u_q`, a preference parameter `α` and a result size `k`, the
//! SSRQ returns the `k` users minimizing
//!
//! ```text
//! f(u_q, u_i) = α · p(v_q, v_i) + (1 − α) · d(u_q, u_i)
//! ```
//!
//! where `p` is the normalized shortest-path distance in the social graph
//! and `d` the normalized Euclidean distance between current locations.
//!
//! # Service API
//!
//! The public API is built from four pieces:
//!
//! 1. **[`EngineBuilder`]** — fluent engine construction over a
//!    [`GeoSocialDataset`].  Expensive auxiliary indexes are *declared*
//!    ([`ChBuild`], [`SocialCachePlan`]) and built lazily on first use (or
//!    eagerly), behind `OnceLock` so the engine stays `Send + Sync`.
//! 2. **[`QueryRequest`]** — a typed, validated query: `u_q`, `k`, `α`, the
//!    algorithm, and per-query scenario options (spatial filter window,
//!    exclusion set, score cutoff) honoured by every algorithm.
//! 3. **[`AlgorithmStrategy`]** — every processing algorithm is a strategy
//!    object in the engine's [`StrategyRegistry`]; downstream crates add or
//!    wrap algorithms via
//!    [`GeoSocialEngine::register_strategy`] without touching the engine.
//! 4. **[`QuerySession`]** — a per-worker handle (engine reference + owned
//!    [`QueryContext`]) with [`QuerySession::run`] and the **pull-lazy**
//!    finalization-order iterator [`QuerySession::stream`], backed by the
//!    resumable [`QueryDriver`] state machine every algorithm is
//!    implemented as.
//!
//! # Processing algorithms
//!
//! | [`Algorithm`] | Paper section | Idea |
//! |---|---|---|
//! | [`Algorithm::Exhaustive`] | — | brute-force oracle used for testing |
//! | [`Algorithm::Sfa`] | §4.1 | expand the social graph around `v_q` (Dijkstra) |
//! | [`Algorithm::Spa`] | §4.1 | incremental spatial NN search around `u_q` |
//! | [`Algorithm::Tsa`] | §4.2 | twofold (social + spatial) search, round-robin |
//! | [`Algorithm::TsaQc`] | §4.2 | TSA probing with the Quick Combine heuristic |
//! | [`Algorithm::AisBid`] | §5 / §6 | aggregate index search, plain bidirectional distances |
//! | [`Algorithm::AisMinus`] | §5.2 | AIS + computation sharing (no delayed evaluation) |
//! | [`Algorithm::Ais`] | §5.3 | AIS + computation sharing + delayed evaluation |
//! | [`Algorithm::SfaCh`], [`Algorithm::SpaCh`], [`Algorithm::TsaCh`] | §6 | the `*-CH` baselines (Contraction Hierarchies distance module) |
//! | [`Algorithm::SfaCached`] | §5.4 | pre-computed socially-closest lists with AIS fallback |
//!
//! ```
//! use ssrq_core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
//! use ssrq_graph::GraphBuilder;
//! use ssrq_spatial::Point;
//!
//! // Four users on a line, chained as friends.
//! let graph = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
//! let locations = vec![
//!     Some(Point::new(0.1, 0.5)),
//!     Some(Point::new(0.9, 0.5)),
//!     Some(Point::new(0.2, 0.5)),
//!     Some(Point::new(0.8, 0.5)),
//! ];
//! let dataset = GeoSocialDataset::new(graph, locations).unwrap();
//! let engine = GeoSocialEngine::builder(dataset).build().unwrap();
//!
//! let mut session = engine.session();
//! let request = QueryRequest::for_user(0)
//!     .k(2)
//!     .alpha(0.5)
//!     .algorithm(Algorithm::Ais)
//!     .build()
//!     .unwrap();
//! let result = session.run(&request).unwrap();
//! assert_eq!(result.ranked.len(), 2);
//! ```
//!
//! # Migrating from the 0.1 API
//!
//! The deprecated 0.1 entry points (`EngineConfig`, `QueryParams`,
//! `engine.query*`, `engine.build_*`) have been **removed** after two
//! releases of deprecation:
//!
//! * `GeoSocialEngine::build(dataset, EngineConfig { .. })` →
//!   [`GeoSocialEngine::builder`] + [`EngineBuilder`] methods.
//! * `engine.build_contraction_hierarchy()` / `engine.build_social_cache(..)`
//!   → declare at construction time with [`EngineBuilder::with_ch`] /
//!   [`EngineBuilder::cache_social_neighbors`] (lazy by default), or install
//!   a pre-built shared index with [`EngineBuilder::with_shared_ch`] /
//!   [`GeoSocialEngine::install_social_cache`].
//! * `engine.query(algorithm, &QueryParams::new(u, k, a))` →
//!   `engine.run(&QueryRequest::for_user(u).k(k).alpha(a).algorithm(algorithm).build()?)`.
//! * `engine.query_batch(algorithm, &params)` →
//!   [`GeoSocialEngine::run_batch`] over [`QueryRequest`]s.
//! * [`GeoSocialEngine::install_social_cache`] now takes
//!   `impl Into<Arc<SocialNeighborCache>>` (pass a cache by value as
//!   before, or an `Arc` to share one instance across engines).
//!
//! # Shared immutable substrate
//!
//! [`GeoSocialDataset`] is an `Arc`-backed immutable core (graph, bounds,
//! normalization constants) plus per-instance locations: `Clone` and
//! [`GeoSocialDataset::restrict_locations`] never copy the graph.  The
//! graph-only indexes (landmarks, Contraction Hierarchies, social cache)
//! are consumed through `Arc` handles and can be shared across engines —
//! see [`EngineBuilder::share_graph_artifacts_with`] and the `with_shared_*`
//! builder methods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ais;
pub mod algorithms;
mod context;
mod dataset;
mod driver;
mod engine;
mod error;
pub mod obs;
mod planner;
mod query;
mod ranking;
mod request;
mod result;
mod session;
mod stats;
mod strategy;

pub use algorithms::SocialNeighborCache;
pub use context::QueryContext;
pub use dataset::{GeoSocialDataset, UserId};
pub use driver::{EagerDriver, QueryDriver, StepOutcome};
pub use engine::{
    Algorithm, ChBuild, EngineBuilder, EngineMemory, GeoSocialEngine, IndexParams, SocialCachePlan,
};
pub use error::CoreError;
pub use planner::{
    ChoiceReason, PlannerConfig, PlannerSnapshot, PlannerStrategy, QueryPlanner, SignalBucket,
    AUTO_STRATEGY_NAME,
};
pub use query::{QueryResult, RankedUser};
pub use ranking::{combine, RankingContext};
pub use request::{AlgorithmSpec, QueryRequest, QueryRequestBuilder};
pub use result::TopK;
pub use session::{QuerySession, QueryStream};
pub use stats::QueryStats;
pub use strategy::{builtin_strategy, AlgorithmStrategy, IndexRequirements, StrategyRegistry};
