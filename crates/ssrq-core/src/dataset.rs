use crate::CoreError;
use ssrq_graph::{pseudo_diameter, ChParams, ContractionHierarchy, SocialGraph};
use ssrq_spatial::{Point, Rect};
use std::sync::{Arc, OnceLock};

/// Identifier of a user.  User `i` is vertex `i` of the social graph and
/// item `i` of the spatial indexes (the paper's `u_i` / `v_i` convention).
pub type UserId = u32;

/// The immutable part of a [`GeoSocialDataset`], shared (behind an [`Arc`])
/// by every clone and every location-restricted view of the dataset.
///
/// The social graph and the normalization constants never change after
/// construction (social-network topology changes far less frequently than
/// user locations — §5.1), so they are the natural unit of sharing for a
/// partitioned deployment: N shards hold N location vectors but **one**
/// graph.  The core also hosts the write-once slot for the lazily built
/// Contraction Hierarchies index — a pure function of the graph — so every
/// engine over the same core observes the same build (see
/// [`GeoSocialEngine::require_contraction_hierarchy`](crate::GeoSocialEngine::require_contraction_hierarchy)).
#[derive(Debug)]
struct DatasetCore {
    graph: SocialGraph,
    bounds: Rect,
    spatial_norm: f64,
    social_norm: f64,
    /// Lazily built, shared Contraction Hierarchies index (graph-only, so
    /// one instance is valid for every location restriction of this core).
    ch: OnceLock<Arc<ContractionHierarchy>>,
}

/// A geo-social dataset: the social graph plus the current location of every
/// user (§3 of the paper).
///
/// * Users may lack a location (the paper's real datasets cover only 54–60 %
///   of users); such users are treated as **infinitely far away** in the
///   spatial domain, exactly as footnote 3 of the paper prescribes.
/// * Both proximities are normalized before being combined: spatial
///   distances are divided by the diagonal of the bounding rectangle of all
///   locations, social distances by an estimate of the weighted graph
///   diameter (computed by a double Dijkstra sweep at construction time).
///
/// # Ownership model
///
/// A dataset is an `Arc`-backed **immutable core** (graph, bounds, both
/// normalization constants) plus a per-instance **location vector**.
/// `Clone` and [`GeoSocialDataset::restrict_locations`] share the core —
/// they copy only the `O(|V|)` location entries, never the graph — so a
/// sharded deployment over N partitions holds exactly one graph in memory.
/// [`GeoSocialDataset::shares_core_with`] tests core identity.
#[derive(Debug, Clone)]
pub struct GeoSocialDataset {
    core: Arc<DatasetCore>,
    locations: Vec<Option<Point>>,
}

impl GeoSocialDataset {
    /// Creates a dataset from a social graph and per-user locations.
    ///
    /// `locations[i]` is the current location of user `i` (or `None`).  The
    /// vector must have exactly one entry per graph vertex.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDataset`] when the location list length
    /// does not match the vertex count, when no user has a location, or when
    /// a location is not finite.
    pub fn new(graph: SocialGraph, locations: Vec<Option<Point>>) -> Result<Self, CoreError> {
        if locations.len() != graph.node_count() {
            return Err(CoreError::InvalidDataset(format!(
                "{} locations provided for {} users",
                locations.len(),
                graph.node_count()
            )));
        }
        if let Some(bad) = locations.iter().flatten().find(|p| !p.is_finite()) {
            return Err(CoreError::InvalidDataset(format!(
                "non-finite location {bad}"
            )));
        }
        let bounds = Rect::bounding(locations.iter().flatten().copied()).ok_or_else(|| {
            CoreError::InvalidDataset("at least one user must have a location".into())
        })?;
        let spatial_norm = if bounds.diagonal() > 0.0 {
            bounds.diagonal()
        } else {
            1.0
        };
        let social_norm = estimate_graph_diameter(&graph).max(f64::MIN_POSITIVE);
        Ok(GeoSocialDataset {
            core: Arc::new(DatasetCore {
                graph,
                bounds,
                spatial_norm,
                social_norm,
                ch: OnceLock::new(),
            }),
            locations,
        })
    }

    /// The underlying social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.core.graph
    }

    /// Returns `true` when `self` and `other` share the same immutable core
    /// (graph, bounds, normalization constants) — i.e. one is a clone or a
    /// [`GeoSocialDataset::restrict_locations`] view of the other, not an
    /// independently constructed copy.
    ///
    /// This is the memory-model invariant a sharded deployment relies on:
    /// all shard datasets of one `ShardedEngine` answer `true` pairwise,
    /// proving a single graph instance backs them.
    pub fn shares_core_with(&self, other: &GeoSocialDataset) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// The shared Contraction Hierarchies index of this dataset's core, if
    /// one has been built (by any engine over the same core).
    pub(crate) fn shared_ch(&self) -> Option<&Arc<ContractionHierarchy>> {
        self.core.ch.get()
    }

    /// Returns the core's shared Contraction Hierarchies index, building it
    /// on first use.  Concurrent callers — including engines built from
    /// *different clones* of this dataset — trigger exactly one build.
    pub(crate) fn shared_ch_or_init(&self) -> &Arc<ContractionHierarchy> {
        self.core.ch.get_or_init(|| {
            Arc::new(ContractionHierarchy::build(
                &self.core.graph,
                ChParams::default(),
            ))
        })
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.core.graph.node_count()
    }

    /// Number of users that currently report a location.
    pub fn located_user_count(&self) -> usize {
        self.locations.iter().flatten().count()
    }

    /// The current location of `user`, if known.
    pub fn location(&self, user: UserId) -> Option<Point> {
        self.locations.get(user as usize).copied().flatten()
    }

    /// All `(user, location)` pairs for users with a known location.
    pub fn located_users(&self) -> impl Iterator<Item = (UserId, Point)> + '_ {
        self.locations
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|p| (u as UserId, p)))
    }

    /// Bounding rectangle of all user locations.
    pub fn bounds(&self) -> Rect {
        self.core.bounds
    }

    /// The spatial normalization constant (maximum possible pairwise
    /// Euclidean distance).
    pub fn spatial_norm(&self) -> f64 {
        self.core.spatial_norm
    }

    /// The social normalization constant (estimated maximum pairwise graph
    /// distance).
    pub fn social_norm(&self) -> f64 {
        self.core.social_norm
    }

    /// Returns `true` when `user` is a valid user id.
    pub fn contains(&self, user: UserId) -> bool {
        (user as usize) < self.user_count()
    }

    /// Validates a user id.
    pub fn check_user(&self, user: UserId) -> Result<(), CoreError> {
        if self.contains(user) {
            Ok(())
        } else {
            Err(CoreError::UnknownUser(user))
        }
    }

    /// Normalized Euclidean distance between two users
    /// (`f64::INFINITY` when either lacks a location).
    pub fn spatial_distance(&self, a: UserId, b: UserId) -> f64 {
        match (self.location(a), self.location(b)) {
            (Some(pa), Some(pb)) => pa.distance(pb) / self.core.spatial_norm,
            _ => f64::INFINITY,
        }
    }

    /// Normalized Euclidean distance between a user and an arbitrary point.
    pub fn spatial_distance_to_point(&self, a: UserId, p: Point) -> f64 {
        match self.location(a) {
            Some(pa) => pa.distance(p) / self.core.spatial_norm,
            None => f64::INFINITY,
        }
    }

    /// Normalizes a raw spatial distance.
    #[inline]
    pub fn normalize_spatial(&self, d: f64) -> f64 {
        d / self.core.spatial_norm
    }

    /// Normalizes a raw social (graph) distance.
    #[inline]
    pub fn normalize_social(&self, p: f64) -> f64 {
        p / self.core.social_norm
    }

    /// Returns a dataset over the **same social graph** in which only users
    /// accepted by `keep` retain their location, while the bounding
    /// rectangle and both normalization constants are **inherited** from
    /// `self`.
    ///
    /// This is the shard-construction primitive of a partitioned
    /// deployment: each shard holds the full graph (social distances are
    /// global) but only its residents' locations, and because the
    /// normalization constants are shared, a score computed on any shard is
    /// bit-identical to the score the unpartitioned dataset produces —
    /// which is what makes an exact cross-shard top-k merge possible.
    ///
    /// Unlike [`GeoSocialDataset::new`], the restricted dataset may hold
    /// **zero** located users (an empty shard answers every query with an
    /// empty result); the empty view still shares the core — no path
    /// through this method ever copies the graph.
    ///
    /// The returned view **shares this dataset's immutable core** (see the
    /// type-level ownership notes): only the location vector is copied, so
    /// N shards cost `N · O(|V|)` location entries plus a single graph.
    pub fn restrict_locations(&self, mut keep: impl FnMut(UserId) -> bool) -> GeoSocialDataset {
        let locations = self
            .locations
            .iter()
            .enumerate()
            .map(|(u, p)| if keep(u as UserId) { *p } else { None })
            .collect();
        GeoSocialDataset {
            core: Arc::clone(&self.core),
            locations,
        }
    }

    /// Replaces the location of `user` (the "last reported location" of the
    /// problem setting).  Passing `None` removes the location.
    ///
    /// Note: this mutates only the dataset; engines built from a clone of
    /// the dataset maintain their own indexes via
    /// [`GeoSocialEngine::update_location`](crate::GeoSocialEngine::update_location).
    pub fn set_location(&mut self, user: UserId, location: Option<Point>) -> Result<(), CoreError> {
        self.check_user(user)?;
        if let Some(p) = location {
            if !p.is_finite() {
                return Err(CoreError::InvalidDataset(format!(
                    "non-finite location {p}"
                )));
            }
        }
        self.locations[user as usize] = location;
        Ok(())
    }

    /// Approximate heap footprint in bytes of the per-instance location
    /// vector — the only part of a dataset **not** shared through the
    /// `Arc`-backed core.  Used by the memory experiment of `ssrq-bench` to
    /// attribute per-shard versus shared bytes.
    pub fn locations_heap_bytes(&self) -> usize {
        self.locations.capacity() * std::mem::size_of::<Option<Point>>()
    }
}

/// Node-count threshold above which the construction-time double sweep
/// fans its per-round relaxation out across all available cores.  Below
/// it the sweep stays sequential — thread-spawn overhead would dominate,
/// and [`pseudo_diameter`] is bit-identical either way.
const PARALLEL_SWEEP_MIN_NODES: usize = 1 << 14;

/// Estimates the weighted diameter of the graph with the standard double
/// sweep (see [`pseudo_diameter`]); this is the pseudo-diameter lower
/// bound, adequate as a normalization constant.  Large graphs run the
/// sweep chunk-parallel — ROADMAP notes it dominates 1M-user build time —
/// with the norms guaranteed bit-identical to the sequential sweep
/// (regression-tested in `ssrq-data`).
fn estimate_graph_diameter(graph: &SocialGraph) -> f64 {
    let threads = if graph.node_count() >= PARALLEL_SWEEP_MIN_NODES {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    };
    pseudo_diameter(graph, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;

    fn line_graph(n: usize) -> SocialGraph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1.0))).unwrap()
    }

    fn sample_dataset() -> GeoSocialDataset {
        let graph = line_graph(4);
        let locations = vec![
            Some(Point::new(0.0, 0.0)),
            Some(Point::new(3.0, 4.0)),
            None,
            Some(Point::new(6.0, 8.0)),
        ];
        GeoSocialDataset::new(graph, locations).unwrap()
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let graph = line_graph(3);
        let err = GeoSocialDataset::new(graph, vec![Some(Point::ORIGIN)]);
        assert!(matches!(err, Err(CoreError::InvalidDataset(_))));
    }

    #[test]
    fn rejects_all_missing_locations() {
        let graph = line_graph(3);
        let err = GeoSocialDataset::new(graph, vec![None, None, None]);
        assert!(matches!(err, Err(CoreError::InvalidDataset(_))));
    }

    #[test]
    fn rejects_non_finite_locations() {
        let graph = line_graph(2);
        let err = GeoSocialDataset::new(graph, vec![Some(Point::new(f64::NAN, 0.0)), None]);
        assert!(matches!(err, Err(CoreError::InvalidDataset(_))));
    }

    #[test]
    fn normalization_constants_are_positive() {
        let ds = sample_dataset();
        assert!(ds.spatial_norm() > 0.0);
        assert!(ds.social_norm() > 0.0);
        // Line graph of 4 vertices with unit weights has diameter 3.
        assert_eq!(ds.social_norm(), 3.0);
        // Spatial diagonal of bounding box (0,0)-(6,8) is 10.
        assert_eq!(ds.spatial_norm(), 10.0);
    }

    #[test]
    fn spatial_distance_is_normalized_and_handles_missing() {
        let ds = sample_dataset();
        assert!((ds.spatial_distance(0, 1) - 0.5).abs() < 1e-12);
        assert!(ds.spatial_distance(0, 2).is_infinite());
        assert!(ds.spatial_distance(2, 0).is_infinite());
        assert_eq!(ds.spatial_distance(0, 0), 0.0);
    }

    #[test]
    fn accessors_work() {
        let ds = sample_dataset();
        assert_eq!(ds.user_count(), 4);
        assert_eq!(ds.located_user_count(), 3);
        assert!(ds.contains(3));
        assert!(!ds.contains(4));
        assert!(ds.check_user(4).is_err());
        assert_eq!(ds.location(2), None);
        assert_eq!(ds.located_users().count(), 3);
        assert!(ds.bounds().contains(Point::new(3.0, 4.0)));
    }

    #[test]
    fn set_location_updates_and_validates() {
        let mut ds = sample_dataset();
        ds.set_location(2, Some(Point::new(1.0, 1.0))).unwrap();
        assert_eq!(ds.location(2), Some(Point::new(1.0, 1.0)));
        ds.set_location(2, None).unwrap();
        assert_eq!(ds.location(2), None);
        assert!(ds.set_location(9, None).is_err());
        assert!(ds
            .set_location(1, Some(Point::new(f64::INFINITY, 0.0)))
            .is_err());
    }

    #[test]
    fn restrict_locations_inherits_normalization_and_allows_empty_shards() {
        let ds = sample_dataset();
        let shard = ds.restrict_locations(|u| u == 1);
        assert_eq!(shard.user_count(), ds.user_count());
        assert_eq!(shard.located_user_count(), 1);
        assert_eq!(shard.location(1), ds.location(1));
        assert_eq!(shard.location(0), None);
        // Normalization constants and bounds come from the parent, not from
        // the restricted location set — shard-side scores stay bit-identical.
        assert_eq!(shard.spatial_norm(), ds.spatial_norm());
        assert_eq!(shard.social_norm(), ds.social_norm());
        assert_eq!(shard.bounds(), ds.bounds());
        // A shard may end up with no located users at all.
        let empty = ds.restrict_locations(|_| false);
        assert_eq!(empty.located_user_count(), 0);
        assert_eq!(empty.spatial_norm(), ds.spatial_norm());
        // Restriction — including the empty-shard path — shares the
        // immutable core instead of deep-cloning the graph.
        assert!(shard.shares_core_with(&ds));
        assert!(empty.shares_core_with(&ds));
        assert!(shard.shares_core_with(&empty));
    }

    #[test]
    fn clones_share_the_core_but_not_the_locations() {
        let ds = sample_dataset();
        let mut cloned = ds.clone();
        assert!(cloned.shares_core_with(&ds));
        assert!(std::ptr::eq(cloned.graph(), ds.graph()));
        // Locations stay per-instance mutable state.
        cloned.set_location(0, None).unwrap();
        assert!(ds.location(0).is_some());
        assert!(cloned.location(0).is_none());
        // An independently constructed dataset has its own core even over a
        // structurally identical graph.
        let other = sample_dataset();
        assert!(!other.shares_core_with(&ds));
        assert!(ds.locations_heap_bytes() > 0);
    }

    #[test]
    fn shared_ch_slot_is_built_once_per_core() {
        let ds = sample_dataset();
        let view = ds.restrict_locations(|u| u != 1);
        assert!(ds.shared_ch().is_none());
        let built = Arc::clone(ds.shared_ch_or_init());
        // The restricted view observes the very same instance, and repeated
        // initialization returns it unchanged.
        assert!(Arc::ptr_eq(&built, view.shared_ch_or_init()));
        assert!(Arc::ptr_eq(&built, ds.shared_ch().unwrap()));
        // An independent core has its own (empty) slot.
        assert!(sample_dataset().shared_ch().is_none());
    }

    #[test]
    fn diameter_of_disconnected_graph_ignores_infinities() {
        let graph = GraphBuilder::from_edges(5, vec![(0, 1, 2.0), (2, 3, 5.0)]).unwrap();
        let locations = vec![Some(Point::ORIGIN); 5];
        let ds = GeoSocialDataset::new(graph, locations).unwrap();
        assert!(ds.social_norm().is_finite());
        assert!(ds.social_norm() >= 2.0);
    }

    #[test]
    fn normalize_helpers_divide_by_constants() {
        let ds = sample_dataset();
        assert!((ds.normalize_spatial(5.0) - 0.5).abs() < 1e-12);
        assert!((ds.normalize_social(1.5) - 0.5).abs() < 1e-12);
    }
}
