//! Engine-level observability hooks.
//!
//! Every eagerly-driven query (the [`GeoSocialEngine::run_with`]
//! chokepoint) records its latency and work counters into the
//! process-wide [`ssrq_obs::Registry`], labelled by algorithm.  Streaming
//! callers that bypass `run_with` (e.g. a shard server draining
//! `stream_with`) call [`record_query_metrics`] themselves once the
//! stream completes.
//!
//! [`GeoSocialEngine::run_with`]: crate::GeoSocialEngine::run_with

use crate::QueryStats;
use ssrq_obs::Registry;

/// Records one completed query into `registry` under `algorithm`:
///
/// | metric | type | what |
/// |---|---|---|
/// | `ssrq_engine_queries_total{algorithm}` | counter | completed queries |
/// | `ssrq_engine_query_ns{algorithm}` | histogram | end-to-end latency (`stats.runtime`) |
/// | `ssrq_engine_steps{algorithm}` | histogram | heap pops per query (the paper's `\|V_pop\|`) |
/// | `ssrq_engine_relaxed_edges{algorithm}` | histogram | edge relaxations per query |
pub fn record_query_metrics_in(registry: &Registry, algorithm: &str, stats: &QueryStats) {
    let labels = &[("algorithm", algorithm)];
    registry.counter("ssrq_engine_queries_total", labels).inc();
    registry
        .histogram("ssrq_engine_query_ns", labels)
        .observe_duration(stats.runtime);
    registry
        .histogram("ssrq_engine_steps", labels)
        .observe(stats.vertex_pops as u64);
    registry
        .histogram("ssrq_engine_relaxed_edges", labels)
        .observe(stats.relaxed_edges as u64);
}

/// [`record_query_metrics_in`] against the process-wide
/// [`Registry::global`].
pub fn record_query_metrics(algorithm: &str, stats: &QueryStats) {
    record_query_metrics_in(Registry::global(), algorithm, stats);
}

/// Records one planner decision into `registry`:
/// `ssrq_planner_choices_total{algorithm,reason}` counts which concrete
/// algorithm [`Algorithm::Auto`](crate::Algorithm::Auto) delegated to and
/// why (`pinned` / `heuristic` / `explore` / `feedback`).
pub fn record_planner_choice_in(registry: &Registry, algorithm: &str, reason: &str) {
    registry
        .counter(
            "ssrq_planner_choices_total",
            &[("algorithm", algorithm), ("reason", reason)],
        )
        .inc();
}

/// [`record_planner_choice_in`] against the process-wide
/// [`Registry::global`].
pub fn record_planner_choice(algorithm: &str, reason: &str) {
    record_planner_choice_in(Registry::global(), algorithm, reason);
}

/// Records hot-result cache activity into `registry` as one of
/// `ssrq_cache_hits_total`, `ssrq_cache_misses_total` or
/// `ssrq_cache_invalidations_total` (`event` ∈ `hit` / `miss` /
/// `invalidation`; `n` supports bulk invalidations).
pub fn record_cache_event_in(registry: &Registry, event: &str, n: u64) {
    let name = match event {
        "hit" => "ssrq_cache_hits_total",
        "miss" => "ssrq_cache_misses_total",
        "invalidation" => "ssrq_cache_invalidations_total",
        other => panic!("unknown cache event {other:?}"),
    };
    registry.counter(name, &[]).add(n);
}

/// [`record_cache_event_in`] against the process-wide [`Registry::global`].
pub fn record_cache_event(event: &str, n: u64) {
    record_cache_event_in(Registry::global(), event, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn one_query_lands_in_every_engine_series() {
        let registry = Registry::new();
        let stats = QueryStats {
            vertex_pops: 12,
            relaxed_edges: 34,
            runtime: Duration::from_micros(5),
            ..QueryStats::default()
        };
        record_query_metrics_in(&registry, "ais", &stats);
        record_query_metrics_in(&registry, "ais", &stats);
        record_query_metrics_in(&registry, "sfa", &stats);
        let text = registry.render();
        assert!(text.contains("ssrq_engine_queries_total{algorithm=\"ais\"} 2"));
        assert!(text.contains("ssrq_engine_queries_total{algorithm=\"sfa\"} 1"));
        assert!(text.contains("ssrq_engine_query_ns_count{algorithm=\"ais\"} 2"));
        assert!(text.contains("ssrq_engine_steps_sum{algorithm=\"ais\"} 24"));
        assert!(text.contains("ssrq_engine_relaxed_edges_sum{algorithm=\"sfa\"} 34"));
    }

    #[test]
    fn planner_choices_land_labelled_by_algorithm_and_reason() {
        let registry = Registry::new();
        record_planner_choice_in(&registry, "AIS", "heuristic");
        record_planner_choice_in(&registry, "AIS", "feedback");
        record_planner_choice_in(&registry, "AIS", "feedback");
        record_planner_choice_in(&registry, "SPA", "explore");
        let text = registry.render();
        assert!(
            text.contains("ssrq_planner_choices_total{algorithm=\"AIS\",reason=\"feedback\"} 2")
        );
        assert!(
            text.contains("ssrq_planner_choices_total{algorithm=\"AIS\",reason=\"heuristic\"} 1")
        );
        assert!(text.contains("ssrq_planner_choices_total{algorithm=\"SPA\",reason=\"explore\"} 1"));
    }

    #[test]
    fn cache_events_map_to_their_own_counters() {
        let registry = Registry::new();
        record_cache_event_in(&registry, "hit", 1);
        record_cache_event_in(&registry, "hit", 1);
        record_cache_event_in(&registry, "miss", 1);
        record_cache_event_in(&registry, "invalidation", 5);
        let text = registry.render();
        assert!(text.contains("ssrq_cache_hits_total 2"));
        assert!(text.contains("ssrq_cache_misses_total 1"));
        assert!(text.contains("ssrq_cache_invalidations_total 5"));
    }

    #[test]
    #[should_panic(expected = "unknown cache event")]
    fn unknown_cache_events_are_rejected() {
        record_cache_event_in(&Registry::new(), "evict", 1);
    }
}
