use crate::{RankedUser, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The interim result `R` of an SSRQ query: the best `k` users seen so far
/// together with the threshold `f_k` (the worst score in `R`).
///
/// Every processing algorithm maintains one of these.  `f_k` is
/// `f64::INFINITY` while the result holds fewer than `k` users, so that any
/// user with a finite score is admitted — unless the query carries a score
/// *cutoff* ([`QueryRequest::max_score`](crate::QueryRequest::max_score)),
/// in which case `f_k` never exceeds the cutoff and candidates at or above
/// it are rejected even while the result is not yet full.  Routing the
/// cutoff through `f_k` means every algorithm's `θ ≥ f_k` termination test
/// automatically stops a search the moment its domain bound reaches the
/// cutoff.
///
/// `TopK` also tracks the highest *finalization bound* an algorithm has
/// observed (see [`TopK::raise_threshold`]): entries whose score lies
/// strictly below that bound can never be displaced by candidates the
/// search has not yet delivered, so they are final — membership *and* rank
/// — before the search completes.  This is the incremental-threshold
/// property behind [`QuerySession::stream`](crate::QuerySession::stream).
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Max-heap on score, so the worst entry is at the top and can be evicted
    // in O(log k).
    heap: BinaryHeap<HeapEntry>,
    /// Score cutoff: admitted scores are strictly below this.
    cap: f64,
    /// Highest finalization bound raised so far.
    threshold: f64,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry(RankedUser);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score && self.0.user == other.0.user
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .score
            .partial_cmp(&other.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.user.cmp(&other.0.user))
    }
}

impl TopK {
    /// Creates an empty interim result of capacity `k`.
    pub fn new(k: usize) -> Self {
        TopK::bounded(k, f64::INFINITY)
    }

    /// Creates an empty interim result of capacity `k` that only admits
    /// scores strictly below `cap`.
    pub fn bounded(k: usize, cap: f64) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            cap,
            threshold: f64::NEG_INFINITY,
        }
    }

    /// The interim result a request calls for: capacity `k`, capped by the
    /// request's score cutoff when one is set.
    pub fn for_request(request: &crate::QueryRequest) -> Self {
        TopK::bounded(request.k(), request.max_score().unwrap_or(f64::INFINITY))
    }

    /// The capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no user has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The threshold `f_k`: the worst score in the interim result, or the
    /// score cap (`INFINITY` without a cutoff) while fewer than `k` users
    /// are held.
    pub fn fk(&self) -> f64 {
        if self.heap.len() < self.k {
            self.cap
        } else {
            self.heap.peek().map(|e| e.0.score).unwrap_or(self.cap)
        }
    }

    /// Raises the finalization bound: the caller promises that every
    /// candidate it has *not yet offered* to [`TopK::consider`] has a
    /// ranking value of at least `bound`.  Entries already held with a
    /// score strictly below the bound are thereby final (no future
    /// candidate can evict or outrank them).
    ///
    /// The bound only ratchets upward; passing a smaller value than an
    /// earlier call is a no-op.
    pub fn raise_threshold(&mut self, bound: f64) {
        if bound > self.threshold {
            self.threshold = bound;
        }
    }

    /// Number of current entries that are already final under the highest
    /// bound raised so far: in ascending score order, the prefix of entries
    /// whose score lies strictly below the finalization bound.
    pub fn finalized(&self) -> usize {
        self.heap
            .iter()
            .filter(|e| e.0.score < self.threshold)
            .count()
    }

    /// The currently-final entries — score strictly below the highest bound
    /// raised so far — in the same ascending `(score, user)` order that
    /// [`TopK::into_sorted_vec`] reports.
    ///
    /// This prefix is *stable*: the bound only ratchets upward and
    /// [`TopK::consider`] is only ever offered candidates scoring at or
    /// above it, so later admissions can neither evict, outrank nor tie
    /// into the finalized prefix — subsequent calls return a superset with
    /// the earlier entries in unchanged positions.  The pull-lazy
    /// [`QueryStream`](crate::QueryStream) relies on exactly this property
    /// to emit result entries before the search completes.
    pub fn finalized_sorted(&self) -> Vec<RankedUser> {
        let mut v: Vec<RankedUser> = self
            .heap
            .iter()
            .filter(|e| e.0.score < self.threshold)
            .map(|e| e.0)
            .collect();
        v.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.user.cmp(&b.user))
        });
        v
    }

    /// Returns `true` when `user` is currently part of the interim result.
    pub fn contains(&self, user: UserId) -> bool {
        self.heap.iter().any(|e| e.0.user == user)
    }

    /// Offers a candidate.  The candidate is admitted when its score beats
    /// the current threshold `f_k` (so infinite scores, and scores at or
    /// above the cutoff of a capped result, are never admitted); the
    /// previously worst user is evicted if the result was full.
    ///
    /// Returns `true` when the candidate entered the result.
    pub fn consider(&mut self, candidate: RankedUser) -> bool {
        // `partial_cmp` so a NaN score (incomparable) is rejected too.
        let beats_fk = candidate.score.partial_cmp(&self.fk()) == Some(Ordering::Less);
        if self.k == 0 || !beats_fk || !candidate.score.is_finite() {
            return false;
        }
        if self.heap.len() == self.k {
            self.heap.pop();
        }
        self.heap.push(HeapEntry(candidate));
        true
    }

    /// Consumes the result and returns the users sorted by ascending score.
    pub fn into_sorted_vec(self) -> Vec<RankedUser> {
        let mut v: Vec<RankedUser> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.user.cmp(&b.user))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(user: UserId, score: f64) -> RankedUser {
        RankedUser {
            user,
            score,
            social: 0.0,
            spatial: score,
        }
    }

    #[test]
    fn fk_is_infinite_until_full() {
        let mut topk = TopK::new(3);
        assert!(topk.fk().is_infinite());
        assert!(topk.is_empty());
        topk.consider(entry(1, 0.5));
        topk.consider(entry(2, 0.2));
        assert!(topk.fk().is_infinite());
        topk.consider(entry(3, 0.9));
        assert_eq!(topk.fk(), 0.9);
        assert_eq!(topk.len(), 3);
        assert_eq!(topk.k(), 3);
    }

    #[test]
    fn better_candidates_evict_the_worst() {
        let mut topk = TopK::new(2);
        assert!(topk.consider(entry(1, 0.8)));
        assert!(topk.consider(entry(2, 0.6)));
        assert!(topk.consider(entry(3, 0.1)));
        assert!(!topk.consider(entry(4, 0.9)));
        let result = topk.into_sorted_vec();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].user, 3);
        assert_eq!(result[1].user, 2);
    }

    #[test]
    fn infinite_scores_are_rejected() {
        let mut topk = TopK::new(2);
        assert!(!topk.consider(entry(1, f64::INFINITY)));
        assert!(topk.is_empty());
    }

    #[test]
    fn contains_reflects_membership() {
        let mut topk = TopK::new(2);
        topk.consider(entry(5, 0.3));
        assert!(topk.contains(5));
        assert!(!topk.contains(6));
        topk.consider(entry(6, 0.2));
        topk.consider(entry(7, 0.1));
        assert!(!topk.contains(5)); // evicted
        assert!(topk.contains(7));
    }

    #[test]
    fn sorted_output_is_ascending_and_ties_break_on_user() {
        let mut topk = TopK::new(4);
        for (u, s) in [(4, 0.5), (2, 0.5), (9, 0.1), (7, 0.3)] {
            topk.consider(entry(u, s));
        }
        let out = topk.into_sorted_vec();
        let scores: Vec<f64> = out.iter().map(|r| r.score).collect();
        assert_eq!(scores, vec![0.1, 0.3, 0.5, 0.5]);
        assert_eq!(out[2].user, 2);
        assert_eq!(out[3].user, 4);
    }

    #[test]
    fn bounded_topk_rejects_scores_at_or_above_the_cap() {
        let mut topk = TopK::bounded(3, 0.5);
        assert_eq!(topk.fk(), 0.5); // cap acts as f_k while not full
        assert!(topk.consider(entry(1, 0.4)));
        assert!(!topk.consider(entry(2, 0.5))); // at the cap: rejected
        assert!(!topk.consider(entry(3, 0.9)));
        assert_eq!(topk.len(), 1);
        assert!(topk.consider(entry(4, 0.1)));
        assert!(topk.consider(entry(5, 0.2)));
        // Full now; fk is the worst admitted score, below the cap.
        assert_eq!(topk.fk(), 0.4);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let mut topk = TopK::new(0);
        assert!(!topk.consider(entry(1, 0.1)));
        assert!(topk.is_empty());
    }

    #[test]
    fn raise_threshold_finalizes_the_stable_prefix() {
        let mut topk = TopK::new(3);
        topk.consider(entry(1, 0.3));
        topk.consider(entry(2, 0.1));
        assert_eq!(topk.finalized(), 0);
        topk.raise_threshold(0.2);
        assert_eq!(topk.finalized(), 1); // only the 0.1 entry is final
        topk.raise_threshold(0.05); // ratchet: lower bounds are no-ops
        assert_eq!(topk.finalized(), 1);
        topk.raise_threshold(f64::INFINITY);
        assert_eq!(topk.finalized(), 2);
    }

    #[test]
    fn finalized_sorted_is_a_stable_ascending_prefix() {
        let mut topk = TopK::new(3);
        topk.consider(entry(4, 0.30));
        topk.consider(entry(2, 0.10));
        assert!(topk.finalized_sorted().is_empty());
        topk.raise_threshold(0.2);
        let first = topk.finalized_sorted();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].user, 2);
        // A later admission above the bound extends the prefix without
        // disturbing it.
        topk.consider(entry(9, 0.25));
        topk.raise_threshold(0.35);
        let second = topk.finalized_sorted();
        assert_eq!(
            second.iter().map(|e| e.user).collect::<Vec<_>>(),
            vec![2, 9, 4]
        );
        assert_eq!(second[0], first[0]);
        assert_eq!(topk.finalized(), second.len());
    }

    #[test]
    fn equal_score_does_not_evict() {
        let mut topk = TopK::new(1);
        topk.consider(entry(1, 0.5));
        assert!(!topk.consider(entry(2, 0.5)));
        assert!(topk.contains(1));
    }
}
