//! Correlation-controlled location assignment (Figure 14(a) of the paper).
//!
//! To study how the correlation between social and spatial proximity affects
//! the algorithms, the paper keeps the social distances of a real graph but
//! assigns artificial locations: the spatial distance of user `u` from an
//! anchor vertex is `d̄ = ρ · p(v_anchor, v_u) + ε` with `ρ = +1`
//! (positively correlated), `ρ = −1` (negatively correlated, implemented as
//! `1 − p + ε`), or an independent permutation of the positive assignment.
//! Each user is then placed on a random point of the circle of radius `d̄`
//! around the anchor.

use rand::prelude::*;
use rand::rngs::StdRng;
use ssrq_graph::{dijkstra_all, NodeId, SocialGraph};
use ssrq_spatial::Point;

/// The type of correlation between social and spatial distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Correlation {
    /// Socially close users are also spatially close.
    Positive,
    /// Locations of the positive assignment, randomly permuted.
    Independent,
    /// Socially close users are spatially far (and vice versa).
    Negative,
}

impl Correlation {
    /// All three correlation regimes, in the order Figure 14(a) plots them.
    pub const ALL: [Correlation; 3] = [
        Correlation::Positive,
        Correlation::Independent,
        Correlation::Negative,
    ];

    /// Display label.
    pub fn name(&self) -> &'static str {
        match self {
            Correlation::Positive => "positive",
            Correlation::Independent => "independent",
            Correlation::Negative => "negative",
        }
    }
}

/// Amplitude of the uniform noise `ε` added to the generated distances
/// (±0.15 in the paper).
pub const NOISE: f64 = 0.15;

/// Generates one location per user such that the spatial distance from the
/// `anchor` user correlates with the social distance as requested.
///
/// Users socially unreachable from the anchor receive `None` (they would
/// need an infinite radius); the anchor itself is placed at the centre of
/// the unit square.
pub fn correlated_locations(
    graph: &SocialGraph,
    anchor: NodeId,
    correlation: Correlation,
    seed: u64,
) -> Vec<Option<Point>> {
    let center = Point::new(0.5, 0.5);
    let social = dijkstra_all(graph, anchor);
    let max_social = social
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut locations: Vec<Option<Point>> = social
        .iter()
        .enumerate()
        .map(|(u, &p)| {
            if u as NodeId == anchor {
                return Some(center);
            }
            if !p.is_finite() {
                return None;
            }
            let p_norm = p / max_social;
            let noise = rng.gen_range(-NOISE..=NOISE);
            let base = match correlation {
                Correlation::Positive | Correlation::Independent => p_norm + noise,
                Correlation::Negative => (1.0 - p_norm) + noise,
            };
            // Normalize into [0, 0.5] so the circle stays inside the unit
            // square around the central anchor.
            let radius = (base.clamp(0.0, 1.0 + NOISE) / (1.0 + NOISE)) * 0.5;
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            Some(Point::new(
                (center.x + radius * angle.cos()).clamp(0.0, 1.0),
                (center.y + radius * angle.sin()).clamp(0.0, 1.0),
            ))
        })
        .collect();

    if correlation == Correlation::Independent {
        // Permute the generated locations among the located users (keeping
        // the anchor fixed), destroying the correlation while preserving the
        // spatial distribution.
        let mut indices: Vec<usize> = locations
            .iter()
            .enumerate()
            .filter(|&(u, p)| p.is_some() && u as NodeId != anchor)
            .map(|(u, _)| u)
            .collect();
        let mut points: Vec<Point> = indices.iter().map(|&u| locations[u].unwrap()).collect();
        points.shuffle(&mut rng);
        indices.sort_unstable();
        for (slot, point) in indices.into_iter().zip(points) {
            locations[slot] = Some(point);
        }
    }
    locations
}

/// Pearson correlation coefficient between social and spatial distances from
/// `anchor`, over users with both values finite.  Used by tests and the
/// experiment harness to verify the generated regimes.
pub fn measure_correlation(
    graph: &SocialGraph,
    anchor: NodeId,
    locations: &[Option<Point>],
) -> f64 {
    let social = dijkstra_all(graph, anchor);
    let anchor_loc = match locations.get(anchor as usize).copied().flatten() {
        Some(p) => p,
        None => return 0.0,
    };
    let pairs: Vec<(f64, f64)> = locations
        .iter()
        .enumerate()
        .filter(|&(u, _)| u as NodeId != anchor)
        .filter_map(|(u, loc)| {
            let loc = (*loc)?;
            let p = social[u];
            if p.is_finite() {
                Some((p, loc.distance(anchor_loc)))
            } else {
                None
            }
        })
        .collect();
    if pairs.len() < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in pairs {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::preferential_attachment;
    use crate::weights::degree_weights;

    fn graph() -> SocialGraph {
        degree_weights(&preferential_attachment(800, 4, 21))
    }

    #[test]
    fn positive_correlation_is_strongly_positive() {
        let g = graph();
        let locs = correlated_locations(&g, 0, Correlation::Positive, 5);
        let r = measure_correlation(&g, 0, &locs);
        assert!(r > 0.6, "expected strong positive correlation, got {r}");
    }

    #[test]
    fn negative_correlation_is_strongly_negative() {
        let g = graph();
        let locs = correlated_locations(&g, 0, Correlation::Negative, 5);
        let r = measure_correlation(&g, 0, &locs);
        assert!(r < -0.6, "expected strong negative correlation, got {r}");
    }

    #[test]
    fn independent_correlation_is_near_zero() {
        let g = graph();
        let locs = correlated_locations(&g, 0, Correlation::Independent, 5);
        let r = measure_correlation(&g, 0, &locs);
        assert!(r.abs() < 0.2, "expected weak correlation, got {r}");
    }

    #[test]
    fn anchor_sits_at_the_centre_and_unreachable_users_are_unlocated() {
        let g = ssrq_graph::GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let locs = correlated_locations(&g, 0, Correlation::Positive, 1);
        assert_eq!(locs[0], Some(Point::new(0.5, 0.5)));
        assert!(locs[1].is_some());
        assert!(locs[2].is_some());
        assert!(locs[3].is_none()); // vertex 3 is isolated
    }

    #[test]
    fn all_locations_stay_inside_the_unit_square() {
        let g = graph();
        for c in Correlation::ALL {
            for p in correlated_locations(&g, 3, c, 8).into_iter().flatten() {
                assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = Correlation::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["positive", "independent", "negative"]);
    }
}
