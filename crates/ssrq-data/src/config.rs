//! Dataset presets mirroring the paper's three real datasets at configurable
//! scale.

use crate::generators::preferential_attachment;
use crate::locations::{generate_locations, LocationModel};
use crate::weights::degree_weights;
use ssrq_core::GeoSocialDataset;
use ssrq_graph::SocialGraph;
use ssrq_spatial::Point;

/// Configuration for generating a synthetic geo-social dataset.
///
/// The presets reproduce the structural characteristics of Table 2 of the
/// paper (average degree, location coverage) at any requested scale:
///
/// | Preset | Mirrors | Avg. degree | Location coverage |
/// |---|---|---|---|
/// | [`DatasetConfig::gowalla_like`] | Gowalla (196K users) | ≈ 9.7 | 54.4 % |
/// | [`DatasetConfig::foursquare_like`] | Foursquare (1.88M users) | ≈ 9.5 | 60.3 % |
/// | [`DatasetConfig::twitter_like`] | Twitter-Singapore (124K users) | ≈ 57.7 | 100 % |
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Label used in reports (e.g. "gowalla-like").
    pub name: String,
    /// Number of users `|V|`.
    pub num_users: usize,
    /// Target average vertex degree.
    pub target_degree: f64,
    /// Fraction of users with a known location.
    pub location_coverage: f64,
    /// Number of spatial clusters ("cities") locations concentrate around.
    pub spatial_clusters: usize,
    /// Standard deviation of the per-cluster scatter.
    pub cluster_spread: f64,
    /// RNG seed (graph topology, locations and coverage all derive from it).
    pub seed: u64,
}

impl DatasetConfig {
    /// A Gowalla-like dataset: average degree ≈ 9.7, 54.4 % located users.
    pub fn gowalla_like(num_users: usize) -> Self {
        DatasetConfig {
            name: "gowalla-like".into(),
            num_users,
            target_degree: 9.7,
            location_coverage: 0.544,
            spatial_clusters: 40,
            cluster_spread: 0.05,
            seed: 0xA11CE,
        }
    }

    /// A Foursquare-like dataset: average degree ≈ 9.5, 60.3 % located
    /// users.  The paper's Foursquare is ~10× larger than Gowalla; pick
    /// `num_users` accordingly.
    pub fn foursquare_like(num_users: usize) -> Self {
        DatasetConfig {
            name: "foursquare-like".into(),
            num_users,
            target_degree: 9.5,
            location_coverage: 0.603,
            spatial_clusters: 80,
            cluster_spread: 0.04,
            seed: 0xF0E5,
        }
    }

    /// A Twitter-Singapore-like dataset: high average degree ≈ 57.7, every
    /// user located, compact spatial extent (few clusters).
    pub fn twitter_like(num_users: usize) -> Self {
        DatasetConfig {
            name: "twitter-like".into(),
            num_users,
            target_degree: 57.7,
            location_coverage: 1.0,
            spatial_clusters: 8,
            cluster_spread: 0.08,
            seed: 0x7117,
        }
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the user count (builder style).
    pub fn with_users(mut self, num_users: usize) -> Self {
        self.num_users = num_users;
        self
    }

    /// Generates the social graph only (degree-derived weights applied).
    pub fn generate_graph(&self) -> SocialGraph {
        let edges_per_node = ((self.target_degree / 2.0).round() as usize).max(1);
        degree_weights(&preferential_attachment(
            self.num_users,
            edges_per_node,
            self.seed,
        ))
    }

    /// Generates a location list that ignores the social structure
    /// (independent clustered locations); mainly useful for ablations — the
    /// default pipeline uses socially-correlated locations instead.
    pub fn generate_locations(&self) -> Vec<Option<Point>> {
        generate_locations(
            self.num_users,
            LocationModel::Clustered {
                clusters: self.spatial_clusters,
                spread: self.cluster_spread,
            },
            self.location_coverage,
            self.seed ^ 0x10CA_7105,
        )
    }

    /// Generates locations that correlate with the friendship structure
    /// (friends tend to share a city), as observed in real location-based
    /// social networks.
    pub fn generate_social_locations(&self, graph: &SocialGraph) -> Vec<Option<Point>> {
        crate::locations::social_cluster_locations(
            graph,
            self.spatial_clusters,
            self.cluster_spread,
            self.location_coverage,
            self.seed ^ 0x10CA_7105,
        )
    }

    /// Generates the full dataset (graph + socially-correlated locations).
    ///
    /// # Panics
    ///
    /// Panics if the configuration produces a dataset without a single
    /// located user (e.g. `location_coverage = 0`); use
    /// [`GeoSocialDataset::new`] directly for full error control.
    pub fn generate(&self) -> GeoSocialDataset {
        let graph = self.generate_graph();
        let mut locations = self.generate_social_locations(&graph);
        if locations.iter().flatten().count() == 0 {
            // Guarantee at least one located user so the dataset constructor
            // succeeds even for extreme configurations.
            if let Some(slot) = locations.first_mut() {
                *slot = Some(Point::new(0.5, 0.5));
            }
        }
        GeoSocialDataset::new(graph, locations).expect("generated dataset is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gowalla_preset_matches_paper_characteristics() {
        let ds = DatasetConfig::gowalla_like(3_000).generate();
        assert_eq!(ds.user_count(), 3_000);
        let avg = ds.graph().average_degree();
        assert!((avg - 9.7).abs() < 2.0, "avg degree {avg}");
        let coverage = ds.located_user_count() as f64 / ds.user_count() as f64;
        assert!((coverage - 0.544).abs() < 0.05, "coverage {coverage}");
    }

    #[test]
    fn twitter_preset_has_high_degree_and_full_coverage() {
        let ds = DatasetConfig::twitter_like(1_500).generate();
        assert!(ds.graph().average_degree() > 40.0);
        assert_eq!(ds.located_user_count(), 1_500);
    }

    #[test]
    fn foursquare_preset_scales() {
        let small = DatasetConfig::foursquare_like(500).generate();
        let large = DatasetConfig::foursquare_like(2_000).generate();
        assert_eq!(small.user_count(), 500);
        assert_eq!(large.user_count(), 2_000);
        // Degree characteristics are preserved across scales.
        assert!((small.graph().average_degree() - large.graph().average_degree()).abs() < 3.0);
    }

    #[test]
    fn builders_override_seed_and_size() {
        let a = DatasetConfig::gowalla_like(400).with_seed(1).generate();
        let b = DatasetConfig::gowalla_like(400).with_seed(2).generate();
        assert_ne!(
            a.graph().edge_count() * 31 + a.located_user_count(),
            b.graph().edge_count() * 31 + b.located_user_count(),
            "different seeds should give different datasets"
        );
        let c = DatasetConfig::gowalla_like(100).with_users(250).generate();
        assert_eq!(c.user_count(), 250);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = DatasetConfig::foursquare_like(600).generate();
        let b = DatasetConfig::foursquare_like(600).generate();
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        assert_eq!(a.located_user_count(), b.located_user_count());
        assert_eq!(a.location(17), b.location(17));
    }

    #[test]
    fn degenerate_coverage_still_produces_a_valid_dataset() {
        let mut cfg = DatasetConfig::gowalla_like(50);
        cfg.location_coverage = 0.0;
        let ds = cfg.generate();
        assert!(ds.located_user_count() >= 1);
    }
}
