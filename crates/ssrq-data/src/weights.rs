//! Edge-weight assignment.
//!
//! Real social networks expose no explicit tie-strength information, so the
//! paper derives weights from vertex degrees (§6): the more friends a user
//! has, the looser each individual connection, i.e.
//! `w(v_i, v_j) = deg(v_i) · deg(v_j) / max_deg²`.

use ssrq_graph::{GraphBuilder, SocialGraph};

/// Smallest weight ever assigned; guards against zero-weight edges (the
/// graph substrate requires strictly positive weights and a zero weight
/// would let shortest paths traverse edges "for free").
pub const MIN_WEIGHT: f64 = 1e-9;

/// Reweights every edge of `graph` with the paper's degree product formula
/// `deg(v_i) · deg(v_j) / max_deg²`, returning a new graph with identical
/// topology.
pub fn degree_weights(graph: &SocialGraph) -> SocialGraph {
    let max_degree = graph.max_degree().max(1) as f64;
    let mut builder = GraphBuilder::new(graph.node_count());
    for (u, v, _) in graph.undirected_edges() {
        let w = (graph.degree(u) as f64 * graph.degree(v) as f64) / (max_degree * max_degree);
        builder
            .add_edge(u, v, w.max(MIN_WEIGHT))
            .expect("edge endpoints come from the source graph");
    }
    builder.build()
}

/// Reweights every edge with a constant weight (hop-count distances).
pub fn uniform_weights(graph: &SocialGraph, weight: f64) -> SocialGraph {
    let weight = weight.max(MIN_WEIGHT);
    let mut builder = GraphBuilder::new(graph.node_count());
    for (u, v, _) in graph.undirected_edges() {
        builder
            .add_edge(u, v, weight)
            .expect("edge endpoints come from the source graph");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;

    fn star_plus_edge() -> SocialGraph {
        // Hub 0 with 4 leaves, plus an edge between two leaves.
        GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (0, 4, 1.0),
                (1, 2, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn degree_weights_follow_the_formula() {
        let g = star_plus_edge();
        let weighted = degree_weights(&g);
        // max_degree = 4 (the hub).
        // Edge (0, 1): deg 4 * deg 2 / 16 = 0.5.
        assert!((weighted.edge_weight(0, 1).unwrap() - 0.5).abs() < 1e-12);
        // Edge (0, 3): deg 4 * deg 1 / 16 = 0.25.
        assert!((weighted.edge_weight(0, 3).unwrap() - 0.25).abs() < 1e-12);
        // Edge (1, 2): deg 2 * deg 2 / 16 = 0.25.
        assert!((weighted.edge_weight(1, 2).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn topology_is_preserved() {
        let g = star_plus_edge();
        let weighted = degree_weights(&g);
        assert_eq!(weighted.node_count(), g.node_count());
        assert_eq!(weighted.edge_count(), g.edge_count());
        for (u, v, _) in g.undirected_edges() {
            assert!(weighted.edge_weight(u, v).is_some());
        }
    }

    #[test]
    fn hub_edges_are_weaker_than_leaf_edges() {
        // The formula makes connections of well-connected users weaker
        // (larger weight = weaker tie).
        let g = star_plus_edge();
        let weighted = degree_weights(&g);
        assert!(weighted.edge_weight(0, 1).unwrap() > weighted.edge_weight(0, 3).unwrap());
    }

    #[test]
    fn weights_are_strictly_positive() {
        let g = star_plus_edge();
        for (_, _, w) in degree_weights(&g).undirected_edges() {
            assert!(w >= MIN_WEIGHT);
        }
    }

    #[test]
    fn uniform_weights_assigns_constant() {
        let g = star_plus_edge();
        let w = uniform_weights(&g, 2.5);
        for (_, _, weight) in w.undirected_edges() {
            assert_eq!(weight, 2.5);
        }
        // Zero and negative weights are clamped to the minimum.
        let w = uniform_weights(&g, 0.0);
        for (_, _, weight) in w.undirected_edges() {
            assert_eq!(weight, MIN_WEIGHT);
        }
    }
}
