//! Synthetic social-graph topology generators.
//!
//! The SSRQ algorithms are sensitive to the degree distribution (hubs make
//! Dijkstra frontiers explode) and to the hop diameter (how many hops a
//! top-k result may be away, Figure 7(a)).  Real location-based social
//! networks are scale-free with small diameter, which the preferential
//! attachment model reproduces; a Watts–Strogatz small-world generator is
//! provided for ablations on graphs without hubs.

use rand::prelude::*;
use rand::rngs::StdRng;
use ssrq_graph::{GraphBuilder, NodeId, SocialGraph};

/// Generates a scale-free graph with `n` vertices by preferential attachment
/// (Barabási–Albert): every new vertex attaches to `edges_per_node` distinct
/// existing vertices chosen with probability proportional to their degree.
///
/// The resulting average degree approaches `2 · edges_per_node`.  All edge
/// weights are 1.0; use [`crate::weights::degree_weights`] to assign the
/// paper's degree-derived weights afterwards.
pub fn preferential_attachment(n: usize, edges_per_node: usize, seed: u64) -> SocialGraph {
    let m = edges_per_node.max(1);
    if n <= 1 {
        return GraphBuilder::new(n).build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Endpoint multiset: each vertex appears once per incident edge, so a
    // uniform draw from it is a degree-proportional draw.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // Seed clique/ring over the first `m0 = m + 1` vertices (or all of them
    // for tiny graphs).
    let m0 = (m + 1).min(n);
    for i in 0..m0 {
        let j = (i + 1) % m0;
        if i as NodeId != j as NodeId {
            let _ = builder.add_edge(i as NodeId, j as NodeId, 1.0);
            endpoints.push(i as NodeId);
            endpoints.push(j as NodeId);
        }
    }

    for v in m0..n {
        let v = v as NodeId;
        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m.min(v as usize) && guard < 50 * m {
            guard += 1;
            let candidate = if endpoints.is_empty() || rng.gen_bool(0.05) {
                // Small uniform component keeps early vertices reachable and
                // avoids pathological star graphs for tiny seeds.
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if candidate != v && !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for t in targets {
            let _ = builder.add_edge(v, t, 1.0);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Generates a Watts–Strogatz small-world graph: a ring lattice where every
/// vertex connects to its `k_nearest` nearest ring neighbours, with each
/// edge rewired to a random endpoint with probability `rewire_prob`.
pub fn small_world(n: usize, k_nearest: usize, rewire_prob: f64, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if n <= 1 {
        return builder.build();
    }
    let half = (k_nearest / 2).max(1);
    for i in 0..n {
        for offset in 1..=half {
            let mut j = (i + offset) % n;
            if rng.gen_bool(rewire_prob.clamp(0.0, 1.0)) {
                // Rewire to a random endpoint distinct from i.
                let mut attempts = 0;
                loop {
                    let candidate = rng.gen_range(0..n);
                    attempts += 1;
                    if candidate != i || attempts > 20 {
                        j = candidate;
                        break;
                    }
                }
            }
            if i != j {
                let _ = builder.add_edge(i as NodeId, j as NodeId, 1.0);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferential_attachment_reaches_target_degree() {
        let g = preferential_attachment(2_000, 5, 42);
        assert_eq!(g.node_count(), 2_000);
        let avg = g.average_degree();
        assert!(
            (avg - 10.0).abs() < 1.5,
            "average degree {avg} not close to 10"
        );
    }

    #[test]
    fn preferential_attachment_produces_hubs() {
        let g = preferential_attachment(3_000, 4, 7);
        // Scale-free graphs have hubs far above the average degree.
        assert!(g.max_degree() > 5 * g.average_degree() as usize);
    }

    #[test]
    fn preferential_attachment_is_mostly_connected() {
        let g = preferential_attachment(1_000, 3, 9);
        let dist = ssrq_graph::dijkstra_all(&g, 0);
        let reachable = dist.iter().filter(|d| d.is_finite()).count();
        assert!(
            reachable as f64 > 0.99 * g.node_count() as f64,
            "only {reachable} vertices reachable"
        );
    }

    #[test]
    fn preferential_attachment_is_deterministic_per_seed() {
        let a = preferential_attachment(500, 4, 11);
        let b = preferential_attachment(500, 4, 11);
        assert_eq!(a.edge_count(), b.edge_count());
        let c = preferential_attachment(500, 4, 12);
        // Different seed virtually always gives a different topology.
        assert!(a.edge_count() != c.edge_count() || a.max_degree() != c.max_degree());
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        assert_eq!(preferential_attachment(0, 3, 1).node_count(), 0);
        assert_eq!(preferential_attachment(1, 3, 1).node_count(), 1);
        let g = preferential_attachment(2, 3, 1);
        assert_eq!(g.node_count(), 2);
        assert!(g.edge_count() <= 1);
        assert_eq!(small_world(1, 4, 0.1, 1).node_count(), 1);
    }

    #[test]
    fn small_world_has_uniform_degrees_without_rewiring() {
        let g = small_world(200, 6, 0.0, 3);
        assert_eq!(g.node_count(), 200);
        // Ring lattice with k/2 = 3 neighbours on each side -> degree 6.
        assert!((g.average_degree() - 6.0).abs() < 0.5);
        assert!(g.max_degree() <= 7);
    }

    #[test]
    fn small_world_rewiring_keeps_edge_count_stable() {
        let regular = small_world(300, 8, 0.0, 5);
        let rewired = small_world(300, 8, 0.3, 5);
        let diff = (regular.edge_count() as i64 - rewired.edge_count() as i64).abs();
        // Rewiring may merge a few duplicate edges but not many.
        assert!(diff < regular.edge_count() as i64 / 10);
    }
}
