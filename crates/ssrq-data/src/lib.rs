//! Synthetic geo-social datasets and query workloads for the SSRQ system.
//!
//! The paper evaluates on the Gowalla, Foursquare and Twitter-Singapore
//! snapshots, which are not redistributable.  This crate builds synthetic
//! substitutes that preserve the structural properties the SSRQ algorithms
//! are sensitive to (see `DESIGN.md`, §3 *Substitutions*):
//!
//! * scale-free social graphs with a configurable average degree
//!   (preferential attachment, [`generators`]);
//! * the paper's own degree-derived edge weights
//!   (`w(v_i, v_j) = deg(v_i)·deg(v_j) / max_deg²`, [`weights`]);
//! * clustered "check-in style" locations with partial coverage
//!   ([`locations`]), plus the correlation-controlled location assignment
//!   used by Figure 14(a) ([`correlation`]);
//! * structure-preserving Forest Fire Sampling for the scalability
//!   experiment of Figure 14(b) ([`sampling`]);
//! * dataset statistics (Table 2, [`stats`]), Jaccard set similarity
//!   (Figure 7(b), [`jaccard()`]) and random query workloads ([`workload`]).
//!
//! The ready-made presets ([`DatasetConfig::gowalla_like`],
//! [`DatasetConfig::foursquare_like`], [`DatasetConfig::twitter_like`])
//! mirror the three real datasets at a configurable scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod correlation;
pub mod generators;
pub mod jaccard;
pub mod locations;
pub mod sampling;
pub mod stats;
pub mod weights;
pub mod workload;

pub use config::DatasetConfig;
pub use correlation::{correlated_locations, Correlation};
pub use jaccard::jaccard;
pub use locations::{generate_locations, social_cluster_locations, LocationModel};
pub use sampling::forest_fire_sample;
pub use stats::DataStatistics;
pub use workload::QueryWorkload;

// Re-exported so downstream users of this crate get the container type
// without naming `ssrq-core` explicitly.
pub use ssrq_core::GeoSocialDataset;
