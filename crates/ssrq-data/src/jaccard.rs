//! Jaccard set similarity, used by Figure 7(b) to compare the SSRQ result
//! against the purely-social and purely-spatial top-k sets.

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard similarity of two sets given as slices: `|A ∩ B| / |A ∪ B|`.
///
/// Duplicates within a slice are ignored.  Two empty sets have similarity 1
/// (they are identical).
pub fn jaccard<T: Eq + Hash + Copy>(a: &[T], b: &[T]) -> f64 {
    let sa: HashSet<T> = a.iter().copied().collect();
    let sb: HashSet<T> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_similarity_one() {
        assert_eq!(jaccard(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(jaccard::<u32>(&[], &[]), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {1,2,3} vs {2,3,4}: intersection 2, union 4.
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_ignored() {
        assert_eq!(jaccard(&[1, 1, 2, 2], &[1, 2]), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = [5u32, 9, 11, 2];
        let b = [9u32, 7, 2];
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }
}
