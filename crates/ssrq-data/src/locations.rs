//! User-location assignment.
//!
//! Check-in locations in real location-based social networks cluster around
//! cities and venues; the generators here produce comparable clustered
//! point sets inside the unit square, with a configurable fraction of users
//! lacking any location (the paper's Gowalla/Foursquare snapshots cover only
//! 54 % / 60 % of users — the rest are "infinitely far away").

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr_normal::sample_normal;
use ssrq_spatial::Point;

/// The spatial distribution model for generated locations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocationModel {
    /// Uniformly random inside the unit square.
    Uniform,
    /// Gaussian clusters ("cities"): cluster centres are uniform, users
    /// scatter around a randomly chosen centre with the given standard
    /// deviation.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of the per-cluster scatter.
        spread: f64,
    },
}

/// Generates locations for `n` users.
///
/// `coverage` is the fraction of users that receive a location (the rest get
/// `None`); which users are covered is decided uniformly at random.
pub fn generate_locations(
    n: usize,
    model: LocationModel,
    coverage: f64,
    seed: u64,
) -> Vec<Option<Point>> {
    let coverage = coverage.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = match model {
        LocationModel::Uniform => Vec::new(),
        LocationModel::Clustered { clusters, .. } => (0..clusters.max(1))
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect(),
    };
    (0..n)
        .map(|_| {
            if !rng.gen_bool(coverage) {
                return None;
            }
            let p = match model {
                LocationModel::Uniform => Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                LocationModel::Clustered { spread, .. } => {
                    let c = centers[rng.gen_range(0..centers.len())];
                    Point::new(
                        (c.x + sample_normal(&mut rng) * spread).clamp(0.0, 1.0),
                        (c.y + sample_normal(&mut rng) * spread).clamp(0.0, 1.0),
                    )
                }
            };
            Some(p)
        })
        .collect()
}

/// Generates locations that correlate with the social structure, the way
/// real location-based social networks do (friends tend to live in the same
/// city — Cho et al., cited as \[19\] in the paper).
///
/// `clusters` random "cities" are placed in the unit square and seeded with
/// one random user each; every other user joins the city of whichever seed
/// reaches it first in a multi-source BFS over the social graph, then
/// scatters around that city's centre with standard deviation `spread`.
/// Users in components no seed reaches fall back to a random city.
/// `coverage` is the fraction of users that receive a location at all.
pub fn social_cluster_locations(
    graph: &ssrq_graph::SocialGraph,
    clusters: usize,
    spread: f64,
    coverage: f64,
    seed: u64,
) -> Vec<Option<Point>> {
    use std::collections::VecDeque;

    let n = graph.node_count();
    let coverage = coverage.clamp(0.0, 1.0);
    let clusters = clusters.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    // Multi-source BFS: each user inherits the city of the first seed that
    // reaches it through the friendship graph.
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    if n > 0 {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for (cluster, &user) in order.iter().take(clusters).enumerate() {
            assignment[user] = Some(cluster % clusters);
            queue.push_back(user);
        }
    }
    while let Some(user) = queue.pop_front() {
        let cluster = assignment[user].expect("queued users are assigned");
        for edge in graph.neighbors(user as u32) {
            let next = edge.to as usize;
            if assignment[next].is_none() {
                assignment[next] = Some(cluster);
                queue.push_back(next);
            }
        }
    }

    (0..n)
        .map(|user| {
            if !rng.gen_bool(coverage) {
                return None;
            }
            let cluster = assignment[user].unwrap_or_else(|| rng.gen_range(0..clusters));
            let c = centers[cluster];
            Some(Point::new(
                (c.x + sample_normal(&mut rng) * spread).clamp(0.0, 1.0),
                (c.y + sample_normal(&mut rng) * spread).clamp(0.0, 1.0),
            ))
        })
        .collect()
}

/// A tiny Box–Muller standard-normal sampler, avoiding an extra dependency
/// on `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one sample from the standard normal distribution.
    pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_cluster_locations_place_friends_closer_than_strangers() {
        // The defining property of the socially-derived assignment: friends
        // (adjacent vertices) are much closer in space, on average, than
        // random user pairs — the "friends share a city" effect of real
        // location-based social networks.
        let graph = crate::weights::degree_weights(&crate::generators::preferential_attachment(
            1_500, 5, 7,
        ));
        let locs = social_cluster_locations(&graph, 25, 0.03, 1.0, 5);
        let mut friend_total = 0.0;
        let mut friend_count = 0usize;
        for (u, v, _) in graph.undirected_edges() {
            if let (Some(a), Some(b)) = (locs[u as usize], locs[v as usize]) {
                friend_total += a.distance(b);
                friend_count += 1;
            }
        }
        let mut random_total = 0.0;
        let mut random_count = 0usize;
        for i in (0..1_400).step_by(7) {
            if let (Some(a), Some(b)) = (locs[i], locs[i + 53]) {
                random_total += a.distance(b);
                random_count += 1;
            }
        }
        let friend_avg = friend_total / friend_count.max(1) as f64;
        let random_avg = random_total / random_count.max(1) as f64;
        // On a hub-dominated scale-free graph many friendships run through
        // hubs sitting in other cities, so the gap is modest — but it must
        // be there.
        assert!(
            friend_avg < 0.95 * random_avg,
            "friends ({friend_avg:.3}) should be closer than random pairs ({random_avg:.3})"
        );
    }

    #[test]
    fn social_cluster_locations_respect_coverage_and_bounds() {
        let graph = crate::generators::preferential_attachment(2_000, 4, 3);
        let locs = social_cluster_locations(&graph, 20, 0.05, 0.6, 9);
        let covered = locs.iter().flatten().count() as f64 / 2_000.0;
        assert!((covered - 0.6).abs() < 0.05);
        for p in locs.into_iter().flatten() {
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn coverage_fraction_is_respected() {
        let locs = generate_locations(10_000, LocationModel::Uniform, 0.6, 1);
        let covered = locs.iter().flatten().count();
        let ratio = covered as f64 / 10_000.0;
        assert!((ratio - 0.6).abs() < 0.03, "coverage {ratio}");
    }

    #[test]
    fn full_and_zero_coverage() {
        let all = generate_locations(500, LocationModel::Uniform, 1.0, 2);
        assert_eq!(all.iter().flatten().count(), 500);
        let none = generate_locations(500, LocationModel::Uniform, 0.0, 2);
        assert_eq!(none.iter().flatten().count(), 0);
    }

    #[test]
    fn all_points_lie_in_the_unit_square() {
        for model in [
            LocationModel::Uniform,
            LocationModel::Clustered {
                clusters: 5,
                spread: 0.3,
            },
        ] {
            for p in generate_locations(2_000, model, 1.0, 3)
                .into_iter()
                .flatten()
            {
                assert!((0.0..=1.0).contains(&p.x));
                assert!((0.0..=1.0).contains(&p.y));
                assert!(p.is_finite());
            }
        }
    }

    #[test]
    fn clustered_locations_are_more_concentrated_than_uniform() {
        let uniform = generate_locations(5_000, LocationModel::Uniform, 1.0, 4);
        let clustered = generate_locations(
            5_000,
            LocationModel::Clustered {
                clusters: 4,
                spread: 0.02,
            },
            1.0,
            4,
        );
        // Mean nearest-cluster-free proxy: the average pairwise distance of a
        // sample is clearly smaller for tightly clustered data.
        let avg = |pts: &[Option<Point>]| {
            let sample: Vec<Point> = pts.iter().flatten().take(300).copied().collect();
            let mut total = 0.0;
            let mut count = 0usize;
            for i in 0..sample.len() {
                for j in (i + 1)..sample.len() {
                    total += sample[i].distance(sample[j]);
                    count += 1;
                }
            }
            total / count as f64
        };
        assert!(avg(&clustered) < avg(&uniform));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_locations(100, LocationModel::Uniform, 0.5, 9);
        let b = generate_locations(100, LocationModel::Uniform, 0.5, 9);
        assert_eq!(a, b);
        let c = generate_locations(100, LocationModel::Uniform, 0.5, 10);
        assert_ne!(a, c);
    }
}
