//! Query-workload generation.
//!
//! The paper averages every measurement over 1,000 random SSRQ queries; this
//! module draws the corresponding random query users (users that have both a
//! location and at least one friend, so that every algorithm has meaningful
//! work to do).

use rand::prelude::*;
use rand::rngs::StdRng;
use ssrq_core::{Algorithm, GeoSocialDataset, QueryRequest, UserId};

/// A reproducible set of query users together with default query
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkload {
    /// The selected query users.
    pub users: Vec<UserId>,
    /// Result size `k` applied to every query.
    pub k: usize,
    /// Preference parameter `α` applied to every query.
    pub alpha: f64,
}

impl QueryWorkload {
    /// Draws `count` distinct query users uniformly at random among users
    /// that have a location and at least one social connection.  If fewer
    /// eligible users exist, all of them are returned.
    pub fn generate(dataset: &GeoSocialDataset, count: usize, seed: u64) -> Self {
        let mut eligible: Vec<UserId> = dataset
            .graph()
            .nodes()
            .filter(|&u| dataset.location(u).is_some() && dataset.graph().degree(u) > 0)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        eligible.shuffle(&mut rng);
        eligible.truncate(count);
        QueryWorkload {
            users: eligible,
            k: 30,
            alpha: 0.3,
        }
    }

    /// Sets the result size `k` (builder style).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the preference parameter `α` (builder style).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// One validated [`QueryRequest`] per query user, carrying the
    /// workload's `k` / `α` and the given algorithm.
    pub fn requests(&self, algorithm: Algorithm) -> impl Iterator<Item = QueryRequest> + '_ {
        self.users.iter().map(move |&u| {
            QueryRequest::for_user(u)
                .k(self.k)
                .alpha(self.alpha)
                .algorithm(algorithm)
                .build()
                .expect("workload parameters are valid")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;

    fn dataset() -> GeoSocialDataset {
        DatasetConfig::gowalla_like(1_500).with_seed(5).generate()
    }

    #[test]
    fn all_query_users_are_eligible() {
        let ds = dataset();
        let workload = QueryWorkload::generate(&ds, 200, 1);
        assert_eq!(workload.len(), 200);
        for &u in &workload.users {
            assert!(ds.location(u).is_some());
            assert!(ds.graph().degree(u) > 0);
        }
    }

    #[test]
    fn users_are_distinct_and_reproducible() {
        let ds = dataset();
        let a = QueryWorkload::generate(&ds, 100, 9);
        let b = QueryWorkload::generate(&ds, 100, 9);
        assert_eq!(a, b);
        let mut sorted = a.users.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.users.len());
        let c = QueryWorkload::generate(&ds, 100, 10);
        assert_ne!(a.users, c.users);
    }

    #[test]
    fn builder_setters_apply() {
        let ds = dataset();
        let workload = QueryWorkload::generate(&ds, 10, 2)
            .with_k(50)
            .with_alpha(0.7);
        assert_eq!(workload.k, 50);
        assert_eq!(workload.alpha, 0.7);
        let requests: Vec<QueryRequest> = workload.requests(Algorithm::Ais).collect();
        assert_eq!(requests.len(), 10);
        assert!(requests.iter().all(|r| r.k() == 50 && r.alpha() == 0.7));
        assert!(!workload.is_empty());
    }

    #[test]
    fn requesting_more_queries_than_eligible_users_returns_all() {
        let ds = DatasetConfig::gowalla_like(120).with_seed(3).generate();
        let workload = QueryWorkload::generate(&ds, 100_000, 4);
        assert!(workload.len() <= 120);
        assert!(!workload.is_empty());
    }
}
