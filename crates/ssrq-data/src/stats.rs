//! Dataset statistics (Table 2 of the paper).

use ssrq_core::GeoSocialDataset;

/// The per-dataset statistics the paper reports in Table 2: vertex count,
/// edge count, number of available locations and average vertex degree.
#[derive(Debug, Clone, PartialEq)]
pub struct DataStatistics {
    /// Dataset label (e.g. "gowalla-like").
    pub name: String,
    /// `|V|`.
    pub vertices: usize,
    /// `|E|`.
    pub edges: usize,
    /// Number of users with a known location.
    pub locations: usize,
    /// Average vertex degree `2|E| / |V|`.
    pub average_degree: f64,
    /// Fraction of users with a known location.
    pub location_coverage: f64,
}

impl DataStatistics {
    /// Computes the statistics of a dataset.
    pub fn compute(name: impl Into<String>, dataset: &GeoSocialDataset) -> Self {
        let vertices = dataset.user_count();
        let located = dataset.located_user_count();
        DataStatistics {
            name: name.into(),
            vertices,
            edges: dataset.graph().edge_count(),
            locations: located,
            average_degree: dataset.graph().average_degree(),
            location_coverage: if vertices == 0 {
                0.0
            } else {
                located as f64 / vertices as f64
            },
        }
    }

    /// Formats the statistics as one row of the paper's Table 2.
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>10} {:>12} {:>12} {:>8.1}",
            self.name, self.vertices, self.edges, self.locations, self.average_degree
        )
    }

    /// The header matching [`DataStatistics::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>10} {:>12} {:>12} {:>8}",
            "Name", "|V|", "|E|", "#locations", "Deg."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;

    #[test]
    fn statistics_match_the_dataset() {
        let graph =
            GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let locations = vec![
            Some(Point::new(0.1, 0.1)),
            Some(Point::new(0.2, 0.2)),
            None,
            Some(Point::new(0.3, 0.3)),
        ];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let stats = DataStatistics::compute("toy", &dataset);
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.locations, 3);
        assert!((stats.average_degree - 1.5).abs() < 1e-12);
        assert!((stats.location_coverage - 0.75).abs() < 1e-12);
    }

    #[test]
    fn table_rows_align_with_the_header() {
        let graph = GraphBuilder::from_edges(2, vec![(0, 1, 1.0)]).unwrap();
        let dataset =
            GeoSocialDataset::new(graph, vec![Some(Point::ORIGIN), Some(Point::new(1.0, 1.0))])
                .unwrap();
        let stats = DataStatistics::compute("tiny", &dataset);
        let header = DataStatistics::table_header();
        let row = stats.table_row();
        assert_eq!(header.split_whitespace().count(), 5);
        assert!(row.contains("tiny"));
        assert!(row.contains('2'));
    }
}
