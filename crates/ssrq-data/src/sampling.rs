//! Structure-preserving graph sampling.
//!
//! Figure 14(b) of the paper studies scalability by extracting sub-networks
//! of different sizes from Foursquare with *Forest Fire Sampling* (Leskovec
//! & Faloutsos, "Sampling from large graphs"): a random ambassador vertex is
//! chosen, a "fire" burns a geometrically distributed number of its
//! neighbours, and spreads recursively from the burnt vertices; new fires
//! are started until the requested number of vertices has been collected.
//! The induced subgraph preserves degree distribution and community
//! structure far better than uniform vertex sampling.

use rand::prelude::*;
use rand::rngs::StdRng;
use ssrq_graph::{GraphBuilder, NodeId, SocialGraph};
use std::collections::VecDeque;

/// Extracts a Forest Fire sample of `target_nodes` vertices.
///
/// * `forward_prob` — the burning probability `p_f` (0.7 in the original
///   paper's recommended setting); the number of neighbours burnt from each
///   vertex is geometrically distributed with mean `p_f / (1 − p_f)`.
///
/// Returns the induced subgraph (with vertices re-labelled `0..sample_size`)
/// and the mapping `new id → original id`.
pub fn forest_fire_sample(
    graph: &SocialGraph,
    target_nodes: usize,
    forward_prob: f64,
    seed: u64,
) -> (SocialGraph, Vec<NodeId>) {
    let n = graph.node_count();
    let target = target_nodes.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let p = forward_prob.clamp(0.0, 0.99);

    let mut burnt = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(target);

    while order.len() < target {
        // Pick a fresh ambassador.
        let mut ambassador = rng.gen_range(0..n) as NodeId;
        let mut guard = 0;
        while burnt[ambassador as usize] && guard < 10 * n {
            ambassador = rng.gen_range(0..n) as NodeId;
            guard += 1;
        }
        if burnt[ambassador as usize] {
            break; // everything is burnt already
        }
        burnt[ambassador as usize] = true;
        order.push(ambassador);

        let mut queue = VecDeque::from([ambassador]);
        while let Some(v) = queue.pop_front() {
            if order.len() >= target {
                break;
            }
            // Geometric number of neighbours to burn: keep "succeeding" with
            // probability p.
            let mut to_burn = 0usize;
            while rng.gen_bool(p) {
                to_burn += 1;
                if to_burn > 1_000 {
                    break;
                }
            }
            if to_burn == 0 {
                continue;
            }
            let mut unburnt: Vec<NodeId> = graph
                .neighbors(v)
                .map(|e| e.to)
                .filter(|&u| !burnt[u as usize])
                .collect();
            unburnt.shuffle(&mut rng);
            for u in unburnt.into_iter().take(to_burn) {
                if order.len() >= target {
                    break;
                }
                burnt[u as usize] = true;
                order.push(u);
                queue.push_back(u);
            }
        }
    }

    // Induced subgraph over the burnt vertices, relabelled consecutively.
    let mut new_id = vec![NodeId::MAX; n];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as NodeId;
    }
    let mut builder = GraphBuilder::new(order.len());
    for &old in &order {
        for edge in graph.neighbors(old) {
            let other = new_id[edge.to as usize];
            if other != NodeId::MAX && new_id[old as usize] < other {
                let _ = builder.add_edge(new_id[old as usize], other, edge.weight);
            }
        }
    }
    (builder.build(), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::preferential_attachment;

    #[test]
    fn sample_has_the_requested_size() {
        let g = preferential_attachment(5_000, 5, 3);
        let (sample, mapping) = forest_fire_sample(&g, 1_200, 0.7, 11);
        assert_eq!(sample.node_count(), 1_200);
        assert_eq!(mapping.len(), 1_200);
    }

    #[test]
    fn mapping_refers_to_distinct_original_vertices() {
        let g = preferential_attachment(2_000, 4, 5);
        let (_, mapping) = forest_fire_sample(&g, 800, 0.7, 7);
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), mapping.len());
        assert!(sorted.iter().all(|&v| (v as usize) < g.node_count()));
    }

    #[test]
    fn sampled_edges_exist_in_the_original_graph_with_same_weights() {
        let g = crate::weights::degree_weights(&preferential_attachment(1_500, 4, 9));
        let (sample, mapping) = forest_fire_sample(&g, 600, 0.7, 13);
        for (u, v, w) in sample.undirected_edges() {
            let ou = mapping[u as usize];
            let ov = mapping[v as usize];
            assert_eq!(g.edge_weight(ou, ov), Some(w));
        }
    }

    #[test]
    fn sample_preserves_scale_free_shape_roughly() {
        let g = preferential_attachment(6_000, 5, 17);
        let (sample, _) = forest_fire_sample(&g, 2_000, 0.7, 19);
        // The sample should keep a meaningful share of edges and exhibit
        // hubs, unlike uniform node sampling which shatters the graph.
        assert!(sample.average_degree() > 2.0);
        assert!(sample.max_degree() > 4 * sample.average_degree() as usize);
    }

    #[test]
    fn requesting_more_nodes_than_available_returns_everything() {
        let g = preferential_attachment(300, 3, 23);
        let (sample, mapping) = forest_fire_sample(&g, 10_000, 0.7, 29);
        assert_eq!(sample.node_count(), 300);
        assert_eq!(mapping.len(), 300);
    }

    #[test]
    fn zero_forward_probability_still_terminates() {
        let g = preferential_attachment(200, 3, 31);
        let (sample, _) = forest_fire_sample(&g, 50, 0.0, 37);
        assert_eq!(sample.node_count(), 50);
    }
}
