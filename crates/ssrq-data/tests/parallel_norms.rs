//! Norm-regression test for the parallel double-sweep.
//!
//! Dataset construction normalizes social distances by a pseudo-diameter
//! estimated with a double Dijkstra sweep; large builds now run that sweep
//! through the chunk-parallel `dijkstra_all_parallel`.  Every normalized
//! score in the system depends on this constant, so the parallel sweep
//! must be **bit-identical** to the sequential one — not approximately
//! equal — at every thread count, on exactly the graphs the generator
//! produces.

use ssrq_data::DatasetConfig;
use ssrq_graph::{dijkstra_all, dijkstra_all_parallel, pseudo_diameter, SocialGraph};

/// The sequential double sweep the normalization constant was historically
/// computed with, reproduced verbatim as the regression reference.
fn sequential_double_sweep(graph: &SocialGraph) -> f64 {
    if graph.node_count() == 0 {
        return 1.0;
    }
    let start = graph.nodes().find(|&v| graph.degree(v) > 0).unwrap_or(0);
    let farthest = |dist: &[f64]| {
        let mut best = (0u32, 0.0f64);
        for (v, &d) in dist.iter().enumerate() {
            if d.is_finite() && d > best.1 {
                best = (v as u32, d);
            }
        }
        best
    };
    let (far, far_dist) = farthest(&dijkstra_all(graph, start));
    if far_dist <= 0.0 {
        return 1.0;
    }
    let (_, diameter) = farthest(&dijkstra_all(graph, far));
    if diameter > 0.0 {
        diameter
    } else {
        1.0
    }
}

#[test]
fn parallel_sweep_norms_are_bit_identical_on_generated_graphs() {
    for (label, config) in [
        ("gowalla", DatasetConfig::gowalla_like(1_500).with_seed(42)),
        ("twitter", DatasetConfig::twitter_like(1_000).with_seed(7)),
        ("tiny", DatasetConfig::gowalla_like(40).with_seed(3)),
    ] {
        let graph = config.generate_graph();
        let reference = sequential_double_sweep(&graph);
        for threads in [1usize, 2, 4, 8] {
            let parallel = pseudo_diameter(&graph, threads);
            assert_eq!(
                parallel.to_bits(),
                reference.to_bits(),
                "{label}: pseudo_diameter with {threads} threads diverged \
                 ({parallel} vs {reference})"
            );
        }
    }
}

#[test]
fn per_source_distance_vectors_are_bit_identical_on_generated_graphs() {
    let graph = DatasetConfig::gowalla_like(800)
        .with_seed(99)
        .generate_graph();
    for source in [0u32, 17, 799] {
        let sequential = dijkstra_all(&graph, source);
        for threads in [2usize, 5] {
            let parallel = dijkstra_all_parallel(&graph, source, threads);
            let seq_bits: Vec<u64> = sequential.iter().map(|d| d.to_bits()).collect();
            let par_bits: Vec<u64> = parallel.iter().map(|d| d.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "source {source}, {threads} threads");
        }
    }
}

#[test]
fn dataset_social_norm_matches_the_sequential_sweep() {
    // End-to-end: the constant baked into a generated dataset equals the
    // sequential double sweep of its own graph, regardless of how many
    // cores the build machine has.
    for config in [
        DatasetConfig::gowalla_like(1_200).with_seed(5),
        DatasetConfig::twitter_like(600).with_seed(13),
    ] {
        let dataset = config.generate();
        let expected = sequential_double_sweep(dataset.graph()).max(f64::MIN_POSITIVE);
        assert_eq!(dataset.social_norm().to_bits(), expected.to_bits());
    }
}
