//! End-to-end observability over real sockets: a coordinator-assigned
//! trace id must arrive bit-identical in every shard server's span log,
//! legacy v1 `Query` frames (which cannot carry a trace id) must still be
//! served with the implied trace 0, the `Metrics` request must snapshot a
//! live server remotely, and the health monitor must publish its ping
//! gauges into the global registry.

use ssrq_core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_net::{Endpoint, RemoteShardedEngine, ShardServer};
use ssrq_obs::Registry;
use ssrq_shard::{Partitioning, ShardAssignment};
use ssrq_spatial::Point;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A cluster of in-thread shard servers over Unix sockets in a temp dir.
struct Cluster {
    endpoints: Vec<Endpoint>,
    flags: Vec<Arc<AtomicBool>>,
    handles: Vec<JoinHandle<()>>,
    dir: PathBuf,
}

static CLUSTER_SEQ: AtomicUsize = AtomicUsize::new(0);

impl Cluster {
    fn start(dataset: &GeoSocialDataset, policy: Partitioning, shards: usize) -> Cluster {
        let assignment =
            ShardAssignment::compute(dataset, policy, shards).expect("assignment computes");
        let owner = assignment.owners(dataset);
        let dir = std::env::temp_dir().join(format!(
            "ssrq-obs-test-{}-{}",
            std::process::id(),
            CLUSTER_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut endpoints = Vec::new();
        let mut flags = Vec::new();
        let mut handles = Vec::new();
        for s in 0..shards {
            let shard_dataset = dataset.restrict_locations(|u| owner[u as usize] as usize == s);
            let engine = GeoSocialEngine::builder(shard_dataset)
                .build()
                .expect("shard engine builds");
            let endpoint = Endpoint::Unix(dir.join(format!("shard-{s}.sock")));
            let server = ShardServer::bind(&endpoint, engine, s, assignment.clone())
                .expect("server binds")
                .with_slow_query_threshold(Duration::from_secs(3600));
            flags.push(server.shutdown_flag());
            endpoints.push(endpoint);
            handles.push(std::thread::spawn(move || {
                server.serve().expect("server loop");
            }));
        }
        Cluster {
            endpoints,
            flags,
            handles,
            dir,
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for flag in &self.flags {
            flag.store(true, Ordering::SeqCst);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn trace_ids_arrive_bit_identical_in_every_shards_span_log() {
    let dataset = DatasetConfig::gowalla_like(250).generate();
    let shards = 3;
    let cluster = Cluster::start(
        &dataset,
        Partitioning::SpatialGrid { cells_per_axis: 4 },
        shards,
    );
    let remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(30))
        .connect()
        .expect("coordinator connects");

    // A pinned origin and a huge k keep the threshold from skipping any
    // shard, so every server must see (and log) every trace id.
    let workload = QueryWorkload::generate(&dataset, 6, 97);
    let mut seen = std::collections::HashSet::new();
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(200)
            .alpha(0.4)
            .origin(Point::new(0.5, 0.5))
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let (_result, stats, spans) = remote.query_traced(&request).expect("traced query");
        assert_ne!(spans.trace_id, 0, "minted trace ids are never 0");
        assert!(seen.insert(spans.trace_id), "trace ids are unique");
        assert_eq!(stats.skipped_shards(), 0, "no shard may be skipped");

        // The coordinator's own span tree names the root, the scatter
        // phase, and one span per shard round trip.
        let names: Vec<&str> = spans.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"coordinator_query"));
        assert!(names.contains(&"scatter"));
        assert!(names.contains(&"merge"));
        for endpoint in &cluster.endpoints {
            let label = format!("shard {endpoint}");
            assert!(
                names.iter().any(|n| *n == label),
                "coordinator span tree misses {label}: {names:?}"
            );
        }
        // Per-phase timings sum sanely: every child fits inside the root.
        let root = &spans.spans[0];
        for span in &spans.spans[1..] {
            assert!(
                span.end_ns() <= root.end_ns(),
                "span {} ends after the root",
                span.name
            );
        }

        // The exact same id must be visible in every shard's remote
        // snapshot — bit-identical across the wire.
        for shard in 0..shards {
            let report = remote.remote_metrics(shard).expect("metrics snapshot");
            assert!(
                report.has_trace(spans.trace_id),
                "shard {shard} span log misses trace {:#018x}",
                spans.trace_id
            );
        }
    }

    // The servers' metric registries counted the queries too.
    for shard in 0..shards {
        let report = remote.remote_metrics(shard).expect("metrics snapshot");
        let shard_label = shard.to_string();
        let served = report
            .counter("ssrq_server_queries_total", &[("shard", &shard_label)])
            .unwrap_or(0);
        assert!(
            served >= workload.users.len() as u64,
            "shard {shard} served {served} < {} queries",
            workload.users.len()
        );
    }
}

#[test]
fn legacy_v1_query_frames_imply_trace_zero_and_answer_in_kind() {
    use ssrq_net::wire::{parse_header, LEGACY_VERSION};
    use ssrq_net::Message;
    use std::io::{Read, Write};

    let dataset = DatasetConfig::gowalla_like(120).generate();
    let assignment = ShardAssignment::compute(&dataset, Partitioning::UserHash, 1).unwrap();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let server =
        ShardServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), engine, 0, assignment).unwrap();
    let Endpoint::Tcp(addr) = server.endpoint() else {
        panic!("tcp endpoint expected")
    };
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    // A pre-tracing v1 peer: its Query payload simply ends after the
    // request — no trailing trace id.
    let request = QueryRequest::for_user(1)
        .k(5)
        .alpha(0.4)
        .origin(Point::new(0.5, 0.5))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let query = Message::query(request);
    let mut socket = std::net::TcpStream::connect(&addr).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    socket
        .write_all(&query.encode_in(LEGACY_VERSION, 0))
        .unwrap();
    let mut prefix = [0u8; 10];
    socket.read_exact(&mut prefix).unwrap();
    let header = parse_header(&prefix).unwrap();
    assert_eq!(header.version, LEGACY_VERSION, "answered in kind");
    assert_eq!(header.frame_id, 0);
    let mut payload = vec![0u8; header.payload_len as usize];
    socket.read_exact(&mut payload).unwrap();
    let response = Message::decode(header.tag, &payload).unwrap();
    let Message::Answer(result) = response else {
        panic!("expected an Answer, got {response:?}");
    };
    assert!(!result.ranked.is_empty());

    // The served query landed in the span log under the implied trace 0.
    socket
        .write_all(&Message::MetricsRequest.encode_in(LEGACY_VERSION, 0))
        .unwrap();
    socket.read_exact(&mut prefix).unwrap();
    let header = parse_header(&prefix).unwrap();
    let mut payload = vec![0u8; header.payload_len as usize];
    socket.read_exact(&mut payload).unwrap();
    let Message::MetricsReport(report) = Message::decode(header.tag, &payload).unwrap() else {
        panic!("expected a MetricsReport");
    };
    assert!(report.has_trace(0), "v1 queries trace as id 0");

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn the_health_monitor_publishes_ping_gauges() {
    let dataset = DatasetConfig::gowalla_like(100).generate();
    let cluster = Cluster::start(&dataset, Partitioning::UserHash, 2);
    let remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(5))
        .health_check(Duration::from_millis(25), 3)
        .connect()
        .expect("coordinator connects");
    assert!(remote.health_monitoring());

    // Give the monitor a couple of rounds, then read the global registry.
    std::thread::sleep(Duration::from_millis(300));
    let registry = Registry::global();
    for endpoint in &cluster.endpoints {
        let label = endpoint.to_string();
        let labels = [("endpoint", label.as_str())];
        let rtt = registry.gauge("ssrq_ping_rtt_ns", &labels).get();
        assert!(rtt > 0.0, "no ping round trip recorded for {label}");
        assert_eq!(
            registry.gauge("ssrq_ping_unhealthy", &labels).get(),
            0.0,
            "a live server must not be flagged unhealthy"
        );
    }
    drop(remote);
}
