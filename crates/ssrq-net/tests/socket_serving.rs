//! End-to-end socket serving: shard servers (run in threads over
//! Unix-domain sockets) behind a [`RemoteShardedEngine`] coordinator must
//! return exactly what the in-process [`ShardedEngine`] returns, forward
//! the `f_k` threshold across the wire, survive relocations and
//! rebalances, and fail the way the [`FailurePolicy`] promises when a
//! shard dies.

use ssrq_core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_net::{Endpoint, NetError, RemoteShardedEngine, ShardServer};
use ssrq_shard::{FailurePolicy, Partitioning, ShardAssignment, ShardOutcome, ShardedEngine};
use ssrq_spatial::{Point, Rect};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A cluster of in-thread shard servers over Unix sockets in a temp dir.
struct Cluster {
    endpoints: Vec<Endpoint>,
    flags: Vec<Arc<AtomicBool>>,
    handles: Vec<JoinHandle<()>>,
    assignment: ShardAssignment,
    dir: PathBuf,
}

static CLUSTER_SEQ: AtomicUsize = AtomicUsize::new(0);

impl Cluster {
    fn start(dataset: &GeoSocialDataset, policy: Partitioning, shards: usize) -> Cluster {
        let assignment =
            ShardAssignment::compute(dataset, policy, shards).expect("assignment computes");
        let owner = assignment.owners(dataset);
        let dir = std::env::temp_dir().join(format!(
            "ssrq-net-test-{}-{}",
            std::process::id(),
            CLUSTER_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut endpoints = Vec::new();
        let mut flags = Vec::new();
        let mut handles = Vec::new();
        for s in 0..shards {
            let shard_dataset = dataset.restrict_locations(|u| owner[u as usize] as usize == s);
            let engine = GeoSocialEngine::builder(shard_dataset)
                .build()
                .expect("shard engine builds");
            let endpoint = Endpoint::Unix(dir.join(format!("shard-{s}.sock")));
            let server =
                ShardServer::bind(&endpoint, engine, s, assignment.clone()).expect("server binds");
            flags.push(server.shutdown_flag());
            endpoints.push(endpoint);
            handles.push(std::thread::spawn(move || {
                server.serve().expect("server loop");
            }));
        }
        Cluster {
            endpoints,
            flags,
            handles,
            assignment,
            dir,
        }
    }

    fn connect(&self) -> RemoteShardedEngine {
        RemoteShardedEngine::builder(self.endpoints.clone())
            .connect_timeout(Duration::from_secs(10))
            .deadline(Duration::from_secs(30))
            .connect()
            .expect("coordinator connects")
    }

    fn kill_shard(&self, shard: usize) {
        self.flags[shard].store(true, Ordering::SeqCst);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for flag in &self.flags {
            flag.store(true, Ordering::SeqCst);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn requests_for(dataset: &GeoSocialDataset, algorithm: Algorithm) -> Vec<QueryRequest> {
    let workload = QueryWorkload::generate(dataset, 4, 71);
    let mut requests = Vec::new();
    for &user in &workload.users {
        let base = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.4)
            .algorithm(algorithm);
        requests.push(base.clone().build().unwrap());
        requests.push(
            base.clone()
                .within(Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.8)))
                .build()
                .unwrap(),
        );
        requests.push(
            base.clone()
                .exclude([user.wrapping_add(1) % 100])
                .build()
                .unwrap(),
        );
        requests.push(base.max_score(0.6).build().unwrap());
    }
    requests
}

#[test]
fn remote_coordinator_matches_the_in_process_engine() {
    let dataset = DatasetConfig::gowalla_like(300).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = cluster.connect();
    assert_eq!(remote.shard_count(), 3);
    assert_eq!(remote.user_count(), dataset.user_count() as u64);

    for algorithm in [Algorithm::Ais, Algorithm::Exhaustive, Algorithm::Tsa] {
        for request in requests_for(&dataset, algorithm) {
            let expected = local.run(&request).expect("in-process query");
            let got = remote.query(&request).expect("remote query");
            assert!(
                got.same_users_and_scores(&expected, 1e-12),
                "{algorithm:?} disagreed on {request:?}:\n  local {:?}\n  remote {:?}",
                expected.ranked,
                got.ranked
            );
            assert!(!got.degraded);
            // Wire accounting: remote queries cross the wire, local never.
            assert!(got.stats.wire_round_trips >= 1);
            assert!(got.stats.bytes_sent > 0 && got.stats.bytes_received > 0);
            assert_eq!(expected.stats.wire_round_trips, 0);
            assert_eq!(expected.stats.bytes_sent, 0);
        }
    }
}

#[test]
fn the_fk_threshold_crosses_the_wire() {
    let dataset = DatasetConfig::gowalla_like(400).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let cluster = Cluster::start(&dataset, policy, 4);
    let mut forwarding = cluster.connect();
    let mut blunt = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .forward_threshold(false)
        .connect()
        .expect("coordinator connects");

    let workload = QueryWorkload::generate(&dataset, 6, 5);
    let mut saved_work = false;
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.3)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let (with, with_stats) = forwarding.query_detailed(&request).unwrap();
        let (without, without_stats) = blunt.query_detailed(&request).unwrap();
        // Forwarding is an optimization, never a semantic change.
        assert!(with.same_users_and_scores(&without, 0.0));
        // The forwarded cutoff can only reduce per-shard work.
        assert!(with_stats.merged.evaluated_users <= without_stats.merged.evaluated_users);
        assert!(with_stats.merged.relaxed_edges <= without_stats.merged.relaxed_edges);
        saved_work |= with_stats.merged.evaluated_users < without_stats.merged.evaluated_users
            || with_stats.skipped_shards() > without_stats.skipped_shards();
    }
    assert!(
        saved_work,
        "forwarding the threshold never saved any work across the whole workload"
    );
}

#[test]
fn relocations_are_adopted_by_exactly_one_shard_and_answers_track() {
    let dataset = DatasetConfig::gowalla_like(250).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 4 };
    let mut local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = cluster.connect();

    let moved_user = 17;
    let destination = Point::new(0.92, 0.94);
    let adopter = remote.update_location(moved_user, destination).unwrap();
    assert_eq!(
        adopter,
        cluster.assignment.owner_for(moved_user, Some(destination))
    );
    local.update_location(moved_user, destination).unwrap();

    let unlocated_user = 23;
    remote.remove_location(unlocated_user).unwrap();
    local.remove_location(unlocated_user).unwrap();
    remote.refresh().unwrap();

    for user in [moved_user, unlocated_user, 5] {
        let request = QueryRequest::for_user(user)
            .k(6)
            .alpha(0.5)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let expected = local.run(&request).unwrap();
        let got = remote.query(&request).unwrap();
        assert!(
            got.same_users_and_scores(&expected, 1e-12),
            "post-migration disagreement for user {user}"
        );
    }
}

#[test]
fn rebalance_repacks_and_preserves_agreement() {
    let dataset = DatasetConfig::gowalla_like(250).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 4 };
    let mut local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .assignment(cluster.assignment.clone())
        .connect()
        .unwrap();

    // Skew the distribution, then rebalance both deployments identically.
    for (user, x) in [(3u32, 0.91), (9, 0.93), (14, 0.95), (21, 0.97)] {
        let p = Point::new(x, 0.9);
        remote.update_location(user, p).unwrap();
        local.update_location(user, p).unwrap();
    }
    let moved_remote = remote.rebalance().unwrap();
    let report = local.rebalance();
    assert_eq!(moved_remote, report.moved_users);

    let workload = QueryWorkload::generate(&dataset, 5, 11);
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.4)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let expected = local.run(&request).unwrap();
        let got = remote.query(&request).unwrap();
        assert!(
            got.same_users_and_scores(&expected, 1e-12),
            "post-rebalance disagreement for user {user}"
        );
    }
}

#[test]
fn a_dead_shard_fails_or_degrades_per_policy() {
    let dataset = DatasetConfig::gowalla_like(200).generate();
    let policy = Partitioning::UserHash;
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(2))
        .connect()
        .unwrap();

    // A large k keeps the threshold from pruning any shard, and a pinned
    // origin skips the location lookup, so the dead shard is guaranteed to
    // be *visited* (not skipped) by the scatter.
    let request = QueryRequest::for_user(0)
        .k(50)
        .alpha(0.5)
        .origin(Point::new(0.5, 0.5))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    remote.query(&request).expect("healthy cluster answers");

    cluster.kill_shard(1);
    std::thread::sleep(Duration::from_millis(200));

    let err = remote
        .query(&request)
        .expect_err("Fail policy surfaces the dead shard");
    assert!(
        matches!(
            err,
            NetError::Disconnected { .. } | NetError::Io(_) | NetError::Timeout { .. }
        ),
        "unexpected error {err}"
    );

    remote.set_failure_policy(FailurePolicy::Degrade);
    let (result, stats) = remote.query_detailed(&request).expect("degraded answer");
    assert!(result.degraded);
    assert!(!result.is_complete());
    assert_eq!(stats.failed_shards(), 1);
    let failed_endpoint = cluster.endpoints[1].to_string();
    assert!(
        stats.per_shard.iter().any(|o| matches!(
            o,
            ShardOutcome::Failed { shard, .. } if shard == &failed_endpoint
        )),
        "the failed shard is named in the outcomes: {:?}",
        stats.per_shard
    );
    // The survivors' entries are still an exact top-k over their residents.
    assert!(!result.ranked.is_empty());
}

#[test]
fn tcp_endpoints_serve_too() {
    let dataset = DatasetConfig::gowalla_like(150).generate();
    let assignment = ShardAssignment::compute(&dataset, Partitioning::UserHash, 1).unwrap();
    let engine = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let server =
        ShardServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), engine, 0, assignment).unwrap();
    let endpoint = server.endpoint();
    assert!(!matches!(&endpoint, Endpoint::Tcp(addr) if addr.ends_with(":0")));
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut remote = RemoteShardedEngine::builder(vec![endpoint])
        .connect_timeout(Duration::from_secs(10))
        .connect()
        .unwrap();
    let request = QueryRequest::for_user(3)
        .k(4)
        .alpha(0.4)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let single = GeoSocialEngine::builder(dataset).build().unwrap();
    let expected = single.run(&request).unwrap();
    let got = remote.query(&request).unwrap();
    assert!(got.same_users_and_scores(&expected, 1e-12));

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
