//! End-to-end socket serving: shard servers (run in threads over
//! Unix-domain sockets) behind a [`RemoteShardedEngine`] coordinator must
//! return exactly what the in-process [`ShardedEngine`] returns, forward
//! the `f_k` threshold across the wire, survive relocations and
//! rebalances, and fail the way the [`FailurePolicy`] promises when a
//! shard dies.

use ssrq_core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_net::{Endpoint, NetError, RemoteShardedEngine, ShardServer};
use ssrq_shard::{
    FailurePolicy, Partitioning, ScatterMode, ShardAssignment, ShardOutcome, ShardedEngine,
};
use ssrq_spatial::{Point, Rect};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A cluster of in-thread shard servers over Unix sockets in a temp dir.
struct Cluster {
    endpoints: Vec<Endpoint>,
    flags: Vec<Arc<AtomicBool>>,
    handles: Vec<JoinHandle<()>>,
    assignment: ShardAssignment,
    dir: PathBuf,
}

static CLUSTER_SEQ: AtomicUsize = AtomicUsize::new(0);

impl Cluster {
    fn start(dataset: &GeoSocialDataset, policy: Partitioning, shards: usize) -> Cluster {
        let assignment =
            ShardAssignment::compute(dataset, policy, shards).expect("assignment computes");
        let owner = assignment.owners(dataset);
        let dir = std::env::temp_dir().join(format!(
            "ssrq-net-test-{}-{}",
            std::process::id(),
            CLUSTER_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut endpoints = Vec::new();
        let mut flags = Vec::new();
        let mut handles = Vec::new();
        for s in 0..shards {
            let shard_dataset = dataset.restrict_locations(|u| owner[u as usize] as usize == s);
            let engine = GeoSocialEngine::builder(shard_dataset)
                .build()
                .expect("shard engine builds");
            let endpoint = Endpoint::Unix(dir.join(format!("shard-{s}.sock")));
            let server =
                ShardServer::bind(&endpoint, engine, s, assignment.clone()).expect("server binds");
            flags.push(server.shutdown_flag());
            endpoints.push(endpoint);
            handles.push(std::thread::spawn(move || {
                server.serve().expect("server loop");
            }));
        }
        Cluster {
            endpoints,
            flags,
            handles,
            assignment,
            dir,
        }
    }

    fn connect(&self) -> RemoteShardedEngine {
        RemoteShardedEngine::builder(self.endpoints.clone())
            .connect_timeout(Duration::from_secs(10))
            .deadline(Duration::from_secs(30))
            .connect()
            .expect("coordinator connects")
    }

    fn kill_shard(&self, shard: usize) {
        self.flags[shard].store(true, Ordering::SeqCst);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for flag in &self.flags {
            flag.store(true, Ordering::SeqCst);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn requests_for(dataset: &GeoSocialDataset, algorithm: Algorithm) -> Vec<QueryRequest> {
    let workload = QueryWorkload::generate(dataset, 4, 71);
    let mut requests = Vec::new();
    for &user in &workload.users {
        let base = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.4)
            .algorithm(algorithm);
        requests.push(base.clone().build().unwrap());
        requests.push(
            base.clone()
                .within(Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.8)))
                .build()
                .unwrap(),
        );
        requests.push(
            base.clone()
                .exclude([user.wrapping_add(1) % 100])
                .build()
                .unwrap(),
        );
        requests.push(base.max_score(0.6).build().unwrap());
    }
    requests
}

#[test]
fn remote_coordinator_matches_the_in_process_engine() {
    let dataset = DatasetConfig::gowalla_like(300).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let remote = cluster.connect();
    assert_eq!(remote.shard_count(), 3);
    assert_eq!(remote.user_count(), dataset.user_count() as u64);

    for algorithm in [Algorithm::Ais, Algorithm::Exhaustive, Algorithm::Tsa] {
        for request in requests_for(&dataset, algorithm) {
            let expected = local.run(&request).expect("in-process query");
            let got = remote.query(&request).expect("remote query");
            assert!(
                got.same_users_and_scores(&expected, 1e-12),
                "{algorithm:?} disagreed on {request:?}:\n  local {:?}\n  remote {:?}",
                expected.ranked,
                got.ranked
            );
            assert!(!got.degraded);
            // Wire accounting: remote queries cross the wire, local never.
            assert!(got.stats.wire_round_trips >= 1);
            assert!(got.stats.bytes_sent > 0 && got.stats.bytes_received > 0);
            assert_eq!(expected.stats.wire_round_trips, 0);
            assert_eq!(expected.stats.bytes_sent, 0);
        }
    }
}

#[test]
fn the_fk_threshold_crosses_the_wire() {
    let dataset = DatasetConfig::gowalla_like(400).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let cluster = Cluster::start(&dataset, policy, 4);
    let forwarding = cluster.connect();
    let blunt = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .forward_threshold(false)
        .connect()
        .expect("coordinator connects");

    let workload = QueryWorkload::generate(&dataset, 6, 5);
    let mut saved_work = false;
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.3)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let (with, with_stats) = forwarding.query_detailed(&request).unwrap();
        let (without, without_stats) = blunt.query_detailed(&request).unwrap();
        // Forwarding is an optimization, never a semantic change.
        assert!(with.same_users_and_scores(&without, 0.0));
        // The forwarded cutoff can only reduce per-shard work.
        assert!(with_stats.merged.evaluated_users <= without_stats.merged.evaluated_users);
        assert!(with_stats.merged.relaxed_edges <= without_stats.merged.relaxed_edges);
        saved_work |= with_stats.merged.evaluated_users < without_stats.merged.evaluated_users
            || with_stats.skipped_shards() > without_stats.skipped_shards();
    }
    assert!(
        saved_work,
        "forwarding the threshold never saved any work across the whole workload"
    );
}

#[test]
fn relocations_are_adopted_by_exactly_one_shard_and_answers_track() {
    let dataset = DatasetConfig::gowalla_like(250).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 4 };
    let mut local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = cluster.connect();

    let moved_user = 17;
    let destination = Point::new(0.92, 0.94);
    let adopter = remote.update_location(moved_user, destination).unwrap();
    assert_eq!(
        adopter,
        cluster.assignment.owner_for(moved_user, Some(destination))
    );
    local.update_location(moved_user, destination).unwrap();

    let unlocated_user = 23;
    remote.remove_location(unlocated_user).unwrap();
    local.remove_location(unlocated_user).unwrap();
    remote.refresh().unwrap();

    for user in [moved_user, unlocated_user, 5] {
        let request = QueryRequest::for_user(user)
            .k(6)
            .alpha(0.5)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let expected = local.run(&request).unwrap();
        let got = remote.query(&request).unwrap();
        assert!(
            got.same_users_and_scores(&expected, 1e-12),
            "post-migration disagreement for user {user}"
        );
    }
}

#[test]
fn rebalance_repacks_and_preserves_agreement() {
    let dataset = DatasetConfig::gowalla_like(250).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 4 };
    let mut local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .assignment(cluster.assignment.clone())
        .connect()
        .unwrap();

    // Skew the distribution, then rebalance both deployments identically.
    for (user, x) in [(3u32, 0.91), (9, 0.93), (14, 0.95), (21, 0.97)] {
        let p = Point::new(x, 0.9);
        remote.update_location(user, p).unwrap();
        local.update_location(user, p).unwrap();
    }
    let moved_remote = remote.rebalance().unwrap();
    let report = local.rebalance();
    assert_eq!(moved_remote, report.moved_users);

    let workload = QueryWorkload::generate(&dataset, 5, 11);
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.4)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let expected = local.run(&request).unwrap();
        let got = remote.query(&request).unwrap();
        assert!(
            got.same_users_and_scores(&expected, 1e-12),
            "post-rebalance disagreement for user {user}"
        );
    }
}

#[test]
fn a_dead_shard_fails_or_degrades_per_policy() {
    let dataset = DatasetConfig::gowalla_like(200).generate();
    let policy = Partitioning::UserHash;
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(2))
        .connect()
        .unwrap();

    // A large k keeps the threshold from pruning any shard, and a pinned
    // origin skips the location lookup, so the dead shard is guaranteed to
    // be *visited* (not skipped) by the scatter.
    let request = QueryRequest::for_user(0)
        .k(50)
        .alpha(0.5)
        .origin(Point::new(0.5, 0.5))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    remote.query(&request).expect("healthy cluster answers");

    cluster.kill_shard(1);
    std::thread::sleep(Duration::from_millis(200));

    let err = remote
        .query(&request)
        .expect_err("Fail policy surfaces the dead shard");
    assert!(
        matches!(
            err,
            NetError::Disconnected { .. } | NetError::Io(_) | NetError::Timeout { .. }
        ),
        "unexpected error {err}"
    );

    remote.set_failure_policy(FailurePolicy::Degrade);
    let (result, stats) = remote.query_detailed(&request).expect("degraded answer");
    assert!(result.degraded);
    assert!(!result.is_complete());
    assert_eq!(stats.failed_shards(), 1);
    let failed_endpoint = cluster.endpoints[1].to_string();
    assert!(
        stats.per_shard.iter().any(|o| matches!(
            o,
            ShardOutcome::Failed { shard, .. } if shard == &failed_endpoint
        )),
        "the failed shard is named in the outcomes: {:?}",
        stats.per_shard
    );
    // The survivors' entries are still an exact top-k over their residents.
    assert!(!result.ranked.is_empty());
}

#[test]
fn speculative_scatter_matches_sequential_bit_for_bit_over_sockets() {
    let dataset = DatasetConfig::gowalla_like(300).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let cluster = Cluster::start(&dataset, policy, 4);
    let sequential = cluster.connect();
    let speculative = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(30))
        .scatter(ScatterMode::Speculative)
        .connect()
        .expect("speculative coordinator connects");
    assert_eq!(speculative.scatter_mode(), ScatterMode::Speculative);

    for algorithm in [Algorithm::Ais, Algorithm::Tsa] {
        for request in requests_for(&dataset, algorithm) {
            let expected = sequential.query(&request).expect("sequential query");
            let got = speculative.query(&request).expect("speculative query");
            // The speculative scatter is a *scheduling* change only: the
            // exact same (score, user) list, down to the bits.
            assert!(
                got.same_users_and_scores(&expected, 0.0),
                "{algorithm:?} speculative disagreed on {request:?}:\n  seq {:?}\n  spec {:?}",
                expected.ranked,
                got.ranked
            );
            // Accounting stays truthful: speculation can only *add*
            // round trips (shards the sequential threshold would have
            // skipped), never hide them — and tighten frames are a
            // speculative-only cost, never counted as round trips.
            assert!(got.stats.wire_round_trips >= expected.stats.wire_round_trips);
            assert_eq!(expected.stats.tighten_frames, 0);
        }
    }
}

#[test]
fn concurrent_queries_share_one_engine_and_stay_exact() {
    let dataset = DatasetConfig::gowalla_like(300).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let cluster = Cluster::start(&dataset, policy, 3);
    let engine = Arc::new(
        RemoteShardedEngine::builder(cluster.endpoints.clone())
            .connect_timeout(Duration::from_secs(10))
            .deadline(Duration::from_secs(30))
            .scatter(ScatterMode::Speculative)
            .pool_size(2)
            .connect()
            .expect("coordinator connects"),
    );

    let workload = QueryWorkload::generate(&dataset, 8, 31);
    let requests: Vec<QueryRequest> = workload
        .users
        .iter()
        .map(|&user| {
            QueryRequest::for_user(user)
                .k(6)
                .alpha(0.4)
                .algorithm(Algorithm::Ais)
                .build()
                .unwrap()
        })
        .collect();
    // Ground truth: each query run alone, one at a time.
    let expected: Vec<_> = requests
        .iter()
        .map(|r| engine.query(r).expect("sequential baseline"))
        .collect();

    // Six threads hammer the same engine (and thus the same connection
    // pools, multiplexing frames over shared sockets) concurrently.
    std::thread::scope(|scope| {
        for worker in 0..6 {
            let engine = &engine;
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for (i, request) in requests.iter().enumerate() {
                        let got = engine
                            .query(request)
                            .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                        assert!(
                            got.same_users_and_scores(&expected[i], 0.0),
                            "worker {worker} round {round} query {i}: concurrent answer diverged"
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn a_stale_socket_file_is_reclaimed_but_a_live_server_is_not() {
    let dataset = DatasetConfig::gowalla_like(120).generate();
    let assignment = ShardAssignment::compute(&dataset, Partitioning::UserHash, 1).unwrap();
    let dir = std::env::temp_dir().join(format!(
        "ssrq-net-stale-{}-{}",
        std::process::id(),
        CLUSTER_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard-0.sock");

    // A crashed server leaves its socket file behind (closing a listener
    // does not unlink).  A restart on the same path must reclaim it.
    drop(std::os::unix::net::UnixListener::bind(&path).unwrap());
    assert!(path.exists(), "the stale socket file survives the crash");
    let endpoint = Endpoint::Unix(path.clone());
    let engine = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let server = ShardServer::bind(&endpoint, engine, 0, assignment.clone())
        .expect("rebinding over a stale socket file succeeds");

    // But a *live* server's socket must not be stolen out from under it.
    let engine2 = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let err = ShardServer::bind(&endpoint, engine2, 0, assignment.clone())
        .expect_err("binding over a live server must fail");
    assert!(matches!(err, NetError::Io(_)), "unexpected error {err}");

    // The restarted server actually serves.
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    let remote = RemoteShardedEngine::builder(vec![endpoint])
        .connect_timeout(Duration::from_secs(10))
        .connect()
        .expect("coordinator connects to the restarted server");
    let request = QueryRequest::for_user(1)
        .k(3)
        .alpha(0.5)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let single = GeoSocialEngine::builder(dataset).build().unwrap();
    let expected = single.run(&request).unwrap();
    assert!(remote
        .query(&request)
        .unwrap()
        .same_users_and_scores(&expected, 1e-12));
    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_unreachable_shard_during_origin_resolution_degrades_the_answer() {
    let dataset = DatasetConfig::gowalla_like(200).generate();
    let policy = Partitioning::UserHash;
    let assignment = ShardAssignment::compute(&dataset, policy, 3).unwrap();
    let owner = assignment.owners(&dataset);
    // A user whose location lives on shard 1 — the shard about to die.
    let victim = (0..dataset.user_count() as u32)
        .find(|&u| owner[u as usize] == 1 && dataset.location(u).is_some())
        .expect("some located user lives on shard 1");

    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(2))
        .connect()
        .unwrap();
    // No pinned origin: the coordinator must ask the shards where the
    // query user is.
    let request = QueryRequest::for_user(victim)
        .k(5)
        .alpha(0.4)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let healthy = remote.query(&request).expect("healthy cluster answers");
    assert!(!healthy.degraded);

    cluster.kill_shard(1);
    std::thread::sleep(Duration::from_millis(200));

    // Fail policy: the unreachable owner is a hard error.
    let err = remote.query(&request).expect_err("Fail policy errors");
    assert!(
        matches!(
            err,
            NetError::Disconnected { .. } | NetError::Io(_) | NetError::Timeout { .. }
        ),
        "unexpected error {err}"
    );

    // Degrade policy: the query still answers, but it must NOT pass as
    // exact — the dead shard may have held the user's location, so the
    // "ran with no origin" answer is flagged and the shard named.
    remote.set_failure_policy(FailurePolicy::Degrade);
    let (result, stats) = remote.query_detailed(&request).expect("degraded answer");
    assert!(
        result.degraded,
        "an unresolved origin with an unreachable shard must degrade the result"
    );
    let failed_endpoint = cluster.endpoints[1].to_string();
    assert!(
        stats.per_shard.iter().any(|o| matches!(
            o,
            ShardOutcome::Failed { shard, detail } if shard == &failed_endpoint
                && detail.contains("origin resolution")
        )),
        "the unreachable shard is named in the outcomes: {:?}",
        stats.per_shard
    );
}

#[test]
fn a_dead_shard_fails_or_degrades_under_speculative_scatter_too() {
    let dataset = DatasetConfig::gowalla_like(200).generate();
    let policy = Partitioning::UserHash;
    let cluster = Cluster::start(&dataset, policy, 3);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .deadline(Duration::from_secs(2))
        .scatter(ScatterMode::Speculative)
        .connect()
        .unwrap();

    let request = QueryRequest::for_user(0)
        .k(50)
        .alpha(0.5)
        .origin(Point::new(0.5, 0.5))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    remote.query(&request).expect("healthy cluster answers");

    cluster.kill_shard(2);
    std::thread::sleep(Duration::from_millis(200));

    let err = remote
        .query(&request)
        .expect_err("Fail policy surfaces the dead shard");
    assert!(
        matches!(
            err,
            NetError::Disconnected { .. } | NetError::Io(_) | NetError::Timeout { .. }
        ),
        "unexpected error {err}"
    );

    remote.set_failure_policy(FailurePolicy::Degrade);
    let (result, stats) = remote.query_detailed(&request).expect("degraded answer");
    assert!(result.degraded);
    assert_eq!(stats.failed_shards(), 1);
    let failed_endpoint = cluster.endpoints[2].to_string();
    assert!(
        stats.per_shard.iter().any(|o| matches!(
            o,
            ShardOutcome::Failed { shard, .. } if shard == &failed_endpoint
        )),
        "the failed shard is named in the outcomes: {:?}",
        stats.per_shard
    );
    assert!(!result.ranked.is_empty());
}

#[test]
fn relocation_churn_triggers_an_opportunistic_rect_refresh() {
    use ssrq_graph::GraphBuilder;
    // Four users clustered in [0.1, 0.3]² on one shard.
    let graph = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
    let locations = vec![
        Some(Point::new(0.10, 0.10)),
        Some(Point::new(0.20, 0.15)),
        Some(Point::new(0.30, 0.25)),
        Some(Point::new(0.15, 0.30)),
    ];
    let dataset = GeoSocialDataset::new(graph, locations).unwrap();
    let cluster = Cluster::start(&dataset, Partitioning::UserHash, 1);
    let mut remote = RemoteShardedEngine::builder(cluster.endpoints.clone())
        .connect_timeout(Duration::from_secs(10))
        .refresh_after_relocations(2)
        .connect()
        .unwrap();

    // First relocation: the cached rect can only *grow* to stay admissible.
    remote.update_location(0, Point::new(0.95, 0.95)).unwrap();
    assert_eq!(remote.rect_churn(0), 1);
    let grown = remote.shard_info(0).rect.expect("rect exists");
    assert!(grown.max.x >= 0.95 && grown.max.y >= 0.95);

    // Second relocation (back into the cluster) hits the churn threshold:
    // the coordinator re-handshakes that shard and the rect tightens back
    // down to the *actual* locations — no user is near (0.95, 0.95) now.
    remote.update_location(0, Point::new(0.12, 0.12)).unwrap();
    assert_eq!(remote.rect_churn(0), 0, "the refresh resets the churn");
    let tightened = remote.shard_info(0).rect.expect("rect exists");
    assert!(
        tightened.max.x < 0.5 && tightened.max.y < 0.5,
        "the refreshed rect {tightened:?} still carries the relocation slack"
    );
}

#[test]
fn legacy_v1_frames_are_served_and_answered_in_kind() {
    use ssrq_net::wire::{parse_header, LEGACY_VERSION};
    use ssrq_net::Message;
    use std::io::{Read, Write};

    let dataset = DatasetConfig::gowalla_like(120).generate();
    let assignment = ShardAssignment::compute(&dataset, Partitioning::UserHash, 1).unwrap();
    let engine = GeoSocialEngine::builder(dataset).build().unwrap();
    let server =
        ShardServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), engine, 0, assignment).unwrap();
    let Endpoint::Tcp(addr) = server.endpoint() else {
        panic!("tcp endpoint expected")
    };
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    // A pre-multiplexing peer: v1 frames, one in flight, no frame ids.
    let mut socket = std::net::TcpStream::connect(&addr).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for request in [Message::Ping, Message::Hello] {
        socket
            .write_all(&request.encode_in(LEGACY_VERSION, 0))
            .unwrap();
        let mut prefix = [0u8; 10];
        socket.read_exact(&mut prefix).unwrap();
        let header = parse_header(&prefix).unwrap();
        // The server answers in the request's own version.
        assert_eq!(header.version, LEGACY_VERSION);
        assert_eq!(header.frame_id, 0);
        let mut payload = vec![0u8; header.payload_len as usize];
        socket.read_exact(&mut payload).unwrap();
        let response = Message::decode(header.tag, &payload).unwrap();
        match request {
            Message::Ping => assert_eq!(response, Message::Pong),
            _ => assert!(matches!(response, Message::Info(_))),
        }
    }

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn tcp_endpoints_serve_too() {
    let dataset = DatasetConfig::gowalla_like(150).generate();
    let assignment = ShardAssignment::compute(&dataset, Partitioning::UserHash, 1).unwrap();
    let engine = GeoSocialEngine::builder(dataset.clone()).build().unwrap();
    let server =
        ShardServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), engine, 0, assignment).unwrap();
    let endpoint = server.endpoint();
    assert!(!matches!(&endpoint, Endpoint::Tcp(addr) if addr.ends_with(":0")));
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let remote = RemoteShardedEngine::builder(vec![endpoint])
        .connect_timeout(Duration::from_secs(10))
        .connect()
        .unwrap();
    let request = QueryRequest::for_user(3)
        .k(4)
        .alpha(0.4)
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    let single = GeoSocialEngine::builder(dataset).build().unwrap();
    let expected = single.run(&request).unwrap();
    let got = remote.query(&request).unwrap();
    assert!(got.same_users_and_scores(&expected, 1e-12));

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
