//! Remote planner parity: `Algorithm::Auto` must cross the wire as a
//! first-class built-in, and a remote coordinator scattering Auto queries
//! over socket shard servers must answer **bit-identically** to the
//! in-process sharded engine — per-shard planners on both sides may pick
//! any concrete exact algorithm (and serve repeats from their hot caches)
//! without the merged ranked vector ever moving.

use ssrq_core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_net::{Endpoint, RemoteShardedEngine, ShardServer};
use ssrq_shard::{Partitioning, ShardAssignment, ShardedEngine};
use ssrq_spatial::{Point, Rect};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct Cluster {
    endpoints: Vec<Endpoint>,
    flags: Vec<Arc<AtomicBool>>,
    handles: Vec<JoinHandle<()>>,
    dir: PathBuf,
}

impl Cluster {
    fn start(dataset: &GeoSocialDataset, policy: Partitioning, shards: usize) -> Cluster {
        let assignment =
            ShardAssignment::compute(dataset, policy, shards).expect("assignment computes");
        let owner = assignment.owners(dataset);
        let dir = std::env::temp_dir().join(format!("ssrq-planner-remote-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut endpoints = Vec::new();
        let mut flags = Vec::new();
        let mut handles = Vec::new();
        for s in 0..shards {
            let shard_dataset = dataset.restrict_locations(|u| owner[u as usize] as usize == s);
            let engine = GeoSocialEngine::builder(shard_dataset)
                .build()
                .expect("shard engine builds");
            let endpoint = Endpoint::Unix(dir.join(format!("shard-{s}.sock")));
            let server =
                ShardServer::bind(&endpoint, engine, s, assignment.clone()).expect("server binds");
            flags.push(server.shutdown_flag());
            endpoints.push(endpoint);
            handles.push(std::thread::spawn(move || {
                server.serve().expect("server loop");
            }));
        }
        Cluster {
            endpoints,
            flags,
            handles,
            dir,
        }
    }

    fn connect(&self) -> RemoteShardedEngine {
        RemoteShardedEngine::builder(self.endpoints.clone())
            .connect_timeout(Duration::from_secs(10))
            .deadline(Duration::from_secs(30))
            .connect()
            .expect("coordinator connects")
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for flag in &self.flags {
            flag.store(true, Ordering::SeqCst);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn remote_auto_is_bit_identical_to_in_process_auto() {
    let dataset = DatasetConfig::gowalla_like(300).generate();
    let policy = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let local = ShardedEngine::builder(dataset.clone())
        .shards(3)
        .partitioning(policy)
        .build()
        .unwrap();
    let cluster = Cluster::start(&dataset, policy, 3);
    let remote = cluster.connect();

    let workload = QueryWorkload::generate(&dataset, 4, 71);
    let mut requests = Vec::new();
    for &user in &workload.users {
        let base = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.4)
            .algorithm(Algorithm::Auto);
        requests.push(base.clone().build().unwrap());
        requests.push(
            base.clone()
                .within(Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.8)))
                .build()
                .unwrap(),
        );
        requests.push(base.max_score(0.6).build().unwrap());
    }

    // Three passes: the first is cold on both sides, later passes mix hot
    // per-shard cache hits with planner exploration — the answers must
    // never move.  All adaptive candidates here are single-mechanism exact
    // methods (no CH / social cache on these shard engines), whose scores
    // are bit-equal, so the comparison is `assert_eq!` on the ranked
    // vector, not a tolerance check.
    for pass in 0..3 {
        for request in &requests {
            let expected = local.run(request).expect("in-process Auto");
            let got = remote.query(request).expect("remote Auto");
            assert_eq!(
                got.ranked, expected.ranked,
                "remote Auto diverged from in-process Auto (pass {pass}, request {request:?})"
            );
            assert!(!got.degraded);
            assert!(got.stats.wire_round_trips >= 1);
        }
    }
}
