//! Property tests for the wire codecs: randomly generated messages —
//! including `f64` edge values, empty collections and every option
//! combination — must round-trip **bit-identically** (decode(encode(x))
//! equals x and re-encodes to the same bytes), and every truncation or
//! corruption of a valid frame must yield a typed [`WireError`], never a
//! panic.

use rand::prelude::*;
use ssrq_core::{Algorithm, QueryRequest, QueryResult, QueryStats, RankedUser};
use ssrq_net::wire::{parse_header, WireError, HEADER_LEN, LEGACY_VERSION};
use ssrq_net::{FailureKind, Message, ShardInfo};
use ssrq_spatial::{Point, Rect};
use std::time::Duration;

/// NaN-free `f64` edge values: signed zeros, subnormals, extremes,
/// infinities.  (NaN is excluded by construction everywhere in the engine —
/// scores are built from finite distances — so the codecs only promise
/// bit-exactness on non-NaN values, where bit-exact implies `==`.)
fn edge_f64(rng: &mut StdRng) -> f64 {
    const EDGES: [f64; 12] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.3,
        f64::MIN_POSITIVE,       // smallest normal
        f64::MIN_POSITIVE / 4.0, // subnormal
        f64::MAX,
        f64::MIN,
        1e-300,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    if rng.gen_bool(0.5) {
        EDGES[rng.gen_range(0..EDGES.len())]
    } else {
        (rng.gen::<f64>() - 0.5) * 1e6
    }
}

fn point(rng: &mut StdRng) -> Point {
    Point::new(edge_f64(rng), edge_f64(rng))
}

fn rect(rng: &mut StdRng) -> Rect {
    // Codecs must carry *any* rectangle bit-exactly, valid or not.
    Rect {
        min: point(rng),
        max: point(rng),
    }
}

fn request(rng: &mut StdRng) -> QueryRequest {
    let mut builder = QueryRequest::for_user(rng.gen_range(0..10_000u32))
        .k(rng.gen_range(0..64usize))
        .alpha(edge_f64(rng));
    builder = if rng.gen_bool(0.8) {
        // Built-ins: the twelve paper methods plus the adaptive AUTO
        // meta-algorithm, which crosses the wire as a built-in too.
        if rng.gen_bool(0.1) {
            builder.algorithm(Algorithm::Auto)
        } else {
            builder.algorithm(Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())])
        }
    } else {
        builder.algorithm("CUSTOM-STRATEGY-ω")
    };
    if rng.gen_bool(0.5) {
        builder = builder.origin(point(rng));
    }
    if rng.gen_bool(0.5) {
        builder = builder.within(rect(rng));
    }
    let exclusions = rng.gen_range(0..10usize);
    builder = builder.exclude((0..exclusions).map(|_| rng.gen_range(0..10_000u32)));
    if rng.gen_bool(0.5) {
        builder = builder.max_score(edge_f64(rng));
    }
    builder.build_unvalidated()
}

fn stats(rng: &mut StdRng) -> QueryStats {
    let counter = |rng: &mut StdRng| rng.gen_range(0..1u64 << 48) as usize;
    QueryStats {
        vertex_pops: counter(rng),
        social_pops: counter(rng),
        spatial_pops: counter(rng),
        index_pops: counter(rng),
        evaluated_users: counter(rng),
        distance_calls: counter(rng),
        cache_hits: counter(rng),
        delayed_reinsertions: counter(rng),
        relaxed_edges: counter(rng),
        streamable_results: counter(rng),
        bytes_sent: counter(rng),
        bytes_received: counter(rng),
        wire_round_trips: counter(rng),
        tighten_frames: counter(rng),
        runtime: Duration::from_nanos(rng.gen_range(0..1u64 << 60)),
    }
}

fn result(rng: &mut StdRng) -> QueryResult {
    let entries = rng.gen_range(0..20usize); // 0 = the empty-result edge
    QueryResult {
        ranked: (0..entries)
            .map(|_| RankedUser {
                user: rng.gen_range(0..10_000u32),
                score: edge_f64(rng),
                social: edge_f64(rng),
                spatial: edge_f64(rng),
            })
            .collect(),
        k: rng.gen_range(0..64usize),
        degraded: rng.gen_bool(0.5),
        stats: stats(rng),
    }
}

fn shard_info(rng: &mut StdRng) -> ShardInfo {
    ShardInfo {
        shard: rng.gen_range(0..64u32),
        shards: rng.gen_range(1..64u32),
        user_count: rng.gen_range(0..1u64 << 40),
        located: rng.gen_range(0..1u64 << 40),
        rect: rng.gen_bool(0.5).then(|| rect(rng)),
        spatial_norm: edge_f64(rng),
        social_norm: edge_f64(rng),
    }
}

fn message(rng: &mut StdRng) -> Message {
    match rng.gen_range(0..18u32) {
        0 => Message::Hello,
        1 => Message::Info(shard_info(rng)),
        2 => Message::Query {
            request: request(rng),
            trace_id: if rng.gen_bool(0.5) { rng.gen() } else { 0 },
        },
        3 => Message::Answer(result(rng)),
        4 => Message::Locate(rng.gen_range(0..10_000u32)),
        5 => Message::Located(rng.gen_bool(0.5).then(|| point(rng))),
        6 => Message::Relocate {
            user: rng.gen_range(0..10_000u32),
            location: rng.gen_bool(0.5).then(|| point(rng)),
        },
        7 => Message::Relocated {
            adopted: rng.gen_bool(0.5),
        },
        8 => Message::ListLocated,
        9 => {
            let n = rng.gen_range(0..16usize);
            Message::LocatedUsers(
                (0..n)
                    .map(|_| (rng.gen_range(0..10_000u32), point(rng)))
                    .collect(),
            )
        }
        10 => {
            let n = rng.gen_range(0..64usize);
            Message::SetAssignment {
                cell_to_shard: (0..n).map(|_| rng.gen_range(0..16u32)).collect(),
            }
        }
        11 => Message::Refresh,
        12 => Message::Fail {
            kind: [
                FailureKind::InvalidRequest,
                FailureKind::UnknownUser,
                FailureKind::UnknownAlgorithm,
                FailureKind::MissingIndex,
                FailureKind::Internal,
            ][rng.gen_range(0..5usize)],
            message: format!("detail #{} — ünïcode", rng.gen_range(0..1000u32)),
        },
        13 => Message::Ping,
        14 => Message::Pong,
        15 => Message::Shutdown,
        16 => Message::Tighten {
            target: rng.gen(),
            max_score: edge_f64(rng),
        },
        _ => Message::Ok,
    }
}

/// Full-frame decode as a receiver performs it: header (either version),
/// declared payload length, payload.
fn decode_frame(bytes: &[u8]) -> Result<Message, WireError> {
    let header = parse_header(bytes)?;
    let start = header.header_len();
    let have = bytes.len() - start;
    if have < header.payload_len as usize {
        return Err(WireError::Truncated {
            needed: header.payload_len as usize,
            have,
        });
    }
    Message::decode(
        header.tag,
        &bytes[start..start + header.payload_len as usize],
    )
}

#[test]
fn random_messages_round_trip_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0x55125);
    for case in 0..500 {
        let original = message(&mut rng);
        let bytes = original.encode();
        let decoded = decode_frame(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: failed to decode {original:?}: {e}"));
        assert_eq!(decoded, original, "case {case}");
        // Canonical encoding: re-encoding the decoded value reproduces the
        // exact bytes (exclusion sets are sorted at encode time, floats are
        // bit patterns).
        assert_eq!(decoded.encode(), bytes, "case {case}: non-canonical");
    }
}

#[test]
fn every_truncation_of_a_valid_frame_is_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let original = message(&mut rng);
        let bytes = original.encode();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                Err(other) => panic!("cut {cut} of {original:?}: unexpected error {other}"),
                Ok(m) => panic!("cut {cut} of {original:?}: decoded {m:?} from a prefix"),
            }
        }
    }
}

#[test]
fn corrupted_frames_never_panic_and_header_errors_are_precise() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..60 {
        let original = message(&mut rng);
        let mut bytes = original.encode();
        let index = rng.gen_range(0..bytes.len());
        let flip: u8 = 1 << rng.gen_range(0..8u32);
        bytes[index] ^= flip;
        // Whatever the corruption, decoding must terminate without panicking;
        // a changed byte may still decode (e.g. a flipped score bit).
        let _ = decode_frame(&bytes);
    }

    let bytes = Message::Ping.encode();
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));
    let mut bad = bytes.clone();
    bad[4] = 200;
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::UnsupportedVersion(200))
    ));
    let mut bad = bytes.clone();
    bad[5] = 0xEE; // unknown message tag
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::UnknownMessage(0xEE))
    ));
    let mut bad = bytes;
    bad[10..14].copy_from_slice(&(u32::MAX).to_le_bytes());
    assert!(matches!(decode_frame(&bad), Err(WireError::Oversize(_))));
}

#[test]
fn frame_ids_and_legacy_encoding_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x1D5);
    for case in 0..200 {
        let original = message(&mut rng);

        // The frame id a request goes out with is exactly what the parsed
        // header reports, and it never disturbs the payload.
        let id: u32 = rng.gen();
        let bytes = original.encode_with_id(id);
        let header = parse_header(&bytes).unwrap();
        assert_eq!(header.frame_id, id, "case {case}");
        assert_eq!(
            decode_frame(&bytes).unwrap_or_else(|e| panic!("case {case}: {e}")),
            original,
            "case {case}"
        );

        // The same message encoded for a legacy (v1) peer decodes to the
        // same value, with the implied frame id 0.
        let legacy = original.encode_in(LEGACY_VERSION, id);
        let header = parse_header(&legacy).unwrap();
        assert_eq!(header.version, LEGACY_VERSION, "case {case}");
        assert_eq!(header.frame_id, 0, "case {case}");
        assert_eq!(
            decode_frame(&legacy).unwrap_or_else(|e| panic!("case {case}: {e}")),
            original,
            "case {case}: legacy decode"
        );
        // Identical payload bytes under both framings.
        assert_eq!(
            &bytes[HEADER_LEN..],
            &legacy[header.header_len()..],
            "case {case}: payloads diverge"
        );
    }
}

#[test]
fn payload_level_corruptions_are_typed_not_panics() {
    // A Located frame whose presence byte is out of range.
    let bytes = Message::Located(Some(Point::new(1.0, 2.0))).encode();
    let mut bad = bytes.clone();
    bad[HEADER_LEN] = 7;
    assert!(matches!(decode_frame(&bad), Err(WireError::Invalid(_))));

    // Trailing garbage after a complete payload.
    let tag = parse_header(&bytes).unwrap().tag;
    let mut padded = bytes[HEADER_LEN..].to_vec();
    padded.extend_from_slice(&[0, 0, 0]);
    assert!(matches!(
        Message::decode(tag, &padded),
        Err(WireError::TrailingBytes(3))
    ));

    // A Fail frame carrying invalid UTF-8.
    let fail = Message::Fail {
        kind: FailureKind::Internal,
        message: "abcd".into(),
    };
    let mut bytes = fail.encode();
    let text_start = bytes.len() - 4;
    bytes[text_start..].copy_from_slice(&[0xFF, 0xFE, 0xFD, 0xFC]);
    assert!(matches!(decode_frame(&bytes), Err(WireError::Invalid(_))));

    // A Query frame naming an unknown built-in algorithm.
    let query = Message::query(
        QueryRequest::for_user(1)
            .algorithm(Algorithm::Sfa)
            .build_unvalidated(),
    );
    let mut bytes = query.encode();
    // The builtin name "SFA" sits after user(4) + k(8) + alpha(8) + spec
    // tag(1) + string length(4) in the payload.
    let name_at = HEADER_LEN + 4 + 8 + 8 + 1 + 4;
    bytes[name_at..name_at + 3].copy_from_slice(b"ZZZ");
    assert!(matches!(decode_frame(&bytes), Err(WireError::Invalid(_))));
}
