//! The coordinator: scatter-gather over shard-server *processes*.
//!
//! [`RemoteShardedEngine`] mirrors the in-process
//! [`ShardedEngine`](ssrq_shard::ShardedEngine) over sockets.  Each shard
//! is one [`ShardClient`] connection (reused across the queries of a
//! batch) wrapped as a [`ShardTransport`], so the coordinator runs the
//! **same** best-first, threshold-forwarding visit loop
//! ([`scatter_sequential`]) and the same deterministic merge
//! ([`merge_ranked`]) as the single-process deployment — the running `f_k`
//! crosses the wire inside the request's
//! [`max_score`](ssrq_core::QueryRequest::max_score) cutoff, bit-exactly.
//!
//! The extra failure modes of a multi-process deployment are explicit:
//! a per-shard deadline bounds how long one slow shard can stall a query,
//! and [`FailurePolicy`] decides whether a dead shard fails the query
//! (`Fail`, the default) or degrades it to a flagged partial answer
//! (`Degrade`).

use crate::client::{Endpoint, ShardClient, WireTraffic};
use crate::error::NetError;
use crate::proto::{Message, ShardInfo};
use ssrq_core::{CoreError, QueryRequest, QueryResult, QueryStats, UserId};
use ssrq_shard::{
    merge_ranked, scatter_sequential, shard_score_lower_bound, FailurePolicy, ShardAssignment,
    ShardStats, ShardTransport,
};
use ssrq_spatial::{Point, Rect};
use std::time::{Duration, Instant};

/// One remote shard as the coordinator sees it: its endpoint, a lazily
/// re-established connection, and the cached handshake [`ShardInfo`] the
/// score lower bound is computed from.
struct RemoteShard {
    endpoint: Endpoint,
    client: Option<ShardClient>,
    info: ShardInfo,
    deadline: Option<Duration>,
    forward_threshold: bool,
    /// The *caller's* score cutoff of the query being scattered — what the
    /// outbound request is rebuilt to when threshold forwarding is off.
    caller_cap: Option<f64>,
}

impl RemoteShard {
    fn protocol(&self, detail: String) -> NetError {
        NetError::Protocol {
            shard: self.endpoint.to_string(),
            detail,
        }
    }

    /// Sends `message` on the cached connection, reconnecting once (a
    /// single immediate attempt) if a previous call poisoned it.  Any
    /// transport-level failure drops the connection so the next call
    /// starts clean.
    fn call(&mut self, message: &Message) -> Result<(Message, WireTraffic), NetError> {
        if self.client.is_none() {
            let mut client = ShardClient::connect(&self.endpoint, Duration::ZERO)?;
            client.set_deadline(self.deadline)?;
            self.client = Some(client);
        }
        let client = self.client.as_mut().expect("just connected");
        match client.call(message) {
            Ok(response) => Ok(response),
            Err(e @ NetError::Remote { .. }) => Err(e), // typed refusal: connection stays usable
            Err(e) => {
                self.client = None;
                Err(e)
            }
        }
    }
}

/// Rebuilds `request` with its score cutoff forced to `cap` — used to
/// *undo* the coordinator's threshold forwarding when it is disabled for
/// measurement (the cutoff [`with_max_score_at_most`](QueryRequest::with_max_score_at_most)
/// merged in can only tighten, so restoring the caller's cap is the only
/// way back).
fn with_cap(request: &QueryRequest, cap: Option<f64>) -> QueryRequest {
    let mut builder = QueryRequest::for_user(request.user())
        .k(request.k())
        .alpha(request.alpha())
        .algorithm(request.algorithm().clone())
        .exclude(request.excluded().iter().copied());
    if let Some(origin) = request.origin() {
        builder = builder.origin(origin);
    }
    if let Some(window) = request.within() {
        builder = builder.within(window);
    }
    if let Some(cap) = cap {
        builder = builder.max_score(cap);
    }
    builder.build_unvalidated()
}

impl ShardTransport for RemoteShard {
    type Error = NetError;

    fn score_lower_bound(&self, request: &QueryRequest) -> f64 {
        shard_score_lower_bound(
            self.info.rect,
            request,
            request.origin(),
            self.info.spatial_norm,
        )
    }

    fn execute(&mut self, request: &QueryRequest) -> Result<QueryResult, NetError> {
        let outbound = if self.forward_threshold {
            request.clone()
        } else {
            with_cap(request, self.caller_cap)
        };
        let (response, traffic) = self.call(&Message::Query(outbound))?;
        match response {
            Message::Answer(mut result) => {
                result.stats.bytes_sent += traffic.bytes_sent;
                result.stats.bytes_received += traffic.bytes_received;
                result.stats.wire_round_trips += 1;
                Ok(result)
            }
            other => Err(self.protocol(format!(
                "expected Answer to Query, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    fn describe(&self) -> String {
        self.endpoint.to_string()
    }
}

/// Configures and connects a [`RemoteShardedEngine`];
/// see [`RemoteShardedEngine::builder`].
#[derive(Debug, Clone)]
pub struct RemoteEngineBuilder {
    endpoints: Vec<Endpoint>,
    policy: FailurePolicy,
    deadline: Option<Duration>,
    connect_timeout: Duration,
    forward_threshold: bool,
    assignment: Option<ShardAssignment>,
}

impl RemoteEngineBuilder {
    /// Sets what a mid-query shard failure does (default:
    /// [`FailurePolicy::Fail`]).
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bounds every per-shard round trip: a shard that does not answer
    /// within `deadline` counts as failed for that query (default: wait
    /// indefinitely).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// How long [`RemoteEngineBuilder::connect`] keeps retrying each
    /// endpoint — shard servers may still be binding their sockets
    /// (default: 5 s).
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Enables or disables forwarding the running `f_k` threshold to later
    /// shards (default: on).  Disabling is for *measurement only* — it
    /// shows, in the later shards' work counters, exactly what the
    /// forwarded cutoff saves; the ranked answer is the same either way.
    pub fn forward_threshold(mut self, on: bool) -> Self {
        self.forward_threshold = on;
        self
    }

    /// Hands the coordinator the deployment's [`ShardAssignment`], which
    /// [`RemoteShardedEngine::rebalance`] needs (everything else works
    /// without it — the servers hold their own replicas).
    pub fn assignment(mut self, assignment: ShardAssignment) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Connects and handshakes every shard: each server must report the
    /// shard index matching its position in the endpoint list, the same
    /// shard count, and the same total user count.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures, or [`NetError::Protocol`] when a server
    /// claims a different topology than the endpoint list implies.
    pub fn connect(self) -> Result<RemoteShardedEngine, NetError> {
        let n = self.endpoints.len();
        if n == 0 {
            return Err(NetError::Core(CoreError::InvalidParameter(
                "a remote sharded engine needs at least one endpoint".into(),
            )));
        }
        if let Some(assignment) = &self.assignment {
            if assignment.shard_count() != n {
                return Err(NetError::Core(CoreError::InvalidParameter(format!(
                    "assignment covers {} shards but {} endpoints were given",
                    assignment.shard_count(),
                    n
                ))));
            }
        }
        let mut shards = Vec::with_capacity(n);
        let mut user_count = None;
        for (index, endpoint) in self.endpoints.iter().enumerate() {
            let mut client = ShardClient::connect(endpoint, self.connect_timeout)?;
            client.set_deadline(self.deadline)?;
            let (response, _) = client.call(&Message::Hello)?;
            let Message::Info(info) = response else {
                return Err(NetError::Protocol {
                    shard: endpoint.to_string(),
                    detail: format!(
                        "expected Info after Hello, got tag 0x{:02x}",
                        response.tag()
                    ),
                });
            };
            if info.shard != index as u32 || info.shards != n as u32 {
                return Err(NetError::Protocol {
                    shard: endpoint.to_string(),
                    detail: format!(
                        "server claims shard {}/{} but sits at position {} of {} endpoints",
                        info.shard, info.shards, index, n
                    ),
                });
            }
            match user_count {
                None => user_count = Some(info.user_count),
                Some(expected) if expected != info.user_count => {
                    return Err(NetError::Protocol {
                        shard: endpoint.to_string(),
                        detail: format!(
                            "server reports {} users but earlier shards report {expected}",
                            info.user_count
                        ),
                    });
                }
                Some(_) => {}
            }
            shards.push(RemoteShard {
                endpoint: endpoint.clone(),
                client: Some(client),
                info,
                deadline: self.deadline,
                forward_threshold: self.forward_threshold,
                caller_cap: None,
            });
        }
        Ok(RemoteShardedEngine {
            shards,
            policy: self.policy,
            user_count: user_count.expect("at least one shard"),
            assignment: self.assignment,
        })
    }
}

/// Scatter-gather SSRQ engine over shard-server processes — the
/// multi-process counterpart of
/// [`ShardedEngine`](ssrq_shard::ShardedEngine), returning the same ranked
/// list for the same deployment.
///
/// Connections persist across queries, so a batch pays the connect +
/// handshake cost once.  Queries take `&mut self` because the scatter
/// drives each connection's request/response exchange.
pub struct RemoteShardedEngine {
    shards: Vec<RemoteShard>,
    policy: FailurePolicy,
    user_count: u64,
    assignment: Option<ShardAssignment>,
}

impl std::fmt::Debug for RemoteShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShardedEngine")
            .field(
                "endpoints",
                &self
                    .shards
                    .iter()
                    .map(|s| s.endpoint.to_string())
                    .collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .field("user_count", &self.user_count)
            .finish()
    }
}

impl RemoteShardedEngine {
    /// Starts configuring a coordinator over `endpoints` (shard `i` is
    /// served at `endpoints[i]`).
    pub fn builder(endpoints: Vec<Endpoint>) -> RemoteEngineBuilder {
        RemoteEngineBuilder {
            endpoints,
            policy: FailurePolicy::default(),
            deadline: None,
            connect_timeout: Duration::from_secs(5),
            forward_threshold: true,
            assignment: None,
        }
    }

    /// Number of remote shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total users of the deployment (every shard holds the full graph).
    pub fn user_count(&self) -> u64 {
        self.user_count
    }

    /// The cached handshake info of shard `shard`.
    pub fn shard_info(&self, shard: usize) -> &ShardInfo {
        &self.shards[shard].info
    }

    /// The active failure policy.
    pub fn failure_policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Switches the failure policy for subsequent queries.
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// Runs one query; see [`RemoteShardedEngine::query_detailed`] for the
    /// per-shard outcomes.
    ///
    /// # Errors
    ///
    /// As [`RemoteShardedEngine::query_detailed`].
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryResult, NetError> {
        self.query_detailed(request).map(|(result, _)| result)
    }

    /// Runs one scatter-gather query and additionally reports the
    /// per-shard [`ShardStats`].
    ///
    /// The coordinator validates locally, resolves the query user's origin
    /// (asking shards in turn when the request does not pin one), then
    /// visits shards best-first with the running `f_k` forwarded — the
    /// exact loop the in-process engine runs.  The merged
    /// [`QueryStats`] include the wire counters (`bytes_sent`,
    /// `bytes_received`, `wire_round_trips`), origin lookups included.
    ///
    /// # Errors
    ///
    /// [`NetError::Core`] for an invalid request or unknown user;
    /// otherwise per [`FailurePolicy`] — under `Fail`, the first shard
    /// failure (timeout, disconnect, typed refusal) aborts the query;
    /// under `Degrade`, transport failures yield a result flagged
    /// [`degraded`](QueryResult::degraded) with the failed shard named in
    /// the outcomes, and only a refusal every shard repeats (e.g. an
    /// unknown algorithm) still errors.
    pub fn query_detailed(
        &mut self,
        request: &QueryRequest,
    ) -> Result<(QueryResult, ShardStats), NetError> {
        let started = Instant::now();
        request.validate().map_err(NetError::Core)?;
        if u64::from(request.user()) >= self.user_count {
            return Err(NetError::Core(CoreError::UnknownUser(request.user())));
        }
        let mut lookups = QueryStats::default();
        let base = match request.origin() {
            Some(_) => request.clone(),
            None => match self.locate_remote(request.user(), &mut lookups)? {
                Some(origin) => request.clone().with_origin(origin),
                None => request.clone(),
            },
        };
        let caller_cap = request.max_score();
        for shard in &mut self.shards {
            shard.caller_cap = caller_cap;
        }
        let scatter = scatter_sequential(&mut self.shards, &base, self.policy)
            .map_err(|failure| failure.error)?;
        let ranked = merge_ranked(scatter.entries, base.k());
        let mut stats = ShardStats::new(scatter.outcomes, started.elapsed());
        stats.merged.merge(&lookups);
        let result = QueryResult {
            ranked,
            k: base.k(),
            degraded: scatter.degraded,
            stats: stats.merged,
        };
        Ok((result, stats))
    }

    /// Runs `requests` back to back on the held connections, one result per
    /// request in order.  Per-request failures follow the failure policy
    /// exactly as [`RemoteShardedEngine::query`]; a failed request does not
    /// stop the batch.
    pub fn query_batch(&mut self, requests: &[QueryRequest]) -> Vec<Result<QueryResult, NetError>> {
        requests.iter().map(|r| self.query(r)).collect()
    }

    /// Asks shards in turn for `user`'s stored location, charging the
    /// round trips to `lookups`.  Transport failures follow the failure
    /// policy: under `Degrade` an unreachable shard is treated as not
    /// holding the user.
    fn locate_remote(
        &mut self,
        user: UserId,
        lookups: &mut QueryStats,
    ) -> Result<Option<Point>, NetError> {
        let policy = self.policy;
        for shard in &mut self.shards {
            let (response, traffic) = match shard.call(&Message::Locate(user)) {
                Ok(exchange) => exchange,
                Err(e @ NetError::Core(_)) | Err(e @ NetError::Remote { .. }) => return Err(e),
                Err(e) => match policy {
                    FailurePolicy::Fail => return Err(e),
                    FailurePolicy::Degrade => continue,
                },
            };
            lookups.bytes_sent += traffic.bytes_sent;
            lookups.bytes_received += traffic.bytes_received;
            lookups.wire_round_trips += 1;
            match response {
                Message::Located(Some(point)) => return Ok(Some(point)),
                Message::Located(None) => {}
                other => {
                    return Err(shard.protocol(format!(
                        "expected Located to Locate, got tag 0x{:02x}",
                        other.tag()
                    )))
                }
            }
        }
        Ok(None)
    }

    /// Moves `user` to `location`: broadcasts the relocation so the owning
    /// shard (per each server's assignment replica) adopts it and every
    /// other shard drops any stale copy.  Returns the adopting shard.
    ///
    /// The adopter's cached bounding rectangle is grown to cover the new
    /// location, keeping the coordinator's shard lower bounds admissible
    /// without a refresh round trip.
    ///
    /// # Errors
    ///
    /// Any shard failure (relocations are exactness-critical, so the
    /// failure policy does not apply), or [`NetError::Protocol`] when not
    /// exactly one shard adopts.
    pub fn update_location(&mut self, user: UserId, location: Point) -> Result<usize, NetError> {
        if u64::from(user) >= self.user_count {
            return Err(NetError::Core(CoreError::UnknownUser(user)));
        }
        let mut adopter = None;
        for (index, shard) in self.shards.iter_mut().enumerate() {
            let message = Message::Relocate {
                user,
                location: Some(location),
            };
            let (response, _) = shard.call(&message)?;
            match response {
                Message::Relocated { adopted: true } => {
                    if let Some(first) = adopter {
                        return Err(shard.protocol(format!(
                            "shards {first} and {index} both adopted user {user}"
                        )));
                    }
                    adopter = Some(index);
                }
                Message::Relocated { adopted: false } => {}
                other => {
                    return Err(shard.protocol(format!(
                        "expected Relocated to Relocate, got tag 0x{:02x}",
                        other.tag()
                    )))
                }
            }
        }
        let Some(adopter) = adopter else {
            return Err(NetError::Protocol {
                shard: "coordinator".into(),
                detail: format!("no shard adopted the relocation of user {user}"),
            });
        };
        let info = &mut self.shards[adopter].info;
        info.rect = Some(match info.rect {
            Some(rect) => rect.including(location),
            None => Rect::new(location, location),
        });
        Ok(adopter)
    }

    /// Removes `user`'s location everywhere (cached rectangles are left as
    /// conservative over-approximations — still valid lower bounds).
    ///
    /// # Errors
    ///
    /// Any shard failure; removal is broadcast to all shards.
    pub fn remove_location(&mut self, user: UserId) -> Result<(), NetError> {
        if u64::from(user) >= self.user_count {
            return Err(NetError::Core(CoreError::UnknownUser(user)));
        }
        for shard in &mut self.shards {
            let message = Message::Relocate {
                user,
                location: None,
            };
            let (response, _) = shard.call(&message)?;
            if !matches!(response, Message::Relocated { .. }) {
                return Err(shard.protocol(format!(
                    "expected Relocated to Relocate, got tag 0x{:02x}",
                    response.tag()
                )));
            }
        }
        Ok(())
    }

    /// Re-handshakes every shard, tightening the cached bounding
    /// rectangles and counts that relocations loosened.
    ///
    /// # Errors
    ///
    /// Any shard failure, or a server whose reported topology changed.
    pub fn refresh(&mut self) -> Result<(), NetError> {
        for (index, shard) in self.shards.iter_mut().enumerate() {
            let (response, _) = shard.call(&Message::Refresh)?;
            let Message::Info(info) = response else {
                return Err(shard.protocol(format!(
                    "expected Info to Refresh, got tag 0x{:02x}",
                    response.tag()
                )));
            };
            if info.shard != index as u32 {
                return Err(shard.protocol(format!(
                    "server now claims shard {} at position {index}",
                    info.shard
                )));
            }
            shard.info = info;
        }
        Ok(())
    }

    /// Repacks the spatial assignment to the *current* location
    /// distribution and migrates every user whose owner changed, exactly
    /// as [`ShardedEngine::rebalance`](ssrq_shard::ShardedEngine::rebalance)
    /// does in-process: gather locations, [`ShardAssignment::repack`],
    /// broadcast the new cell map, relocate the moved users, refresh.
    /// Returns how many users moved shards.
    ///
    /// # Errors
    ///
    /// [`NetError::Core`] when the coordinator was built without
    /// [`RemoteEngineBuilder::assignment`]; otherwise any shard failure
    /// (a rebalance must be all-or-nothing per shard round).
    pub fn rebalance(&mut self) -> Result<usize, NetError> {
        if self.assignment.is_none() {
            return Err(NetError::Core(CoreError::InvalidParameter(
                "rebalance needs the deployment's ShardAssignment \
                 (RemoteEngineBuilder::assignment)"
                    .into(),
            )));
        }
        let mut holders: Vec<(UserId, Point, usize)> = Vec::new();
        for (index, shard) in self.shards.iter_mut().enumerate() {
            let (response, _) = shard.call(&Message::ListLocated)?;
            let Message::LocatedUsers(users) = response else {
                return Err(shard.protocol(format!(
                    "expected LocatedUsers to ListLocated, got tag 0x{:02x}",
                    response.tag()
                )));
            };
            holders.extend(users.into_iter().map(|(user, point)| (user, point, index)));
        }
        let assignment = self.assignment.as_mut().expect("checked above");
        let points: Vec<Point> = holders.iter().map(|&(_, point, _)| point).collect();
        assignment.repack(&points);
        let cell_map = assignment.cell_map().map(<[u32]>::to_vec);
        let moves: Vec<(UserId, Point)> = holders
            .iter()
            .filter(|&&(user, point, holder)| assignment.owner_for(user, Some(point)) != holder)
            .map(|&(user, point, _)| (user, point))
            .collect();
        if let Some(map) = cell_map {
            for shard in &mut self.shards {
                let message = Message::SetAssignment {
                    cell_to_shard: map.clone(),
                };
                let (response, _) = shard.call(&message)?;
                if !matches!(response, Message::Ok) {
                    return Err(shard.protocol(format!(
                        "expected Ok to SetAssignment, got tag 0x{:02x}",
                        response.tag()
                    )));
                }
            }
        }
        for &(user, point) in &moves {
            for shard in &mut self.shards {
                let message = Message::Relocate {
                    user,
                    location: Some(point),
                };
                let (response, _) = shard.call(&message)?;
                if !matches!(response, Message::Relocated { .. }) {
                    return Err(shard.protocol(format!(
                        "expected Relocated to Relocate, got tag 0x{:02x}",
                        response.tag()
                    )));
                }
            }
        }
        self.refresh()?;
        Ok(moves.len())
    }

    /// Broadcasts `Shutdown` to every shard server; continues past
    /// failures (a dead server is already shut down) and reports the first
    /// one.
    ///
    /// # Errors
    ///
    /// The first shard that failed to acknowledge, if any.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        let mut first_error = None;
        for shard in &mut self.shards {
            match shard.call(&Message::Shutdown) {
                Ok((Message::Ok, _)) => {}
                Ok((other, _)) => {
                    let e = shard.protocol(format!(
                        "expected Ok to Shutdown, got tag 0x{:02x}",
                        other.tag()
                    ));
                    first_error.get_or_insert(e);
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
