//! The coordinator: scatter-gather over shard-server *processes*.
//!
//! [`RemoteShardedEngine`] mirrors the in-process
//! [`ShardedEngine`](ssrq_shard::ShardedEngine) over sockets.  Each shard
//! is reached through a small per-endpoint [`ConnectionPool`] of
//! multiplexed connections, wrapped per query as a [`ShardTransport`], so
//! the coordinator runs the **same** threshold-forwarding scatter loops
//! ([`scatter_sequential`] / [`scatter_speculative`]) and the same
//! deterministic merge ([`merge_ranked`]) as the single-process
//! deployment — the running `f_k` crosses the wire inside the request's
//! [`max_score`](ssrq_core::QueryRequest::max_score) cutoff
//! (sequentially) or as one-way tighten frames (speculatively),
//! bit-exactly either way.
//!
//! Because queries only *read* the coordinator's state (per-query
//! transports snapshot the cached shard infos; the pools are internally
//! synchronized), [`RemoteShardedEngine::query`] takes `&self` — any
//! number of threads can drive queries through one engine concurrently.
//! Mutations (relocations, rebalance, refresh) still take `&mut self`.
//!
//! The extra failure modes of a multi-process deployment are explicit:
//! a per-shard deadline bounds how long one slow shard can stall a query,
//! and [`FailurePolicy`] decides whether a dead shard fails the query
//! (`Fail`, the default) or degrades it to a flagged partial answer
//! (`Degrade`).

use crate::client::{ConnectionPool, Endpoint, HealthMonitor, WireTraffic};
use crate::error::NetError;
use crate::proto::{Message, ShardInfo};
use ssrq_core::{CoreError, QueryRequest, QueryResult, QueryStats, UserId};
use ssrq_obs::{
    next_trace_id, ObsReport, QuerySpans, Registry, SlowQuery, SlowQueryLog, SpanId, Trace,
};
use ssrq_shard::{
    merge_ranked, scatter_sequential, scatter_speculative, shard_score_lower_bound, FailurePolicy,
    ScatterMode, ShardAssignment, ShardOutcome, ShardStats, ShardTransport, ThresholdCell,
};
use ssrq_spatial::{Point, Rect};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// How many slow-query offenders the coordinator retains.
const SLOW_LOG_CAPACITY: usize = 64;

/// How often a speculative per-shard waiter polls the shared threshold
/// cell while its answer is in flight.
const TIGHTEN_POLL: Duration = Duration::from_millis(1);

/// The wait used when no per-shard deadline is configured (effectively
/// "indefinitely", while keeping timeout arithmetic overflow-free).
const NO_DEADLINE_WAIT: Duration = Duration::from_secs(3600);

/// One remote shard as the coordinator sees it: its endpoint, a pool of
/// multiplexed connections, the cached handshake [`ShardInfo`] the score
/// lower bound is computed from, and the relocation churn since that
/// info was last refreshed.
struct RemoteShard {
    endpoint: Endpoint,
    pool: Arc<ConnectionPool>,
    info: RwLock<ShardInfo>,
    /// Relocations adopted by this shard since its cached rect was last
    /// tightened — each one can only *grow* the rect, so churn measures
    /// how stale (over-approximated) the pruning bound may be.
    churn: AtomicUsize,
}

impl RemoteShard {
    fn protocol(&self, detail: String) -> NetError {
        NetError::Protocol {
            shard: self.endpoint.to_string(),
            detail,
        }
    }

    /// One pooled request/response call (the pool retries transport
    /// failures once on a fresh connection).
    fn call(
        &self,
        message: &Message,
        deadline: Option<Duration>,
    ) -> Result<(Message, WireTraffic), NetError> {
        self.pool.call(message, deadline)
    }
}

/// Rebuilds `request` with its score cutoff forced to `cap` — used to
/// *undo* the coordinator's threshold forwarding when it is disabled for
/// measurement (the cutoff [`with_max_score_at_most`](QueryRequest::with_max_score_at_most)
/// merged in can only tighten, so restoring the caller's cap is the only
/// way back).
fn with_cap(request: &QueryRequest, cap: Option<f64>) -> QueryRequest {
    let mut builder = QueryRequest::for_user(request.user())
        .k(request.k())
        .alpha(request.alpha())
        .algorithm(request.algorithm().clone())
        .exclude(request.excluded().iter().copied());
    if let Some(origin) = request.origin() {
        builder = builder.origin(origin);
    }
    if let Some(window) = request.within() {
        builder = builder.within(window);
    }
    if let Some(cap) = cap {
        builder = builder.max_score(cap);
    }
    builder.build_unvalidated()
}

/// One shard's view for **one** query: a borrowed [`RemoteShard`] plus a
/// snapshot of its cached info and the query's settings.  Built fresh per
/// query so concurrent queries never contend on coordinator state.
struct QueryTransport<'a> {
    shard: &'a RemoteShard,
    rect: Option<Rect>,
    spatial_norm: f64,
    deadline: Option<Duration>,
    forward_threshold: bool,
    /// The *caller's* score cutoff of the query being scattered — what the
    /// outbound request is rebuilt to when threshold forwarding is off.
    caller_cap: Option<f64>,
    /// This query's trace: the id rides the outbound `Query` frame, and
    /// each shard round trip records a span under `root`.  A trace id of
    /// `0` keeps the wire bytes identical to the untraced encoding.
    trace: &'a Trace,
    root: SpanId,
}

impl ShardTransport for QueryTransport<'_> {
    type Error = NetError;

    fn score_lower_bound(&self, request: &QueryRequest) -> f64 {
        shard_score_lower_bound(self.rect, request, request.origin(), self.spatial_norm)
    }

    fn execute(&mut self, request: &QueryRequest) -> Result<QueryResult, NetError> {
        let outbound = if self.forward_threshold {
            request.clone()
        } else {
            with_cap(request, self.caller_cap)
        };
        let span = self
            .trace
            .open(&format!("shard {}", self.shard.endpoint), Some(self.root));
        let exchange = self.shard.call(
            &Message::Query {
                request: outbound,
                trace_id: self.trace.trace_id(),
            },
            self.deadline,
        );
        self.trace.close(span);
        let (response, traffic) = exchange?;
        match response {
            Message::Answer(mut result) => {
                result.stats.bytes_sent += traffic.bytes_sent;
                result.stats.bytes_received += traffic.bytes_received;
                result.stats.wire_round_trips += 1;
                Ok(result)
            }
            other => Err(self.shard.protocol(format!(
                "expected Answer to Query, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// The speculative path: the query goes out at the caller's cap
    /// immediately; while the answer is in flight, the shared cell is
    /// polled and every tightening is pushed to the server as a one-way
    /// [`Message::Tighten`] — bytes it costs are accounted, but it is
    /// **not** a round trip (`tighten_frames` counts them separately).
    fn execute_with_threshold(
        &mut self,
        request: &QueryRequest,
        threshold: &ThresholdCell,
    ) -> Result<QueryResult, NetError> {
        let started = Instant::now();
        let span = self
            .trace
            .open(&format!("shard {}", self.shard.endpoint), Some(self.root));
        let result = self.speculative_call(request, threshold, started);
        self.trace.close(span);
        result
    }

    fn describe(&self) -> String {
        self.shard.endpoint.to_string()
    }
}

impl QueryTransport<'_> {
    fn speculative_call(
        &mut self,
        request: &QueryRequest,
        threshold: &ThresholdCell,
        started: Instant,
    ) -> Result<QueryResult, NetError> {
        let mut pending = self.shard.pool.start(&Message::Query {
            request: request.clone(),
            trace_id: self.trace.trace_id(),
        })?;
        let mut bytes_sent = pending.bytes_sent;
        let mut tighten_frames = 0usize;
        let mut last_sent = self.caller_cap.unwrap_or(f64::INFINITY);
        loop {
            let remaining = match self.deadline {
                Some(deadline) => match deadline.checked_sub(started.elapsed()) {
                    Some(remaining) => remaining,
                    None => {
                        return Err(NetError::Timeout {
                            shard: self.shard.endpoint.to_string(),
                        })
                    }
                },
                None => NO_DEADLINE_WAIT,
            };
            match pending.wait_timeout(remaining.min(TIGHTEN_POLL))? {
                Some((Message::Answer(mut result), bytes_received)) => {
                    result.stats.bytes_sent += bytes_sent;
                    result.stats.bytes_received += bytes_received;
                    result.stats.wire_round_trips += 1;
                    result.stats.tighten_frames += tighten_frames;
                    return Ok(result);
                }
                Some((Message::Fail { kind, message }, _)) => {
                    return Err(NetError::Remote {
                        shard: self.shard.endpoint.to_string(),
                        kind,
                        message,
                    })
                }
                Some((other, _)) => {
                    return Err(self.shard.protocol(format!(
                        "expected Answer to Query, got tag 0x{:02x}",
                        other.tag()
                    )))
                }
                None => {
                    if !self.forward_threshold {
                        continue;
                    }
                    let cap = threshold.get();
                    if cap < last_sent {
                        bytes_sent += pending.tighten(cap)?;
                        tighten_frames += 1;
                        last_sent = cap;
                    }
                }
            }
        }
    }
}

/// Configures and connects a [`RemoteShardedEngine`];
/// see [`RemoteShardedEngine::builder`].
#[derive(Debug, Clone)]
pub struct RemoteEngineBuilder {
    endpoints: Vec<Endpoint>,
    policy: FailurePolicy,
    scatter: ScatterMode,
    deadline: Option<Duration>,
    connect_timeout: Duration,
    forward_threshold: bool,
    pool_size: usize,
    refresh_after_relocations: usize,
    assignment: Option<ShardAssignment>,
    slow_query_threshold: Option<Duration>,
    health_check: Option<(Duration, u32)>,
}

impl RemoteEngineBuilder {
    /// Captures queries at or above `threshold` (request shape + full
    /// span tree) in the coordinator's bounded slow-query log
    /// ([`RemoteShardedEngine::slow_queries`]).  Off by default.
    pub fn slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = Some(threshold);
        self
    }

    /// Starts a background health monitor: every `interval`, each shard
    /// server is sent a `Ping` and its round-trip latency is recorded as
    /// the gauge `ssrq_ping_rtt_ns{endpoint}`; a server failing
    /// `fail_threshold` consecutive pings is flagged unhealthy
    /// (`ssrq_ping_unhealthy{endpoint}` = 1), all surfaced in `Metrics`
    /// output.  Off by default.
    pub fn health_check(mut self, interval: Duration, fail_threshold: u32) -> Self {
        self.health_check = Some((interval, fail_threshold.max(1)));
        self
    }
    /// Sets what a mid-query shard failure does (default:
    /// [`FailurePolicy::Fail`]).
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how shards are visited (default: [`ScatterMode::Sequential`]).
    pub fn scatter(mut self, mode: ScatterMode) -> Self {
        self.scatter = mode;
        self
    }

    /// Bounds every per-shard round trip: a shard that does not answer
    /// within `deadline` counts as failed for that query (default: wait
    /// indefinitely).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// How long [`RemoteEngineBuilder::connect`] keeps retrying each
    /// endpoint — shard servers may still be binding their sockets
    /// (default: 5 s).
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Enables or disables forwarding the running `f_k` threshold to later
    /// shards (default: on).  Disabling is for *measurement only* — it
    /// shows, in the later shards' work counters, exactly what the
    /// forwarded cutoff saves; the ranked answer is the same either way.
    pub fn forward_threshold(mut self, on: bool) -> Self {
        self.forward_threshold = on;
        self
    }

    /// Caps the multiplexed connections kept per endpoint (default: 2).
    /// One connection carries any number of concurrent in-flight
    /// requests; extra connections only help when a single socket's
    /// serialization becomes the bottleneck.
    pub fn pool_size(mut self, connections: usize) -> Self {
        self.pool_size = connections.max(1);
        self
    }

    /// After how many adopted relocations a shard's cached bounding
    /// rectangle is opportunistically re-tightened with a `Refresh` round
    /// trip (default: 256).  Growth-only rect maintenance keeps bounds
    /// admissible but degrades rect-skip pruning under churn; this knob
    /// bounds the staleness.
    pub fn refresh_after_relocations(mut self, relocations: usize) -> Self {
        self.refresh_after_relocations = relocations.max(1);
        self
    }

    /// Hands the coordinator the deployment's [`ShardAssignment`], which
    /// [`RemoteShardedEngine::rebalance`] needs (everything else works
    /// without it — the servers hold their own replicas).
    pub fn assignment(mut self, assignment: ShardAssignment) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Connects and handshakes every shard: each server must report the
    /// shard index matching its position in the endpoint list, the same
    /// shard count, and the same total user count.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures, or [`NetError::Protocol`] when a server
    /// claims a different topology than the endpoint list implies.
    pub fn connect(self) -> Result<RemoteShardedEngine, NetError> {
        let n = self.endpoints.len();
        if n == 0 {
            return Err(NetError::Core(CoreError::InvalidParameter(
                "a remote sharded engine needs at least one endpoint".into(),
            )));
        }
        if let Some(assignment) = &self.assignment {
            if assignment.shard_count() != n {
                return Err(NetError::Core(CoreError::InvalidParameter(format!(
                    "assignment covers {} shards but {} endpoints were given",
                    assignment.shard_count(),
                    n
                ))));
            }
        }
        let mut shards = Vec::with_capacity(n);
        let mut user_count = None;
        for (index, endpoint) in self.endpoints.iter().enumerate() {
            // Reconnects inside the pool are a single immediate attempt
            // (a dead shard must fail fast mid-query); the *handshake*
            // retries here until `connect_timeout`, because servers may
            // still be binding their sockets.
            let pool = Arc::new(ConnectionPool::new(
                endpoint.clone(),
                self.pool_size,
                Duration::ZERO,
            ));
            let handshake_deadline = Instant::now() + self.connect_timeout;
            let info = loop {
                match pool.call(&Message::Hello, self.deadline) {
                    Ok((Message::Info(info), _)) => break info,
                    Ok((other, _)) => {
                        return Err(NetError::Protocol {
                            shard: endpoint.to_string(),
                            detail: format!(
                                "expected Info after Hello, got tag 0x{:02x}",
                                other.tag()
                            ),
                        })
                    }
                    Err(e @ NetError::Remote { .. }) => return Err(e),
                    Err(e) => {
                        if Instant::now() >= handshake_deadline {
                            return Err(e);
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            };
            if info.shard != index as u32 || info.shards != n as u32 {
                return Err(NetError::Protocol {
                    shard: endpoint.to_string(),
                    detail: format!(
                        "server claims shard {}/{} but sits at position {} of {} endpoints",
                        info.shard, info.shards, index, n
                    ),
                });
            }
            match user_count {
                None => user_count = Some(info.user_count),
                Some(expected) if expected != info.user_count => {
                    return Err(NetError::Protocol {
                        shard: endpoint.to_string(),
                        detail: format!(
                            "server reports {} users but earlier shards report {expected}",
                            info.user_count
                        ),
                    });
                }
                Some(_) => {}
            }
            shards.push(RemoteShard {
                endpoint: endpoint.clone(),
                pool,
                info: RwLock::new(info),
                churn: AtomicUsize::new(0),
            });
        }
        let health = self.health_check.map(|(interval, fail_threshold)| {
            HealthMonitor::start(
                shards
                    .iter()
                    .map(|s| (s.endpoint.to_string(), Arc::clone(&s.pool)))
                    .collect(),
                interval,
                fail_threshold,
                self.deadline,
            )
        });
        Ok(RemoteShardedEngine {
            shards,
            policy: self.policy,
            scatter: self.scatter,
            deadline: self.deadline,
            forward_threshold: self.forward_threshold,
            refresh_after_relocations: self.refresh_after_relocations,
            user_count: user_count.expect("at least one shard"),
            assignment: self.assignment,
            slow_log: self
                .slow_query_threshold
                .map(|threshold| SlowQueryLog::new(threshold, SLOW_LOG_CAPACITY)),
            health,
        })
    }
}

/// Scatter-gather SSRQ engine over shard-server processes — the
/// multi-process counterpart of
/// [`ShardedEngine`](ssrq_shard::ShardedEngine), returning the same ranked
/// list for the same deployment.
///
/// Connections persist across queries in per-endpoint pools, so a batch
/// pays the connect + handshake cost once — and because every query
/// builds its own transports over those pools, queries take `&self`: any
/// number of threads may call [`query`](RemoteShardedEngine::query)
/// concurrently on one shared engine.
pub struct RemoteShardedEngine {
    shards: Vec<RemoteShard>,
    policy: FailurePolicy,
    scatter: ScatterMode,
    deadline: Option<Duration>,
    forward_threshold: bool,
    refresh_after_relocations: usize,
    user_count: u64,
    assignment: Option<ShardAssignment>,
    slow_log: Option<SlowQueryLog>,
    health: Option<HealthMonitor>,
}

impl std::fmt::Debug for RemoteShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShardedEngine")
            .field(
                "endpoints",
                &self
                    .shards
                    .iter()
                    .map(|s| s.endpoint.to_string())
                    .collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .field("scatter", &self.scatter)
            .field("user_count", &self.user_count)
            .finish()
    }
}

impl RemoteShardedEngine {
    /// Starts configuring a coordinator over `endpoints` (shard `i` is
    /// served at `endpoints[i]`).
    pub fn builder(endpoints: Vec<Endpoint>) -> RemoteEngineBuilder {
        RemoteEngineBuilder {
            endpoints,
            policy: FailurePolicy::default(),
            scatter: ScatterMode::default(),
            deadline: None,
            connect_timeout: Duration::from_secs(5),
            forward_threshold: true,
            pool_size: 2,
            refresh_after_relocations: 256,
            assignment: None,
            slow_query_threshold: None,
            health_check: None,
        }
    }

    /// Number of remote shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total users of the deployment (every shard holds the full graph).
    pub fn user_count(&self) -> u64 {
        self.user_count
    }

    /// A snapshot of the cached handshake info of shard `shard`.
    pub fn shard_info(&self, shard: usize) -> ShardInfo {
        self.shards[shard]
            .info
            .read()
            .expect("shard info lock")
            .clone()
    }

    /// Relocations shard `shard` has adopted since its cached rect was
    /// last tightened — the staleness the next opportunistic refresh (or
    /// [`refresh`](RemoteShardedEngine::refresh)) will reclaim.
    pub fn rect_churn(&self, shard: usize) -> usize {
        self.shards[shard].churn.load(Ordering::Relaxed)
    }

    /// The active failure policy.
    pub fn failure_policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Switches the failure policy for subsequent queries.
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// The active scatter mode.
    pub fn scatter_mode(&self) -> ScatterMode {
        self.scatter
    }

    /// Switches the scatter mode for subsequent queries.
    pub fn set_scatter_mode(&mut self, mode: ScatterMode) {
        self.scatter = mode;
    }

    /// Runs one query; see [`RemoteShardedEngine::query_detailed`] for the
    /// per-shard outcomes.
    ///
    /// # Errors
    ///
    /// As [`RemoteShardedEngine::query_detailed`].
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResult, NetError> {
        self.query_detailed(request).map(|(result, _)| result)
    }

    /// Runs one scatter-gather query and additionally reports the
    /// per-shard [`ShardStats`].
    ///
    /// The coordinator validates locally, resolves the query user's origin
    /// (asking shards in turn when the request does not pin one), then
    /// scatters per the configured [`ScatterMode`] — sequentially with the
    /// running `f_k` forwarded in each next request, or speculatively with
    /// every shard in flight at once and the `f_k` pushed as one-way
    /// tighten frames.  Both modes return the same ranked list.  The
    /// merged [`QueryStats`] include the wire counters (`bytes_sent`,
    /// `bytes_received`, `wire_round_trips`, `tighten_frames`), origin
    /// lookups included.
    ///
    /// # Errors
    ///
    /// [`NetError::Core`] for an invalid request or unknown user;
    /// otherwise per [`FailurePolicy`] — under `Fail`, the first shard
    /// failure (timeout, disconnect, typed refusal) aborts the query;
    /// under `Degrade`, transport failures yield a result flagged
    /// [`degraded`](QueryResult::degraded) with the failed shard named in
    /// the outcomes — including a shard that was unreachable while
    /// resolving the query user's origin, which may silently have held it
    /// — and only a refusal every shard repeats (e.g. an unknown
    /// algorithm) still errors.
    pub fn query_detailed(
        &self,
        request: &QueryRequest,
    ) -> Result<(QueryResult, ShardStats), NetError> {
        // Trace id 0 = untraced: outbound frames stay byte-identical to
        // the pre-tracing encoding, and the span tree is recorded only
        // for the slow-query log.
        let trace = Trace::new(0);
        let out = self.query_with_trace(request, &trace);
        self.offer_slow(request, &trace.finish(), out.is_ok());
        out
    }

    /// Runs one query under a freshly minted trace id: the id rides every
    /// outbound `Query` frame (so each shard server's span log and
    /// metrics carry it), and the coordinator's own span tree — origin
    /// resolution, per-shard round trips, merge — is returned alongside
    /// the result.
    ///
    /// # Errors
    ///
    /// As [`RemoteShardedEngine::query_detailed`].
    pub fn query_traced(
        &self,
        request: &QueryRequest,
    ) -> Result<(QueryResult, ShardStats, QuerySpans), NetError> {
        let trace = Trace::new(next_trace_id());
        let out = self.query_with_trace(request, &trace);
        let spans = trace.finish();
        self.offer_slow(request, &spans, out.is_ok());
        out.map(|(result, stats)| (result, stats, spans))
    }

    fn offer_slow(&self, request: &QueryRequest, spans: &QuerySpans, completed: bool) {
        if let (Some(slow_log), true) = (&self.slow_log, completed) {
            slow_log.offer(spans.total_ns(), spans, || {
                format!(
                    "algorithm={} user={} k={} shards={}",
                    request.algorithm().key(),
                    request.user(),
                    request.k(),
                    self.shards.len(),
                )
            });
        }
    }

    /// The coordinator's retained slow-query offenders, oldest first
    /// (empty unless [`RemoteEngineBuilder::slow_query_threshold`] was
    /// set).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log
            .as_ref()
            .map(|log| log.recent())
            .unwrap_or_default()
    }

    /// Whether a background health monitor is pinging the shards (set up
    /// via [`RemoteEngineBuilder::health_check`]). The monitor publishes
    /// `ssrq_ping_*` gauges into the global registry and stops when this
    /// engine is dropped.
    pub fn health_monitoring(&self) -> bool {
        self.health.is_some()
    }

    /// This coordinator process's observability snapshot: the global
    /// metric registry (engine, scatter, health-check series) plus the
    /// span trees of retained slow queries.
    pub fn coordinator_report(&self) -> ObsReport {
        ObsReport {
            metrics: Registry::global().snapshot(),
            spans: self.slow_queries().into_iter().map(|q| q.spans).collect(),
        }
    }

    /// Fetches shard `shard`'s live observability snapshot over the wire
    /// (`MetricsRequest` → `MetricsReport`): its metric registry and its
    /// recent query span trees, trace ids intact.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] when the server
    /// answers with anything but a `MetricsReport` (e.g. a pre-metrics
    /// server).
    pub fn remote_metrics(&self, shard: usize) -> Result<ObsReport, NetError> {
        let shard = &self.shards[shard];
        let (response, _) = shard.call(&Message::MetricsRequest, self.deadline)?;
        match response {
            Message::MetricsReport(report) => Ok(report),
            other => Err(shard.protocol(format!(
                "expected MetricsReport to MetricsRequest, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    fn query_with_trace(
        &self,
        request: &QueryRequest,
        trace: &Trace,
    ) -> Result<(QueryResult, ShardStats), NetError> {
        let started = Instant::now();
        let root = trace.open("coordinator_query", None);
        request.validate().map_err(NetError::Core)?;
        if u64::from(request.user()) >= self.user_count {
            return Err(NetError::Core(CoreError::UnknownUser(request.user())));
        }
        let mut lookups = QueryStats::default();
        let mut locate_failures: Vec<(usize, String)> = Vec::new();
        let base = match request.origin() {
            Some(_) => request.clone(),
            None => {
                let locate = trace.open("resolve_origin", Some(root));
                let resolved =
                    self.locate_remote(request.user(), &mut lookups, &mut locate_failures);
                trace.close(locate);
                match resolved? {
                    Some(origin) => request.clone().with_origin(origin),
                    None => request.clone(),
                }
            }
        };
        let caller_cap = request.max_score();
        let mut transports: Vec<QueryTransport<'_>> = self
            .shards
            .iter()
            .map(|shard| {
                let info = shard.info.read().expect("shard info lock");
                QueryTransport {
                    shard,
                    rect: info.rect,
                    spatial_norm: info.spatial_norm,
                    deadline: self.deadline,
                    forward_threshold: self.forward_threshold,
                    caller_cap,
                    trace,
                    root,
                }
            })
            .collect();
        let scatter_span = trace.open("scatter", Some(root));
        let scatter_started = Instant::now();
        let scatter = match self.scatter {
            ScatterMode::Sequential => scatter_sequential(&mut transports, &base, self.policy),
            ScatterMode::Speculative => scatter_speculative(&mut transports, &base, self.policy),
        };
        let scatter_elapsed = scatter_started.elapsed();
        trace.close(scatter_span);
        let scatter = scatter.map_err(|failure| failure.error)?;
        let merge_span = trace.open("merge", Some(root));
        let merge_started = Instant::now();
        let ranked = merge_ranked(scatter.entries, base.k());
        let merge_elapsed = merge_started.elapsed();
        trace.close(merge_span);
        let mut outcomes = scatter.outcomes;
        let mut degraded = scatter.degraded;
        if base.origin().is_none() && !locate_failures.is_empty() {
            // The origin could not be resolved AND a shard was
            // unreachable while asking — that shard may silently have
            // held the user's location, so the "ran with no origin"
            // answer must not pass as exact.
            degraded = true;
            for (index, detail) in locate_failures {
                outcomes[index] = ShardOutcome::Failed {
                    shard: self.shards[index].endpoint.to_string(),
                    detail: format!("unreachable during origin resolution: {detail}"),
                };
            }
        }
        let mut stats = ShardStats::new(outcomes, started.elapsed());
        stats.merged.merge(&lookups);
        let result = QueryResult {
            ranked,
            k: base.k(),
            degraded,
            stats: stats.merged,
        };
        trace.close(root);
        // Same series names the in-process scatter records, plus the
        // coordinator's own query tallies.
        ssrq_shard::obs::record_scatter(&stats, scatter_elapsed, merge_elapsed);
        let registry = Registry::global();
        registry
            .counter("ssrq_coordinator_queries_total", &[])
            .inc();
        registry
            .histogram("ssrq_coordinator_query_ns", &[])
            .observe_duration(started.elapsed());
        Ok((result, stats))
    }

    /// Runs `requests` back to back on the pooled connections, one result
    /// per request in order.  Per-request failures follow the failure
    /// policy exactly as [`RemoteShardedEngine::query`]; a failed request
    /// does not stop the batch.
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResult, NetError>> {
        requests.iter().map(|r| self.query(r)).collect()
    }

    /// Asks shards in turn for `user`'s stored location, charging the
    /// round trips to `lookups`.  Transport failures follow the failure
    /// policy: under `Degrade` the unreachable shard is recorded in
    /// `failures` — the caller flags the query degraded if the origin
    /// stays unresolved, because the silent answer "not located" may be
    /// wrong.
    fn locate_remote(
        &self,
        user: UserId,
        lookups: &mut QueryStats,
        failures: &mut Vec<(usize, String)>,
    ) -> Result<Option<Point>, NetError> {
        for (index, shard) in self.shards.iter().enumerate() {
            let (response, traffic) = match shard.call(&Message::Locate(user), self.deadline) {
                Ok(exchange) => exchange,
                Err(e @ NetError::Core(_)) | Err(e @ NetError::Remote { .. }) => return Err(e),
                Err(e) => match self.policy {
                    FailurePolicy::Fail => return Err(e),
                    FailurePolicy::Degrade => {
                        failures.push((index, e.to_string()));
                        continue;
                    }
                },
            };
            lookups.bytes_sent += traffic.bytes_sent;
            lookups.bytes_received += traffic.bytes_received;
            lookups.wire_round_trips += 1;
            match response {
                Message::Located(Some(point)) => return Ok(Some(point)),
                Message::Located(None) => {}
                other => {
                    return Err(shard.protocol(format!(
                        "expected Located to Locate, got tag 0x{:02x}",
                        other.tag()
                    )))
                }
            }
        }
        Ok(None)
    }

    /// Moves `user` to `location`: broadcasts the relocation so the owning
    /// shard (per each server's assignment replica) adopts it and every
    /// other shard drops any stale copy.  Returns the adopting shard.
    ///
    /// The adopter's cached bounding rectangle is grown to cover the new
    /// location, keeping the coordinator's shard lower bounds admissible
    /// without a refresh round trip — and its churn counter ticks up;
    /// once it reaches the configured
    /// [`refresh_after_relocations`](RemoteEngineBuilder::refresh_after_relocations),
    /// that one shard is re-handshaken to tighten the rect back down
    /// (growth-only rects otherwise degrade rect-skip pruning forever).
    ///
    /// # Errors
    ///
    /// Any shard failure (relocations are exactness-critical, so the
    /// failure policy does not apply), or [`NetError::Protocol`] when not
    /// exactly one shard adopts.
    pub fn update_location(&mut self, user: UserId, location: Point) -> Result<usize, NetError> {
        if u64::from(user) >= self.user_count {
            return Err(NetError::Core(CoreError::UnknownUser(user)));
        }
        let mut adopter = None;
        for (index, shard) in self.shards.iter().enumerate() {
            let message = Message::Relocate {
                user,
                location: Some(location),
            };
            let (response, _) = shard.call(&message, self.deadline)?;
            match response {
                Message::Relocated { adopted: true } => {
                    if let Some(first) = adopter {
                        return Err(shard.protocol(format!(
                            "shards {first} and {index} both adopted user {user}"
                        )));
                    }
                    adopter = Some(index);
                }
                Message::Relocated { adopted: false } => {}
                other => {
                    return Err(shard.protocol(format!(
                        "expected Relocated to Relocate, got tag 0x{:02x}",
                        other.tag()
                    )))
                }
            }
        }
        let Some(adopter) = adopter else {
            return Err(NetError::Protocol {
                shard: "coordinator".into(),
                detail: format!("no shard adopted the relocation of user {user}"),
            });
        };
        let shard = &self.shards[adopter];
        {
            let mut info = shard.info.write().expect("shard info lock");
            info.rect = Some(match info.rect {
                Some(rect) => rect.including(location),
                None => Rect::new(location, location),
            });
        }
        let churn = shard.churn.fetch_add(1, Ordering::Relaxed) + 1;
        if churn >= self.refresh_after_relocations {
            self.refresh_shard(adopter)?;
        }
        Ok(adopter)
    }

    /// Removes `user`'s location everywhere (cached rectangles are left as
    /// conservative over-approximations — still valid lower bounds).
    ///
    /// # Errors
    ///
    /// Any shard failure; removal is broadcast to all shards.
    pub fn remove_location(&mut self, user: UserId) -> Result<(), NetError> {
        if u64::from(user) >= self.user_count {
            return Err(NetError::Core(CoreError::UnknownUser(user)));
        }
        for shard in &self.shards {
            let message = Message::Relocate {
                user,
                location: None,
            };
            let (response, _) = shard.call(&message, self.deadline)?;
            if !matches!(response, Message::Relocated { .. }) {
                return Err(shard.protocol(format!(
                    "expected Relocated to Relocate, got tag 0x{:02x}",
                    response.tag()
                )));
            }
        }
        Ok(())
    }

    /// Re-handshakes one shard, replacing its cached info (tightened
    /// rect, fresh occupancy) and resetting its churn counter.
    fn refresh_shard(&self, index: usize) -> Result<(), NetError> {
        let shard = &self.shards[index];
        let (response, _) = shard.call(&Message::Refresh, self.deadline)?;
        let Message::Info(info) = response else {
            return Err(shard.protocol(format!(
                "expected Info to Refresh, got tag 0x{:02x}",
                response.tag()
            )));
        };
        if info.shard != index as u32 {
            return Err(shard.protocol(format!(
                "server now claims shard {} at position {index}",
                info.shard
            )));
        }
        *shard.info.write().expect("shard info lock") = info;
        shard.churn.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Re-handshakes every shard, tightening the cached bounding
    /// rectangles and counts that relocations loosened.
    ///
    /// # Errors
    ///
    /// Any shard failure, or a server whose reported topology changed.
    pub fn refresh(&mut self) -> Result<(), NetError> {
        for index in 0..self.shards.len() {
            self.refresh_shard(index)?;
        }
        Ok(())
    }

    /// Repacks the spatial assignment to the *current* location
    /// distribution and migrates every user whose owner changed, exactly
    /// as [`ShardedEngine::rebalance`](ssrq_shard::ShardedEngine::rebalance)
    /// does in-process: gather locations, [`ShardAssignment::repack`],
    /// broadcast the new cell map, relocate the moved users, refresh.
    /// Returns how many users moved shards.
    ///
    /// # Errors
    ///
    /// [`NetError::Core`] when the coordinator was built without
    /// [`RemoteEngineBuilder::assignment`]; otherwise any shard failure
    /// (a rebalance must be all-or-nothing per shard round).
    pub fn rebalance(&mut self) -> Result<usize, NetError> {
        if self.assignment.is_none() {
            return Err(NetError::Core(CoreError::InvalidParameter(
                "rebalance needs the deployment's ShardAssignment \
                 (RemoteEngineBuilder::assignment)"
                    .into(),
            )));
        }
        let mut holders: Vec<(UserId, Point, usize)> = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let (response, _) = shard.call(&Message::ListLocated, self.deadline)?;
            let Message::LocatedUsers(users) = response else {
                return Err(shard.protocol(format!(
                    "expected LocatedUsers to ListLocated, got tag 0x{:02x}",
                    response.tag()
                )));
            };
            holders.extend(users.into_iter().map(|(user, point)| (user, point, index)));
        }
        let assignment = self.assignment.as_mut().expect("checked above");
        let points: Vec<Point> = holders.iter().map(|&(_, point, _)| point).collect();
        assignment.repack(&points);
        let cell_map = assignment.cell_map().map(<[u32]>::to_vec);
        let moves: Vec<(UserId, Point)> = holders
            .iter()
            .filter(|&&(user, point, holder)| assignment.owner_for(user, Some(point)) != holder)
            .map(|&(user, point, _)| (user, point))
            .collect();
        if let Some(map) = cell_map {
            for shard in &self.shards {
                let message = Message::SetAssignment {
                    cell_to_shard: map.clone(),
                };
                let (response, _) = shard.call(&message, self.deadline)?;
                if !matches!(response, Message::Ok) {
                    return Err(shard.protocol(format!(
                        "expected Ok to SetAssignment, got tag 0x{:02x}",
                        response.tag()
                    )));
                }
            }
        }
        for &(user, point) in &moves {
            for shard in &self.shards {
                let message = Message::Relocate {
                    user,
                    location: Some(point),
                };
                let (response, _) = shard.call(&message, self.deadline)?;
                if !matches!(response, Message::Relocated { .. }) {
                    return Err(shard.protocol(format!(
                        "expected Relocated to Relocate, got tag 0x{:02x}",
                        response.tag()
                    )));
                }
            }
        }
        self.refresh()?;
        Ok(moves.len())
    }

    /// Broadcasts `Shutdown` to every shard server; continues past
    /// failures (a dead server is already shut down) and reports the first
    /// one.  The connection pools are closed afterwards.
    ///
    /// # Errors
    ///
    /// The first shard that failed to acknowledge, if any.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        let mut first_error = None;
        for shard in &self.shards {
            match shard.call(&Message::Shutdown, self.deadline) {
                Ok((Message::Ok, _)) => {}
                Ok((other, _)) => {
                    let e = shard.protocol(format!(
                        "expected Ok to Shutdown, got tag 0x{:02x}",
                        other.tag()
                    ));
                    first_error.get_or_insert(e);
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
            shard.pool.close();
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
