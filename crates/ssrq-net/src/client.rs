//! The client side of one shard connection: endpoint parsing, connect
//! with retry, framed request/response calls with byte accounting.

use crate::error::NetError;
use crate::proto::Message;
use crate::wire::{parse_header, HEADER_LEN};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where a shard server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (`unix:/path/to.sock`).
    Unix(PathBuf),
    /// A TCP address (`tcp:host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Parses `unix:<path>` or `tcp:<addr>`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] for any other scheme.
    pub fn parse(s: &str) -> Result<Endpoint, NetError> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_owned()));
        }
        Err(NetError::Protocol {
            shard: s.to_owned(),
            detail: "endpoint must start with unix: or tcp:".into(),
        })
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One connected socket, Unix-domain or TCP.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn connect(endpoint: &Endpoint) -> std::io::Result<Stream> {
        Ok(match endpoint {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true).ok();
                Stream::Tcp(stream)
            }
        })
    }

    pub(crate) fn set_timeouts(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Stream::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Bytes moved by one [`ShardClient::call`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTraffic {
    /// Bytes written (frame header included).
    pub bytes_sent: usize,
    /// Bytes read (frame header included).
    pub bytes_received: usize,
}

/// A framed request/response connection to one shard server.
///
/// The connection is reused across calls (and across the queries of a
/// batch); it is **not** internally synchronized — one in-flight call at a
/// time, which is exactly what the sequential scatter needs.
#[derive(Debug)]
pub struct ShardClient {
    endpoint: Endpoint,
    stream: Stream,
}

impl ShardClient {
    /// Connects to `endpoint`, retrying until `timeout` elapses — shard
    /// servers may still be binding their socket when the coordinator
    /// starts.
    ///
    /// # Errors
    ///
    /// The last connect failure once the timeout is exhausted.
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> Result<ShardClient, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Stream::connect(endpoint) {
                Ok(stream) => {
                    return Ok(ShardClient {
                        endpoint: endpoint.clone(),
                        stream,
                    })
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// The endpoint this client talks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Sets the per-call deadline: both the write and the read of every
    /// subsequent [`ShardClient::call`] must complete within `deadline`.
    /// `None` waits indefinitely.
    ///
    /// # Errors
    ///
    /// The socket-level failure, if the timeout cannot be applied.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_timeouts(deadline)?;
        Ok(())
    }

    fn io_error(&self, e: std::io::Error) -> NetError {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout {
                shard: self.endpoint.to_string(),
            },
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => NetError::Disconnected {
                shard: self.endpoint.to_string(),
            },
            _ => NetError::Io(e),
        }
    }

    /// Sends one message and reads the response frame, returning the
    /// decoded response and the bytes moved.
    ///
    /// A [`Message::Fail`] response is surfaced as [`NetError::Remote`];
    /// the traffic it cost is still accounted on the error path's caller
    /// via the request that triggered it being retried or dropped.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] past the deadline, [`NetError::Disconnected`]
    /// on EOF/reset, [`NetError::Wire`] for malformed frames,
    /// [`NetError::Remote`] for a typed server refusal.
    pub fn call(&mut self, message: &Message) -> Result<(Message, WireTraffic), NetError> {
        let bytes = message.encode();
        self.stream
            .write_all(&bytes)
            .map_err(|e| self.io_error(e))?;
        self.stream.flush().map_err(|e| self.io_error(e))?;
        let mut traffic = WireTraffic {
            bytes_sent: bytes.len(),
            bytes_received: 0,
        };

        let mut header = [0u8; HEADER_LEN];
        self.read_full(&mut header)?;
        traffic.bytes_received += HEADER_LEN;
        let (tag, len) = parse_header(&header)?;
        let mut payload = vec![0u8; len as usize];
        self.read_full(&mut payload)?;
        traffic.bytes_received += payload.len();
        let response = Message::decode(tag, &payload)?;
        if let Message::Fail { kind, message } = response {
            return Err(NetError::Remote {
                shard: self.endpoint.to_string(),
                kind,
                message,
            });
        }
        Ok((response, traffic))
    }

    /// Reads exactly `buf.len()` bytes, mapping EOF and timeouts to the
    /// crate's typed errors.  (Unlike `read_exact`, never mixes a timeout
    /// into an unspecified partial-read state silently: any failure
    /// poisons the connection and the caller drops the client.)
    fn read_full(&mut self, buf: &mut [u8]) -> Result<(), NetError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(NetError::Disconnected {
                        shard: self.endpoint.to_string(),
                    })
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(self.io_error(e)),
            }
        }
        Ok(())
    }
}
