//! The client side of shard connections: endpoint parsing, connect with
//! retry, framed request/response calls with byte accounting — and the
//! multiplexing layer ([`MuxConnection`], [`ConnectionPool`]) that lets
//! many concurrent queries share a few sockets per endpoint.

use crate::error::NetError;
use crate::proto::Message;
use crate::wire::{header_tail, parse_header, FrameHeader, HEADER_PREFIX};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a shard server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (`unix:/path/to.sock`).
    Unix(PathBuf),
    /// A TCP address (`tcp:host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Parses `unix:<path>` or `tcp:<addr>`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] for any other scheme.
    pub fn parse(s: &str) -> Result<Endpoint, NetError> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_owned()));
        }
        Err(NetError::Protocol {
            shard: s.to_owned(),
            detail: "endpoint must start with unix: or tcp:".into(),
        })
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One connected socket, Unix-domain or TCP.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn connect(endpoint: &Endpoint) -> std::io::Result<Stream> {
        Ok(match endpoint {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true).ok();
                Stream::Tcp(stream)
            }
        })
    }

    pub(crate) fn set_timeouts(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Stream::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }

    /// Duplicates the socket handle.  Timeouts are a property of the
    /// shared socket, not the handle — a multiplexed connection therefore
    /// only ever sets the **write** timeout, so its blocking reader is
    /// not disturbed.
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Sets only the read timeout (shared by every handle of the socket);
    /// writes stay blocking.
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Shuts the socket down in both directions, waking a reader blocked
    /// in `read` on another handle of the same socket.
    pub(crate) fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Connects with retry until `timeout` elapses — shard servers may
    /// still be binding their socket when the coordinator starts.
    fn connect_retry(endpoint: &Endpoint, timeout: Duration) -> Result<Stream, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Stream::connect(endpoint) {
                Ok(stream) => return Ok(stream),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }
}

fn map_io_error(endpoint: &Endpoint, e: std::io::Error) -> NetError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout {
            shard: endpoint.to_string(),
        },
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => NetError::Disconnected {
            shard: endpoint.to_string(),
        },
        _ => NetError::Io(e),
    }
}

/// Reads exactly `buf.len()` bytes, mapping EOF and timeouts to the
/// crate's typed errors.
fn read_full_stream(
    stream: &mut Stream,
    endpoint: &Endpoint,
    buf: &mut [u8],
) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(NetError::Disconnected {
                    shard: endpoint.to_string(),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(map_io_error(endpoint, e)),
        }
    }
    Ok(())
}

/// Reads one whole frame (two-phase header read, then payload), returning
/// the parsed header and payload bytes.
fn read_frame_stream(
    stream: &mut Stream,
    endpoint: &Endpoint,
) -> Result<(FrameHeader, Vec<u8>), NetError> {
    let mut header = vec![0u8; HEADER_PREFIX];
    read_full_stream(stream, endpoint, &mut header)?;
    let tail = header_tail(header[4])?;
    if tail > 0 {
        let start = header.len();
        header.resize(start + tail, 0);
        read_full_stream(stream, endpoint, &mut header[start..])?;
    }
    let parsed = parse_header(&header)?;
    let mut payload = vec![0u8; parsed.payload_len as usize];
    read_full_stream(stream, endpoint, &mut payload)?;
    Ok((parsed, payload))
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Bytes moved by one [`ShardClient::call`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTraffic {
    /// Bytes written (frame header included).
    pub bytes_sent: usize,
    /// Bytes read (frame header included).
    pub bytes_received: usize,
}

/// A framed request/response connection to one shard server.
///
/// The connection is reused across calls (and across the queries of a
/// batch); it is **not** internally synchronized — one in-flight call at a
/// time, which is exactly what the sequential scatter needs.
#[derive(Debug)]
pub struct ShardClient {
    endpoint: Endpoint,
    stream: Stream,
}

impl ShardClient {
    /// Connects to `endpoint`, retrying until `timeout` elapses — shard
    /// servers may still be binding their socket when the coordinator
    /// starts.
    ///
    /// # Errors
    ///
    /// The last connect failure once the timeout is exhausted.
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> Result<ShardClient, NetError> {
        Ok(ShardClient {
            endpoint: endpoint.clone(),
            stream: Stream::connect_retry(endpoint, timeout)?,
        })
    }

    /// The endpoint this client talks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Sets the per-call deadline: both the write and the read of every
    /// subsequent [`ShardClient::call`] must complete within `deadline`.
    /// `None` waits indefinitely.
    ///
    /// # Errors
    ///
    /// The socket-level failure, if the timeout cannot be applied.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_timeouts(deadline)?;
        Ok(())
    }

    fn io_error(&self, e: std::io::Error) -> NetError {
        map_io_error(&self.endpoint, e)
    }

    /// Sends one message and reads the response frame, returning the
    /// decoded response and the bytes moved.
    ///
    /// A [`Message::Fail`] response is surfaced as [`NetError::Remote`];
    /// the traffic it cost is still accounted on the error path's caller
    /// via the request that triggered it being retried or dropped.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] past the deadline, [`NetError::Disconnected`]
    /// on EOF/reset, [`NetError::Wire`] for malformed frames,
    /// [`NetError::Remote`] for a typed server refusal.
    pub fn call(&mut self, message: &Message) -> Result<(Message, WireTraffic), NetError> {
        let bytes = message.encode();
        self.stream
            .write_all(&bytes)
            .map_err(|e| self.io_error(e))?;
        self.stream.flush().map_err(|e| self.io_error(e))?;
        let mut traffic = WireTraffic {
            bytes_sent: bytes.len(),
            bytes_received: 0,
        };

        let (header, payload) = read_frame_stream(&mut self.stream, &self.endpoint)?;
        traffic.bytes_received += header.header_len() + payload.len();
        let response = Message::decode(header.tag, &payload)?;
        if let Message::Fail { kind, message } = response {
            return Err(NetError::Remote {
                shard: self.endpoint.to_string(),
                kind,
                message,
            });
        }
        Ok((response, traffic))
    }
}

/// State shared between a [`MuxConnection`]'s callers and its reader
/// thread.  The reader holds only this (plus its socket handle), never
/// the connection itself — no `Arc` cycle, so dropping the last
/// connection handle reliably tears the reader down.
#[derive(Debug)]
struct MuxShared {
    /// In-flight calls awaiting their response, by frame id.
    pending: Mutex<HashMap<u32, mpsc::Sender<(Message, usize)>>>,
    /// Set when the socket failed or closed; a dead connection is never
    /// leased again and every waiter is woken (by dropping its sender).
    dead: AtomicBool,
    /// Calls started and not yet finished — the pool's load metric.
    in_flight: AtomicUsize,
    /// Next frame id; 0 is reserved as the legacy one-in-flight sentinel.
    next_id: AtomicU32,
}

impl MuxShared {
    fn fail_all(&self) {
        self.dead.store(true, Ordering::Release);
        // Dropping the senders wakes every `recv_timeout` with a
        // disconnect, which the waiter maps to `NetError::Disconnected`.
        self.pending.lock().expect("mux pending lock").clear();
    }
}

/// One multiplexed connection to a shard server: many concurrent
/// request/response calls share the socket, matched up by frame id.
///
/// Writes go through an internal mutex (one frame at a time); a dedicated
/// reader thread dispatches response frames to their waiting callers.  A
/// response whose frame id no longer has a waiter (the call timed out) is
/// discarded — unlike the one-in-flight [`ShardClient`], a timeout does
/// **not** poison the connection.
#[derive(Debug)]
pub struct MuxConnection {
    endpoint: Endpoint,
    writer: Mutex<Stream>,
    /// A separate socket handle for waking the reader at drop time —
    /// avoids taking the writer lock (a blocked writer must not make the
    /// connection un-droppable).
    control: Stream,
    shared: Arc<MuxShared>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl MuxConnection {
    /// Connects (with retry until `timeout`) and starts the reader thread.
    ///
    /// # Errors
    ///
    /// The last connect failure once the timeout is exhausted.
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> Result<Arc<MuxConnection>, NetError> {
        let stream = Stream::connect_retry(endpoint, timeout)?;
        let reader_stream = stream.try_clone().map_err(NetError::Io)?;
        let control = stream.try_clone().map_err(NetError::Io)?;
        let shared = Arc::new(MuxShared {
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            next_id: AtomicU32::new(1),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            let endpoint = endpoint.clone();
            std::thread::spawn(move || Self::read_loop(reader_stream, endpoint, shared))
        };
        Ok(Arc::new(MuxConnection {
            endpoint: endpoint.clone(),
            writer: Mutex::new(stream),
            control,
            shared,
            reader: Some(reader),
        }))
    }

    /// The endpoint this connection talks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Whether the socket has failed or closed.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Calls currently in flight on this connection.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    fn read_loop(mut stream: Stream, endpoint: Endpoint, shared: Arc<MuxShared>) {
        loop {
            let (header, payload) = match read_frame_stream(&mut stream, &endpoint) {
                Ok(frame) => frame,
                Err(_) => {
                    shared.fail_all();
                    return;
                }
            };
            let bytes = header.header_len() + payload.len();
            let message = match Message::decode(header.tag, &payload) {
                Ok(message) => message,
                Err(_) => {
                    // A frame we cannot decode means the stream framing
                    // can no longer be trusted.
                    shared.fail_all();
                    return;
                }
            };
            let waiter = shared
                .pending
                .lock()
                .expect("mux pending lock")
                .remove(&header.frame_id);
            if let Some(tx) = waiter {
                // A waiter that gave up (timed out) has dropped its
                // receiver; the late response is simply discarded.
                let _ = tx.send((message, bytes));
            }
        }
    }

    fn write_frame(&self, bytes: &[u8]) -> Result<(), NetError> {
        let mut writer = self.writer.lock().expect("mux writer lock");
        writer
            .write_all(bytes)
            .and_then(|()| writer.flush())
            .map_err(|e| {
                self.shared.fail_all();
                map_io_error(&self.endpoint, e)
            })
    }

    /// Starts one request/response call, returning a handle to await the
    /// response on.  Many calls may be in flight at once.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the connection is already dead, or
    /// the write failure.
    pub fn start(self: &Arc<Self>, message: &Message) -> Result<PendingCall, NetError> {
        if self.is_dead() {
            return Err(NetError::Disconnected {
                shard: self.endpoint.to_string(),
            });
        }
        let mut id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        if id == 0 {
            // u32 wrap: skip the legacy sentinel.
            id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        }
        let (tx, rx) = mpsc::channel();
        self.shared
            .pending
            .lock()
            .expect("mux pending lock")
            .insert(id, tx);
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let mut call = PendingCall {
            conn: Arc::clone(self),
            id,
            rx,
            bytes_sent: 0,
            finished: false,
        };
        let bytes = message.encode_with_id(id);
        // A write failure drops `call`, which deregisters the pending
        // entry and releases the in-flight slot.
        self.write_frame(&bytes)?;
        call.bytes_sent = bytes.len();
        Ok(call)
    }

    /// One blocking request/response call over the multiplexed socket:
    /// [`start`](Self::start) + wait until `deadline` (`None` waits
    /// indefinitely).
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] past the deadline (the connection stays
    /// usable), [`NetError::Disconnected`] if the socket dies,
    /// [`NetError::Remote`] for a typed server refusal.
    pub fn call(
        self: &Arc<Self>,
        message: &Message,
        deadline: Option<Duration>,
    ) -> Result<(Message, WireTraffic), NetError> {
        let mut call = self.start(message)?;
        let bytes_sent = call.bytes_sent;
        let wait = deadline.unwrap_or(Duration::from_secs(3600));
        match call.wait_timeout(wait)? {
            Some((response, bytes_received)) => {
                let traffic = WireTraffic {
                    bytes_sent,
                    bytes_received,
                };
                if let Message::Fail { kind, message } = response {
                    return Err(NetError::Remote {
                        shard: self.endpoint.to_string(),
                        kind,
                        message,
                    });
                }
                Ok((response, traffic))
            }
            None => Err(NetError::Timeout {
                shard: self.endpoint.to_string(),
            }),
        }
    }
}

impl Drop for MuxConnection {
    fn drop(&mut self) {
        self.shared.fail_all();
        self.control.shutdown();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// A started call on a [`MuxConnection`], awaiting its response.
///
/// Dropping the handle abandons the call: the pending entry is removed
/// and a late response is discarded by the reader.
#[derive(Debug)]
pub struct PendingCall {
    conn: Arc<MuxConnection>,
    id: u32,
    rx: mpsc::Receiver<(Message, usize)>,
    /// Bytes written for the request frame (header included).
    pub bytes_sent: usize,
    finished: bool,
}

impl PendingCall {
    /// The frame id this call travels under.
    pub fn frame_id(&self) -> u32 {
        self.id
    }

    /// Waits up to `wait` for the response.  `Ok(None)` means the wait
    /// elapsed — the call is still in flight and may be waited on again.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the connection died under the call.
    pub fn wait_timeout(&mut self, wait: Duration) -> Result<Option<(Message, usize)>, NetError> {
        match self.rx.recv_timeout(wait) {
            Ok((message, bytes)) => {
                self.finished = true;
                self.conn.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                Ok(Some((message, bytes)))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected {
                shard: self.conn.endpoint.to_string(),
            }),
        }
    }

    /// Pushes a one-way [`Message::Tighten`] for this in-flight call: the
    /// server lowers the running query's score cap to `max_score`.
    /// Returns the bytes written (a tighten costs bytes but no round
    /// trip).
    ///
    /// # Errors
    ///
    /// The write failure; the underlying call itself is then doomed too.
    pub fn tighten(&self, max_score: f64) -> Result<usize, NetError> {
        let frame = Message::Tighten {
            target: self.id,
            max_score,
        }
        .encode();
        self.conn.write_frame(&frame)?;
        Ok(frame.len())
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if !self.finished {
            self.conn
                .shared
                .pending
                .lock()
                .expect("mux pending lock")
                .remove(&self.id);
            self.conn.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// A small per-endpoint pool of [`MuxConnection`]s.
///
/// Leases prefer the least-loaded live connection and only open a new
/// socket while all existing ones are busy and the pool is below
/// capacity; dead connections are pruned on the way.  The pool is `Sync`:
/// any number of query threads may lease concurrently.
#[derive(Debug)]
pub struct ConnectionPool {
    endpoint: Endpoint,
    capacity: usize,
    connect_timeout: Duration,
    connections: Mutex<Vec<Arc<MuxConnection>>>,
}

impl ConnectionPool {
    /// A pool of up to `capacity` connections to `endpoint` (capacity is
    /// clamped to at least 1).
    pub fn new(endpoint: Endpoint, capacity: usize, connect_timeout: Duration) -> ConnectionPool {
        ConnectionPool {
            endpoint,
            capacity: capacity.max(1),
            connect_timeout,
            connections: Mutex::new(Vec::new()),
        }
    }

    /// The endpoint this pool serves.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Leases a live connection: the least-loaded one, or a freshly
    /// opened one while the pool is below capacity and everything is
    /// busy.
    ///
    /// # Errors
    ///
    /// The connect failure when a new socket is needed and cannot be
    /// opened.
    pub fn lease(&self) -> Result<Arc<MuxConnection>, NetError> {
        let mut connections = self.connections.lock().expect("pool lock");
        connections.retain(|c| !c.is_dead());
        let best = connections
            .iter()
            .min_by_key(|c| c.in_flight())
            .map(Arc::clone);
        match best {
            Some(conn) if conn.in_flight() == 0 || connections.len() >= self.capacity => Ok(conn),
            _ => {
                let conn = MuxConnection::connect(&self.endpoint, self.connect_timeout)?;
                connections.push(Arc::clone(&conn));
                Ok(conn)
            }
        }
    }

    /// One request/response call through the pool, with the coordinator's
    /// one-immediate-reconnect semantics: a transport-level failure is
    /// retried once on a fresh lease (a typed [`NetError::Remote`]
    /// refusal is returned as-is — the connection is fine).
    ///
    /// # Errors
    ///
    /// The second attempt's failure.
    pub fn call(
        &self,
        message: &Message,
        deadline: Option<Duration>,
    ) -> Result<(Message, WireTraffic), NetError> {
        match self.lease().and_then(|conn| conn.call(message, deadline)) {
            Ok(response) => Ok(response),
            Err(NetError::Remote {
                shard,
                kind,
                message,
            }) => Err(NetError::Remote {
                shard,
                kind,
                message,
            }),
            Err(_) => self.lease()?.call(message, deadline),
        }
    }

    /// Starts one call through the pool (no retry — the caller owns the
    /// failure policy for in-flight work).
    ///
    /// # Errors
    ///
    /// The lease or write failure.
    pub fn start(&self, message: &Message) -> Result<PendingCall, NetError> {
        self.lease()?.start(message)
    }

    /// Drops every pooled connection (their reader threads shut down as
    /// the last handles go).
    pub fn close(&self) {
        self.connections.lock().expect("pool lock").clear();
    }
}

/// A background health checker over a set of [`ConnectionPool`]s.
///
/// Every `interval` it sends [`Message::Ping`] to each endpoint through
/// its pool and records the outcome in the global metrics registry:
///
/// - `ssrq_ping_rtt_ns{endpoint}` — round-trip latency of the last
///   successful ping, in nanoseconds;
/// - `ssrq_ping_consecutive_failures{endpoint}` — failures since the
///   last successful ping;
/// - `ssrq_ping_unhealthy{endpoint}` — `1` once the consecutive-failure
///   count reaches the configured threshold, `0` otherwise.
///
/// Dropping the monitor stops the background thread and joins it.
#[derive(Debug)]
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Spawns the monitor thread over `targets` (display label + pool per
    /// endpoint). `fail_threshold` is clamped to at least 1; `deadline`
    /// bounds each individual ping call.
    pub fn start(
        targets: Vec<(String, Arc<ConnectionPool>)>,
        interval: Duration,
        fail_threshold: u32,
        deadline: Option<Duration>,
    ) -> HealthMonitor {
        let fail_threshold = u64::from(fail_threshold.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ssrq-health".into())
            .spawn(move || {
                let registry = ssrq_obs::Registry::global();
                let mut failures: Vec<u64> = vec![0; targets.len()];
                while !stop_flag.load(Ordering::Acquire) {
                    for (i, (label, pool)) in targets.iter().enumerate() {
                        let labels = [("endpoint", label.as_str())];
                        let started = Instant::now();
                        let healthy =
                            matches!(pool.call(&Message::Ping, deadline), Ok((Message::Pong, _)));
                        if healthy {
                            failures[i] = 0;
                            registry
                                .gauge("ssrq_ping_rtt_ns", &labels)
                                .set(started.elapsed().as_nanos() as f64);
                        } else {
                            failures[i] = failures[i].saturating_add(1);
                        }
                        registry
                            .gauge("ssrq_ping_consecutive_failures", &labels)
                            .set(failures[i] as f64);
                        registry.gauge("ssrq_ping_unhealthy", &labels).set(
                            if failures[i] >= fail_threshold {
                                1.0
                            } else {
                                0.0
                            },
                        );
                    }
                    // Sleep in short slices so Drop never waits a full interval.
                    let wake = Instant::now() + interval;
                    while Instant::now() < wake && !stop_flag.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(10).min(interval));
                    }
                }
            })
            .expect("spawn health monitor thread");
        HealthMonitor {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
