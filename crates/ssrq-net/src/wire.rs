//! The frame layer: length-prefixed binary frames and the little-endian
//! primitive codecs every message is built from.
//!
//! # Frame format
//!
//! Every message travels as one frame.  Version 2 (current) carries a
//! **frame id** so one connection can multiplex concurrent in-flight
//! requests — a response echoes the id of the request it answers:
//!
//! | offset | size | field                                    |
//! |-------:|-----:|------------------------------------------|
//! |      0 |    4 | magic `b"SSRQ"`                          |
//! |      4 |    1 | protocol version ([`VERSION`])           |
//! |      5 |    1 | message type tag                         |
//! |      6 |    4 | frame id (u32 little-endian)             |
//! |     10 |    4 | payload length `n` (u32 little-endian)   |
//! |     14 |  `n` | payload                                  |
//!
//! Version 1 ([`LEGACY_VERSION`]) frames remain decodable: they omit the
//! frame-id field (payload length sits at offset 6, payload at 10) and
//! are treated as frame id 0 — the one-in-flight sentinel.  The first
//! [`HEADER_PREFIX`] bytes of both versions share a layout through the
//! version byte, so a reader pulls the prefix, learns the version, and
//! then knows how many header bytes remain ([`header_tail`]).
//!
//! All multi-byte integers are little-endian; `f64` values travel as their
//! IEEE-754 bit pattern ([`f64::to_bits`]), so encode→decode is
//! **bit-identical** — including signed zeros, infinities and subnormals.
//! Strings are a u32 byte length followed by UTF-8 bytes.  Optionals are a
//! presence byte (0/1) followed by the value.  Vectors are a u32 count
//! followed by the elements.
//!
//! Decoding is total: malformed input of any shape — truncation, bad
//! magic, unknown version or tag, trailing bytes, invalid UTF-8,
//! out-of-range presence bytes, oversized payloads — returns a typed
//! [`WireError`], never panics.

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SSRQ";

/// Current protocol version: multiplexed frames with a frame id.  A peer
/// speaking a version that is neither this nor [`LEGACY_VERSION`] is
/// rejected with [`WireError::UnsupportedVersion`] before any payload is
/// interpreted.
pub const VERSION: u8 = 2;

/// The previous protocol version (no frame-id field); still decoded, with
/// an implied frame id of 0, so pre-multiplexing peers keep working.
pub const LEGACY_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes for the current [`VERSION`].
pub const HEADER_LEN: usize = 14;

/// Size of a [`LEGACY_VERSION`] frame header in bytes.
pub const LEGACY_HEADER_LEN: usize = 10;

/// Bytes a reader must pull before it knows the frame's version — and with
/// it, via [`header_tail`], how many header bytes remain.  Both versions
/// place magic, version and tag identically inside this prefix.
pub const HEADER_PREFIX: usize = 10;

/// Upper bound on a frame payload (64 MiB) — a corrupt length prefix must
/// not make a peer allocate unbounded memory.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// A typed decoding failure; the complete taxonomy of malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the field being decoded.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The message type tag names no known message.
    UnknownMessage(u8),
    /// The payload declares a length above [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The payload decoded cleanly but bytes were left over — the frame
    /// was produced by a peer with a different idea of the schema.
    TrailingBytes(usize),
    /// A structurally well-formed field carried an invalid value (bad
    /// UTF-8, presence byte outside {0,1}, unknown enum tag, …).
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownMessage(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::Oversize(n) => {
                write!(f, "payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the payload"),
            WireError::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed frame header, version differences normalized away: a
/// [`LEGACY_VERSION`] frame reports `frame_id` 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The protocol version the frame was encoded in ([`VERSION`] or
    /// [`LEGACY_VERSION`]) — responses should answer in kind.
    pub version: u8,
    /// Message type tag.
    pub tag: u8,
    /// Multiplexing id; 0 on legacy frames.
    pub frame_id: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Header size in bytes for this frame's version.
    pub fn header_len(&self) -> usize {
        match self.version {
            LEGACY_VERSION => LEGACY_HEADER_LEN,
            _ => HEADER_LEN,
        }
    }
}

/// Header bytes that follow the [`HEADER_PREFIX`] for the given version.
///
/// # Errors
///
/// [`WireError::UnsupportedVersion`] for a version this build does not
/// speak.
pub fn header_tail(version: u8) -> Result<usize, WireError> {
    match version {
        LEGACY_VERSION => Ok(LEGACY_HEADER_LEN - HEADER_PREFIX),
        VERSION => Ok(HEADER_LEN - HEADER_PREFIX),
        other => Err(WireError::UnsupportedVersion(other)),
    }
}

/// Builds one current-version frame with frame id 0 around an
/// already-encoded payload.
pub fn frame(msg_type: u8, payload: &[u8]) -> Vec<u8> {
    frame_with_id(msg_type, 0, payload)
}

/// Builds one current-version frame carrying the given frame id.
pub fn frame_with_id(msg_type: u8, frame_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg_type);
    out.extend_from_slice(&frame_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Builds one [`LEGACY_VERSION`] frame (no frame-id field) — what a
/// pre-multiplexing peer expects back.
pub fn legacy_frame(msg_type: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(LEGACY_HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(LEGACY_VERSION);
    out.push(msg_type);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses a frame header in either supported version.
///
/// # Errors
///
/// [`WireError::Truncated`] for a short header, [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`], or [`WireError::Oversize`] for a
/// length above [`MAX_PAYLOAD`].  (An unknown message *type* is left to the
/// payload decoder, which knows the tag table.)
pub fn parse_header(bytes: &[u8]) -> Result<FrameHeader, WireError> {
    if bytes.len() < HEADER_PREFIX {
        return Err(WireError::Truncated {
            needed: HEADER_PREFIX,
            have: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    let version = bytes[4];
    let tag = bytes[5];
    let header_len = HEADER_PREFIX + header_tail(version)?;
    if bytes.len() < header_len {
        return Err(WireError::Truncated {
            needed: header_len,
            have: bytes.len(),
        });
    }
    let (frame_id, len) = match version {
        LEGACY_VERSION => (
            0,
            u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]),
        ),
        _ => (
            u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]),
            u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]),
        ),
    };
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    Ok(FrameHeader {
        version,
        tag,
        frame_id,
        payload_len: len,
    })
}

/// Little-endian payload writer; a thin, infallible builder over `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a string as u32 byte length + UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an optional value: a presence byte, then the value via `f`.
    pub fn opt<T>(&mut self, v: Option<T>, f: impl FnOnce(&mut Self, T)) {
        match v {
            Some(v) => {
                self.u8(1);
                f(self, v);
            }
            None => self.u8(0),
        }
    }
}

/// Little-endian payload reader over a borrowed buffer; every accessor
/// fails with a typed [`WireError`] instead of panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a u64 that must fit a `usize` on this platform.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Invalid("count exceeds this platform's usize".into()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is [`WireError::Invalid`].
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Invalid(format!("bool byte 0x{b:02x}"))),
        }
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Invalid(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads an optional value: a 0/1 presence byte, then the value via
    /// `f`.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.f64(f64::INFINITY);
        w.f64(f64::MIN_POSITIVE / 2.0); // subnormal
        w.bool(true);
        w.str("héllo");
        w.opt(Some(7u32), |w, v| w.u32(v));
        w.opt::<u32>(None, |w, v| w.u32(v));
        let payload = w.finish();

        let mut r = Reader::new(&payload);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), f64::MIN_POSITIVE / 2.0);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt(|r| r.u32()).unwrap(), Some(7));
        assert_eq!(r.opt(|r| r.u32()).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn header_round_trips_and_rejects_corruption() {
        let framed = frame_with_id(0x03, 0xCAFE, &[1, 2, 3]);
        assert_eq!(
            parse_header(&framed).unwrap(),
            FrameHeader {
                version: VERSION,
                tag: 0x03,
                frame_id: 0xCAFE,
                payload_len: 3,
            }
        );
        assert_eq!(parse_header(&frame(0x03, &[])).unwrap().frame_id, 0);

        assert!(matches!(
            parse_header(&framed[..5]),
            Err(WireError::Truncated { .. })
        ));
        // A full prefix that promises a longer (v2) header is still
        // truncation, not a panic.
        assert!(matches!(
            parse_header(&framed[..HEADER_PREFIX]),
            Err(WireError::Truncated { .. })
        ));
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert!(matches!(parse_header(&bad), Err(WireError::BadMagic(_))));
        let mut bad = framed.clone();
        bad[4] = 99;
        assert!(matches!(
            parse_header(&bad),
            Err(WireError::UnsupportedVersion(99))
        ));
        let mut bad = framed;
        bad[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse_header(&bad), Err(WireError::Oversize(_))));
    }

    #[test]
    fn legacy_frames_decode_with_frame_id_zero() {
        let framed = legacy_frame(0x07, &[9, 9]);
        assert_eq!(framed.len(), LEGACY_HEADER_LEN + 2);
        let header = parse_header(&framed).unwrap();
        assert_eq!(
            header,
            FrameHeader {
                version: LEGACY_VERSION,
                tag: 0x07,
                frame_id: 0,
                payload_len: 2,
            }
        );
        assert_eq!(header.header_len(), LEGACY_HEADER_LEN);

        let mut bad = framed;
        bad[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse_header(&bad), Err(WireError::Oversize(_))));

        assert_eq!(header_tail(LEGACY_VERSION).unwrap(), 0);
        assert_eq!(header_tail(VERSION).unwrap(), 4);
        assert!(matches!(
            header_tail(3),
            Err(WireError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn reader_reports_truncation_and_trailing_bytes() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.u32(),
            Err(WireError::Truncated { needed: 4, have: 2 })
        ));

        let r = Reader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(2)));

        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(WireError::Invalid(_))));

        // A length prefix pointing past the buffer is truncation, not a
        // panic or an over-allocation.
        let mut w = Writer::new();
        w.u32(1_000_000);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::Truncated { .. })));
    }
}
