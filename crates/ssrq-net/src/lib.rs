//! Multi-process SSRQ serving over a hand-rolled wire protocol.
//!
//! This crate turns the in-process sharded deployment
//! ([`ssrq_shard::ShardedEngine`]) into a multi-*process* one: each shard
//! runs as its own OS process ([`ShardServer`]) behind a length-prefixed
//! binary frame protocol over Unix-domain or TCP sockets, and a
//! [`RemoteShardedEngine`] coordinator scatter-gathers queries across them
//! with the **same** best-first visit order, `f_k` threshold forwarding and
//! deterministic merge as the single-process engine — the two deployments
//! share the loop itself ([`ssrq_shard::scatter_sequential`]), so they
//! return the same ranked list.
//!
//! Everything on the wire is hand-written little-endian encoding
//! ([`wire`]): a 14-byte frame header (`b"SSRQ"`, version, message tag,
//! frame id, payload length) followed by the message payload, `f64`s
//! carried as raw IEEE-754 bits so scores and thresholds cross the wire
//! bit-exactly.  No external dependencies.  The frame id lets one
//! connection multiplex concurrent in-flight requests
//! ([`MuxConnection`] / [`ConnectionPool`]); version-1 peers (10-byte
//! header, no frame id) are still decoded and answered in kind.
//!
//! What the multi-process deployment adds over the in-process one is made
//! explicit rather than hidden:
//!
//! * **Failure semantics** — [`FailurePolicy::Fail`](ssrq_shard::FailurePolicy)
//!   (default) turns the first shard failure into a typed [`NetError`];
//!   `Degrade` merges the surviving shards and flags the result
//!   [`degraded`](ssrq_core::QueryResult::degraded).
//! * **Deadlines** — a per-shard round-trip deadline
//!   ([`RemoteEngineBuilder::deadline`]) bounds how long one slow shard
//!   can stall a query.
//! * **Wire accounting** — every query's merged
//!   [`QueryStats`](ssrq_core::QueryStats) counts `bytes_sent`,
//!   `bytes_received` and `wire_round_trips` (all zero in-process).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod coordinator;
mod error;
pub mod proto;
mod server;
pub mod wire;

pub use client::{
    ConnectionPool, Endpoint, HealthMonitor, MuxConnection, PendingCall, ShardClient, WireTraffic,
};
pub use coordinator::{RemoteEngineBuilder, RemoteShardedEngine};
pub use error::NetError;
pub use proto::{FailureKind, Message, ShardInfo};
pub use server::ShardServer;
