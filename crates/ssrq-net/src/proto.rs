//! The message layer: every frame a coordinator and a shard server can
//! exchange, with exact hand-written codecs.
//!
//! Codecs are **bit-exact**: `decode(encode(x)) == x` for every
//! representable value (scores travel as IEEE-754 bit patterns), and
//! re-encoding a decoded message reproduces the original bytes —
//! exclusion sets are sorted at encode time so the encoding is canonical.
//! Decoding never panics; malformed input yields a typed
//! [`WireError`].

use crate::wire::{frame_with_id, legacy_frame, Reader, WireError, Writer, LEGACY_VERSION};
use ssrq_core::{
    Algorithm, AlgorithmSpec, QueryRequest, QueryResult, QueryStats, RankedUser, UserId,
};
use ssrq_obs::{HistogramSnapshot, MetricSample, MetricValue, ObsReport, QuerySpans, SpanRecord};
use ssrq_shard::{ShardOutcome, ShardStats};
use ssrq_spatial::{Point, Rect};
use std::time::Duration;

/// What a shard server reports about itself in the handshake (and on
/// [`Message::Refresh`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// This server's shard index.
    pub shard: u32,
    /// Total number of shards in the deployment.
    pub shards: u32,
    /// Users in the (replicated) social graph.
    pub user_count: u64,
    /// Users located on this shard.
    pub located: u64,
    /// Bounding rectangle of this shard's resident locations (`None` when
    /// no resident is located) — what the coordinator's pruning runs on.
    pub rect: Option<Rect>,
    /// The deployment-global spatial normalization constant.
    pub spatial_norm: f64,
    /// The deployment-global social normalization constant.
    pub social_norm: f64,
}

/// Why a shard server refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The request failed validation.
    InvalidRequest,
    /// The named user does not exist.
    UnknownUser,
    /// The named algorithm is not registered on the server.
    UnknownAlgorithm,
    /// The algorithm needs an index the server was not built with.
    MissingIndex,
    /// Any other server-side failure.
    Internal,
}

impl FailureKind {
    fn tag(self) -> u8 {
        match self {
            FailureKind::InvalidRequest => 0,
            FailureKind::UnknownUser => 1,
            FailureKind::UnknownAlgorithm => 2,
            FailureKind::MissingIndex => 3,
            FailureKind::Internal => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => FailureKind::InvalidRequest,
            1 => FailureKind::UnknownUser,
            2 => FailureKind::UnknownAlgorithm,
            3 => FailureKind::MissingIndex,
            4 => FailureKind::Internal,
            t => return Err(WireError::Invalid(format!("failure kind {t}"))),
        })
    }

    /// Classifies a [`CoreError`](ssrq_core::CoreError) for the wire.
    pub fn of(error: &ssrq_core::CoreError) -> Self {
        use ssrq_core::CoreError;
        match error {
            CoreError::InvalidParameter(_) => FailureKind::InvalidRequest,
            CoreError::UnknownUser(_) => FailureKind::UnknownUser,
            CoreError::UnknownAlgorithm(_) => FailureKind::UnknownAlgorithm,
            CoreError::MissingIndex(_) => FailureKind::MissingIndex,
            _ => FailureKind::Internal,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FailureKind::InvalidRequest => "invalid request",
            FailureKind::UnknownUser => "unknown user",
            FailureKind::UnknownAlgorithm => "unknown algorithm",
            FailureKind::MissingIndex => "missing index",
            FailureKind::Internal => "internal error",
        };
        f.write_str(name)
    }
}

/// One protocol message (= one frame).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server handshake; answered with [`Message::Info`].
    Hello,
    /// The server's self-description (handshake and refresh response).
    Info(ShardInfo),
    /// Run a bounded top-k over this shard's residents; answered with
    /// [`Message::Answer`] or [`Message::Fail`].
    Query {
        /// The query to run.
        request: QueryRequest,
        /// End-to-end trace id correlating this query's spans across the
        /// coordinator and every shard it touches.  `0` means *untraced*:
        /// it is never emitted on the wire, so a trace-id-0 frame is
        /// byte-identical to the pre-tracing encoding, and frames from
        /// legacy peers (which never carry the field) decode to `0`.
        trace_id: u64,
    },
    /// A shard's exact top-k over its residents.
    Answer(QueryResult),
    /// Ask for a user's stored location (origin resolution); answered
    /// with [`Message::Located`].
    Locate(UserId),
    /// Response to [`Message::Locate`].
    Located(Option<Point>),
    /// Report a user's new location (`None` removes it).  Every server of
    /// the deployment receives the broadcast; each adopts or drops the
    /// user per its own replicated assignment and answers
    /// [`Message::Relocated`].
    Relocate {
        /// The reported user.
        user: UserId,
        /// The new location, or `None` to remove.
        location: Option<Point>,
    },
    /// Response to [`Message::Relocate`].
    Relocated {
        /// `true` when this server now hosts the user's location.
        adopted: bool,
    },
    /// Ask for every located resident (rebalance survey); answered with
    /// [`Message::LocatedUsers`].
    ListLocated,
    /// Response to [`Message::ListLocated`].
    LocatedUsers(Vec<(UserId, Point)>),
    /// Install a repacked cell→shard map (spatial partitioning only);
    /// answered with [`Message::Ok`] or [`Message::Fail`].
    SetAssignment {
        /// The new cell→shard map, row-major over the tiling.
        cell_to_shard: Vec<u32>,
    },
    /// Re-derive and report this server's [`ShardInfo`] (tightened rect,
    /// occupancy) after migrations; answered with [`Message::Info`].
    Refresh,
    /// Typed server-side refusal.
    Fail {
        /// The failure class.
        kind: FailureKind,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness probe; answered with [`Message::Pong`].
    Ping,
    /// Response to [`Message::Ping`].
    Pong,
    /// Ask the server to exit its accept loop; answered with
    /// [`Message::Ok`].
    Shutdown,
    /// Generic acknowledgement.
    Ok,
    /// One-way threshold push: tighten the running-cap of the in-flight
    /// query whose **frame id** on this connection is `target`.  Carries
    /// no response; a server that no longer runs the target query ignores
    /// it (the answer may already be on the wire).
    Tighten {
        /// Frame id of the in-flight [`Message::Query`] to tighten.
        target: u32,
        /// The new (smaller) score cap; entries scoring at or above it
        /// cannot enter the caller's global top-k.
        max_score: f64,
    },
    /// Ask the server for its live observability snapshot (metrics
    /// registry + recent span trees); answered with
    /// [`Message::MetricsReport`].
    MetricsRequest,
    /// Response to [`Message::MetricsRequest`].
    MetricsReport(ObsReport),
}

impl Message {
    /// The frame tag of this message.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello => 0x01,
            Message::Info(_) => 0x02,
            Message::Query { .. } => 0x03,
            Message::Answer(_) => 0x04,
            Message::Locate(_) => 0x05,
            Message::Located(_) => 0x06,
            Message::Relocate { .. } => 0x07,
            Message::Relocated { .. } => 0x08,
            Message::ListLocated => 0x09,
            Message::LocatedUsers(_) => 0x0A,
            Message::SetAssignment { .. } => 0x0B,
            Message::Refresh => 0x0C,
            Message::Fail { .. } => 0x0D,
            Message::Ping => 0x0E,
            Message::Pong => 0x0F,
            Message::Shutdown => 0x10,
            Message::Ok => 0x11,
            Message::Tighten { .. } => 0x12,
            Message::MetricsRequest => 0x13,
            Message::MetricsReport(_) => 0x14,
        }
    }

    /// Wraps a request as a [`Message::Query`] with no trace id — the
    /// byte-compatible encoding pre-tracing peers produced.
    pub fn query(request: QueryRequest) -> Message {
        Message::Query {
            request,
            trace_id: 0,
        }
    }

    /// Encodes the message as one complete current-version frame with
    /// frame id 0 (the one-in-flight sentinel).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_id(0)
    }

    /// Encodes the message as one complete current-version frame carrying
    /// the given multiplexing frame id.
    pub fn encode_with_id(&self, frame_id: u32) -> Vec<u8> {
        self.encode_in(crate::wire::VERSION, frame_id)
    }

    /// Encodes the message as one complete frame in the given protocol
    /// version — a server answers in the version the request arrived in,
    /// so legacy peers get legacy frames back.  Encoding an unknown
    /// version falls back to the current one; a [`LEGACY_VERSION`] frame
    /// cannot carry a frame id and silently drops it (legacy peers run
    /// one-in-flight, id 0).
    pub fn encode_in(&self, version: u8, frame_id: u32) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Hello
            | Message::ListLocated
            | Message::Refresh
            | Message::Ping
            | Message::Pong
            | Message::Shutdown
            | Message::Ok
            | Message::MetricsRequest => {}
            Message::Info(info) => encode_shard_info(&mut w, info),
            Message::Query { request, trace_id } => {
                encode_request(&mut w, request);
                // Canonical *and* backward-compatible: the trace id is an
                // optional trailing field, and 0 (untraced) is expressed by
                // omission — so untraced frames are byte-identical to the
                // pre-tracing encoding.
                if *trace_id != 0 {
                    w.u64(*trace_id);
                }
            }
            Message::Answer(result) => encode_result(&mut w, result),
            Message::Locate(user) => w.u32(*user),
            Message::Located(location) => w.opt(*location, encode_point),
            Message::Relocate { user, location } => {
                w.u32(*user);
                w.opt(*location, encode_point);
            }
            Message::Relocated { adopted } => w.bool(*adopted),
            Message::LocatedUsers(users) => {
                w.u32(users.len() as u32);
                for &(user, p) in users {
                    w.u32(user);
                    encode_point(&mut w, p);
                }
            }
            Message::SetAssignment { cell_to_shard } => {
                w.u32(cell_to_shard.len() as u32);
                for &s in cell_to_shard {
                    w.u32(s);
                }
            }
            Message::Fail { kind, message } => {
                w.u8(kind.tag());
                w.str(message);
            }
            Message::Tighten { target, max_score } => {
                w.u32(*target);
                w.f64(*max_score);
            }
            Message::MetricsReport(report) => encode_obs_report(&mut w, report),
        }
        let payload = w.finish();
        if version == LEGACY_VERSION {
            legacy_frame(self.tag(), &payload)
        } else {
            frame_with_id(self.tag(), frame_id, &payload)
        }
    }

    /// Decodes one message from its frame tag and payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownMessage`] for an unknown tag; otherwise
    /// whatever the payload decoder reports (the payload must be consumed
    /// exactly — leftovers are [`WireError::TrailingBytes`]).
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(payload);
        let message = match tag {
            0x01 => Message::Hello,
            0x02 => Message::Info(decode_shard_info(&mut r)?),
            0x03 => {
                let request = decode_request(&mut r)?;
                // Optional trailing trace id: absent on legacy/untraced
                // frames, meaning 0.
                let trace_id = if r.remaining() > 0 { r.u64()? } else { 0 };
                Message::Query { request, trace_id }
            }
            0x04 => Message::Answer(decode_result(&mut r)?),
            0x05 => Message::Locate(r.u32()?),
            0x06 => Message::Located(r.opt(decode_point)?),
            0x07 => Message::Relocate {
                user: r.u32()?,
                location: r.opt(decode_point)?,
            },
            0x08 => Message::Relocated { adopted: r.bool()? },
            0x09 => Message::ListLocated,
            0x0A => {
                let n = r.u32()? as usize;
                let mut users = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let user = r.u32()?;
                    users.push((user, decode_point(&mut r)?));
                }
                Message::LocatedUsers(users)
            }
            0x0B => {
                let n = r.u32()? as usize;
                let mut cell_to_shard = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    cell_to_shard.push(r.u32()?);
                }
                Message::SetAssignment { cell_to_shard }
            }
            0x0C => Message::Refresh,
            0x0D => Message::Fail {
                kind: FailureKind::from_tag(r.u8()?)?,
                message: r.str()?,
            },
            0x0E => Message::Ping,
            0x0F => Message::Pong,
            0x10 => Message::Shutdown,
            0x11 => Message::Ok,
            0x12 => Message::Tighten {
                target: r.u32()?,
                max_score: r.f64()?,
            },
            0x13 => Message::MetricsRequest,
            0x14 => Message::MetricsReport(decode_obs_report(&mut r)?),
            t => return Err(WireError::UnknownMessage(t)),
        };
        r.finish()?;
        Ok(message)
    }
}

fn encode_point(w: &mut Writer, p: Point) {
    w.f64(p.x);
    w.f64(p.y);
}

fn decode_point(r: &mut Reader<'_>) -> Result<Point, WireError> {
    Ok(Point {
        x: r.f64()?,
        y: r.f64()?,
    })
}

fn encode_rect(w: &mut Writer, rect: Rect) {
    encode_point(w, rect.min);
    encode_point(w, rect.max);
}

fn decode_rect(r: &mut Reader<'_>) -> Result<Rect, WireError> {
    Ok(Rect {
        min: decode_point(r)?,
        max: decode_point(r)?,
    })
}

fn encode_shard_info(w: &mut Writer, info: &ShardInfo) {
    w.u32(info.shard);
    w.u32(info.shards);
    w.u64(info.user_count);
    w.u64(info.located);
    w.opt(info.rect, encode_rect);
    w.f64(info.spatial_norm);
    w.f64(info.social_norm);
}

fn decode_shard_info(r: &mut Reader<'_>) -> Result<ShardInfo, WireError> {
    Ok(ShardInfo {
        shard: r.u32()?,
        shards: r.u32()?,
        user_count: r.u64()?,
        located: r.u64()?,
        rect: r.opt(decode_rect)?,
        spatial_norm: r.f64()?,
        social_norm: r.f64()?,
    })
}

/// Encodes a [`QueryRequest`] payload.  Canonical: the exclusion set is
/// written in ascending user-id order, so equal requests encode to equal
/// bytes.
pub fn encode_request(w: &mut Writer, request: &QueryRequest) {
    w.u32(request.user());
    w.u64(request.k() as u64);
    w.f64(request.alpha());
    match request.algorithm() {
        AlgorithmSpec::Builtin(a) => {
            w.u8(0);
            w.str(a.name());
        }
        AlgorithmSpec::Named(name) => {
            w.u8(1);
            w.str(name);
        }
    }
    w.opt(request.origin(), encode_point);
    w.opt(request.within(), encode_rect);
    let mut excluded: Vec<UserId> = request.excluded().iter().copied().collect();
    excluded.sort_unstable();
    w.u32(excluded.len() as u32);
    for user in excluded {
        w.u32(user);
    }
    w.opt(request.max_score(), |w, v| w.f64(v));
}

/// Decodes a [`QueryRequest`] payload.
///
/// The request is rebuilt **unvalidated** — exactly like the in-process
/// [`build_unvalidated`](ssrq_core::QueryRequestBuilder::build_unvalidated)
/// path — because the executing engine re-validates defensively; a decoded
/// garbage request produces a typed engine error, never undefined state.
///
/// # Errors
///
/// [`WireError`] for malformed bytes, including a builtin-algorithm tag
/// naming no built-in.
pub fn decode_request(r: &mut Reader<'_>) -> Result<QueryRequest, WireError> {
    let user = r.u32()?;
    let k = r.usize()?;
    let alpha = r.f64()?;
    let algorithm: AlgorithmSpec = match r.u8()? {
        0 => {
            let name = r.str()?;
            // `from_name` covers the twelve paper methods plus the adaptive
            // `AUTO` meta-algorithm, so planner-driven requests cross the
            // wire as built-ins and the server resolves its own engine's
            // planner strategy.
            let builtin = Algorithm::from_name(&name).ok_or_else(|| {
                WireError::Invalid(format!("unknown built-in algorithm {name:?}"))
            })?;
            AlgorithmSpec::Builtin(builtin)
        }
        1 => AlgorithmSpec::Named(r.str()?),
        t => return Err(WireError::Invalid(format!("algorithm spec tag {t}"))),
    };
    let origin = r.opt(decode_point)?;
    let within = r.opt(decode_rect)?;
    let n = r.u32()? as usize;
    let mut excluded = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        excluded.push(r.u32()?);
    }
    let max_score = r.opt(|r| r.f64())?;
    let mut builder = QueryRequest::for_user(user)
        .k(k)
        .alpha(alpha)
        .algorithm(algorithm)
        .exclude(excluded);
    if let Some(origin) = origin {
        builder = builder.origin(origin);
    }
    if let Some(within) = within {
        builder = builder.within(within);
    }
    if let Some(max_score) = max_score {
        builder = builder.max_score(max_score);
    }
    Ok(builder.build_unvalidated())
}

/// Encodes a [`QueryStats`] payload (all counters, `runtime` as
/// nanoseconds).
pub fn encode_stats(w: &mut Writer, stats: &QueryStats) {
    w.u64(stats.vertex_pops as u64);
    w.u64(stats.social_pops as u64);
    w.u64(stats.spatial_pops as u64);
    w.u64(stats.index_pops as u64);
    w.u64(stats.evaluated_users as u64);
    w.u64(stats.distance_calls as u64);
    w.u64(stats.cache_hits as u64);
    w.u64(stats.delayed_reinsertions as u64);
    w.u64(stats.relaxed_edges as u64);
    w.u64(stats.streamable_results as u64);
    w.u64(stats.bytes_sent as u64);
    w.u64(stats.bytes_received as u64);
    w.u64(stats.wire_round_trips as u64);
    w.u64(stats.tighten_frames as u64);
    w.u64(stats.runtime.as_nanos() as u64);
}

/// Decodes a [`QueryStats`] payload.
///
/// # Errors
///
/// [`WireError`] for truncated input or counters exceeding this
/// platform's `usize`.
pub fn decode_stats(r: &mut Reader<'_>) -> Result<QueryStats, WireError> {
    Ok(QueryStats {
        vertex_pops: r.usize()?,
        social_pops: r.usize()?,
        spatial_pops: r.usize()?,
        index_pops: r.usize()?,
        evaluated_users: r.usize()?,
        distance_calls: r.usize()?,
        cache_hits: r.usize()?,
        delayed_reinsertions: r.usize()?,
        relaxed_edges: r.usize()?,
        streamable_results: r.usize()?,
        bytes_sent: r.usize()?,
        bytes_received: r.usize()?,
        wire_round_trips: r.usize()?,
        tighten_frames: r.usize()?,
        runtime: Duration::from_nanos(r.u64()?),
    })
}

fn encode_ranked(w: &mut Writer, entry: &RankedUser) {
    w.u32(entry.user);
    w.f64(entry.score);
    w.f64(entry.social);
    w.f64(entry.spatial);
}

fn decode_ranked(r: &mut Reader<'_>) -> Result<RankedUser, WireError> {
    Ok(RankedUser {
        user: r.u32()?,
        score: r.f64()?,
        social: r.f64()?,
        spatial: r.f64()?,
    })
}

/// Encodes a [`QueryResult`] payload.
pub fn encode_result(w: &mut Writer, result: &QueryResult) {
    w.u64(result.k as u64);
    w.bool(result.degraded);
    encode_stats(w, &result.stats);
    w.u32(result.ranked.len() as u32);
    for entry in &result.ranked {
        encode_ranked(w, entry);
    }
}

/// Decodes a [`QueryResult`] payload.
///
/// # Errors
///
/// [`WireError`] for malformed bytes.
pub fn decode_result(r: &mut Reader<'_>) -> Result<QueryResult, WireError> {
    let k = r.usize()?;
    let degraded = r.bool()?;
    let stats = decode_stats(r)?;
    let n = r.u32()? as usize;
    let mut ranked = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        ranked.push(decode_ranked(r)?);
    }
    Ok(QueryResult {
        ranked,
        k,
        degraded,
        stats,
    })
}

/// Encodes a [`ShardStats`] payload (per-shard outcomes + merged
/// aggregate) — what a coordinator persists or forwards for observability.
pub fn encode_shard_stats(w: &mut Writer, stats: &ShardStats) {
    w.u32(stats.per_shard.len() as u32);
    for outcome in &stats.per_shard {
        match outcome {
            ShardOutcome::Executed(s) => {
                w.u8(0);
                encode_stats(w, s);
            }
            ShardOutcome::Skipped { lower_bound } => {
                w.u8(1);
                w.f64(*lower_bound);
            }
            ShardOutcome::Failed { shard, detail } => {
                w.u8(2);
                w.str(shard);
                w.str(detail);
            }
        }
    }
    encode_stats(w, &stats.merged);
    w.u64(stats.gather_runtime.as_nanos() as u64);
}

/// Decodes a [`ShardStats`] payload.
///
/// # Errors
///
/// [`WireError`] for malformed bytes, including an unknown outcome tag.
pub fn decode_shard_stats(r: &mut Reader<'_>) -> Result<ShardStats, WireError> {
    let n = r.u32()? as usize;
    let mut per_shard = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        per_shard.push(match r.u8()? {
            0 => ShardOutcome::Executed(decode_stats(r)?),
            1 => ShardOutcome::Skipped {
                lower_bound: r.f64()?,
            },
            2 => ShardOutcome::Failed {
                shard: r.str()?,
                detail: r.str()?,
            },
            t => return Err(WireError::Invalid(format!("shard outcome tag {t}"))),
        });
    }
    let merged = decode_stats(r)?;
    let gather_runtime = Duration::from_nanos(r.u64()?);
    Ok(ShardStats {
        per_shard,
        merged,
        gather_runtime,
    })
}

fn encode_metric_sample(w: &mut Writer, sample: &MetricSample) {
    w.str(&sample.name);
    w.u32(sample.labels.len() as u32);
    for (key, value) in &sample.labels {
        w.str(key);
        w.str(value);
    }
    match &sample.value {
        MetricValue::Counter(v) => {
            w.u8(0);
            w.u64(*v);
        }
        MetricValue::Gauge(v) => {
            w.u8(1);
            w.f64(*v);
        }
        MetricValue::Histogram(snapshot) => {
            w.u8(2);
            w.u32(snapshot.buckets.len() as u32);
            for &(index, count) in &snapshot.buckets {
                w.u8(index);
                w.u64(count);
            }
            w.u64(snapshot.sum);
            w.u64(snapshot.count);
        }
    }
}

fn decode_metric_sample(r: &mut Reader<'_>) -> Result<MetricSample, WireError> {
    let name = r.str()?;
    let n = r.u32()? as usize;
    let mut labels = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let key = r.str()?;
        labels.push((key, r.str()?));
    }
    let value = match r.u8()? {
        0 => MetricValue::Counter(r.u64()?),
        1 => MetricValue::Gauge(r.f64()?),
        2 => {
            let n = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let index = r.u8()?;
                buckets.push((index, r.u64()?));
            }
            MetricValue::Histogram(HistogramSnapshot {
                buckets,
                sum: r.u64()?,
                count: r.u64()?,
            })
        }
        t => return Err(WireError::Invalid(format!("metric value tag {t}"))),
    };
    Ok(MetricSample {
        name,
        labels,
        value,
    })
}

fn encode_query_spans(w: &mut Writer, spans: &QuerySpans) {
    w.u64(spans.trace_id);
    w.u32(spans.spans.len() as u32);
    for span in &spans.spans {
        w.str(&span.name);
        w.opt(span.parent, |w, p| w.u32(p));
        w.u64(span.start_ns);
        w.u64(span.duration_ns);
    }
}

fn decode_query_spans(r: &mut Reader<'_>) -> Result<QuerySpans, WireError> {
    let trace_id = r.u64()?;
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        spans.push(SpanRecord {
            name: r.str()?,
            parent: r.opt(|r| r.u32())?,
            start_ns: r.u64()?,
            duration_ns: r.u64()?,
        });
    }
    Ok(QuerySpans { trace_id, spans })
}

/// Encodes an [`ObsReport`] payload — a process's metric snapshot plus
/// its recent span trees, exactly as recorded (`u64` counts stay exact).
pub fn encode_obs_report(w: &mut Writer, report: &ObsReport) {
    w.u32(report.metrics.len() as u32);
    for sample in &report.metrics {
        encode_metric_sample(w, sample);
    }
    w.u32(report.spans.len() as u32);
    for spans in &report.spans {
        encode_query_spans(w, spans);
    }
}

/// Decodes an [`ObsReport`] payload.
///
/// # Errors
///
/// [`WireError`] for malformed bytes, including an unknown metric value
/// tag.
pub fn decode_obs_report(r: &mut Reader<'_>) -> Result<ObsReport, WireError> {
    let n = r.u32()? as usize;
    let mut metrics = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        metrics.push(decode_metric_sample(r)?);
    }
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        spans.push(decode_query_spans(r)?);
    }
    Ok(ObsReport { metrics, spans })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(message: Message) {
        let bytes = message.encode();
        let header = crate::wire::parse_header(&bytes).unwrap();
        assert_eq!(
            header.payload_len as usize,
            bytes.len() - crate::wire::HEADER_LEN
        );
        assert_eq!(header.frame_id, 0);
        let decoded = Message::decode(header.tag, &bytes[crate::wire::HEADER_LEN..]).unwrap();
        assert_eq!(decoded, message);
        // Canonical: re-encoding the decoded message reproduces the bytes.
        assert_eq!(decoded.encode(), bytes);
        // Frame ids change only the header; legacy frames carry the same
        // payload behind the shorter v1 header.
        let with_id = message.encode_with_id(77);
        assert_eq!(crate::wire::parse_header(&with_id).unwrap().frame_id, 77);
        assert_eq!(
            with_id[crate::wire::HEADER_LEN..],
            bytes[crate::wire::HEADER_LEN..]
        );
        let legacy = message.encode_in(crate::wire::LEGACY_VERSION, 77);
        let legacy_header = crate::wire::parse_header(&legacy).unwrap();
        assert_eq!(legacy_header.version, crate::wire::LEGACY_VERSION);
        assert_eq!(legacy_header.frame_id, 0);
        assert_eq!(
            legacy[crate::wire::LEGACY_HEADER_LEN..],
            bytes[crate::wire::HEADER_LEN..]
        );
    }

    #[test]
    fn every_plain_message_round_trips() {
        for message in [
            Message::Hello,
            Message::ListLocated,
            Message::Refresh,
            Message::Ping,
            Message::Pong,
            Message::Shutdown,
            Message::Ok,
            Message::Locate(42),
            Message::Located(None),
            Message::Located(Some(Point::new(1.5, -2.5))),
            Message::Relocated { adopted: true },
            Message::Relocate {
                user: 7,
                location: None,
            },
            Message::LocatedUsers(vec![(1, Point::new(0.0, -0.0)), (2, Point::new(3.0, 4.0))]),
            Message::SetAssignment {
                cell_to_shard: vec![0, 1, 1, 0],
            },
            Message::Fail {
                kind: FailureKind::UnknownAlgorithm,
                message: "no algorithm \"X\"".into(),
            },
            Message::Tighten {
                target: 3,
                max_score: 0.375,
            },
        ] {
            round_trip(message);
        }
    }

    #[test]
    fn request_messages_round_trip_with_every_option() {
        let request = QueryRequest::for_user(9)
            .k(5)
            .alpha(0.62)
            .algorithm(Algorithm::TsaCh)
            .origin(Point::new(0.25, -0.75))
            .within(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
            .exclude([31, 4, 15])
            .max_score(0.5)
            .build()
            .unwrap();
        round_trip(Message::query(request.clone()));
        round_trip(Message::query(
            QueryRequest::for_user(0)
                .algorithm("CUSTOM")
                .build_unvalidated(),
        ));
        round_trip(Message::Query {
            request,
            trace_id: 0xDEAD_BEEF_0000_0001,
        });
    }

    #[test]
    fn untraced_queries_encode_byte_identically_to_the_pre_tracing_format() {
        let request = QueryRequest::for_user(3).k(4).build_unvalidated();
        // `Message::query` (trace id 0) must not grow the payload: the
        // trace id is expressed by omission, so pre-tracing peers parse
        // these frames unchanged.
        let untraced = Message::query(request.clone()).encode();
        let mut w = Writer::new();
        encode_request(&mut w, &request);
        let expected = frame_with_id(0x03, 0, &w.finish());
        assert_eq!(untraced, expected);
        // A traced frame is exactly 8 bytes longer.
        let traced = Message::Query {
            request,
            trace_id: 7,
        }
        .encode();
        assert_eq!(traced.len(), untraced.len() + 8);
    }

    #[test]
    fn metrics_messages_round_trip() {
        round_trip(Message::MetricsRequest);
        round_trip(Message::MetricsReport(ObsReport::default()));
        let registry = ssrq_obs::Registry::new();
        registry.counter("q_total", &[("shard", "0")]).add(5);
        registry.gauge("depth", &[]).set(-0.5);
        let h = registry.histogram("lat_ns", &[("algorithm", "ais")]);
        h.observe(0);
        h.observe(17);
        h.observe(u64::MAX);
        let report = ObsReport {
            metrics: registry.snapshot(),
            spans: vec![QuerySpans {
                trace_id: 9,
                spans: vec![
                    SpanRecord {
                        name: "query".into(),
                        parent: None,
                        start_ns: 0,
                        duration_ns: 1_000,
                    },
                    SpanRecord {
                        name: "scatter".into(),
                        parent: Some(0),
                        start_ns: 10,
                        duration_ns: 900,
                    },
                ],
            }],
        };
        round_trip(Message::MetricsReport(report));
    }

    #[test]
    fn answers_round_trip_including_empty_and_degraded() {
        let stats = QueryStats {
            vertex_pops: 3,
            relaxed_edges: 101,
            bytes_sent: 17,
            runtime: Duration::from_micros(421),
            ..QueryStats::default()
        };
        round_trip(Message::Answer(QueryResult {
            ranked: vec![RankedUser {
                user: 3,
                score: 0.125,
                social: 0.0625,
                spatial: f64::MIN_POSITIVE,
            }],
            k: 8,
            degraded: true,
            stats,
        }));
        round_trip(Message::Answer(QueryResult {
            ranked: vec![],
            k: 1,
            degraded: false,
            stats: QueryStats::default(),
        }));
    }

    #[test]
    fn shard_stats_round_trip() {
        let stats = ShardStats::new(
            vec![
                ShardOutcome::Executed(QueryStats {
                    evaluated_users: 11,
                    ..QueryStats::default()
                }),
                ShardOutcome::Skipped {
                    lower_bound: f64::INFINITY,
                },
                ShardOutcome::Failed {
                    shard: "unix:/tmp/s2.sock".into(),
                    detail: "connection reset".into(),
                },
            ],
            Duration::from_millis(3),
        );
        let mut w = Writer::new();
        encode_shard_stats(&mut w, &stats);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let decoded = decode_shard_stats(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, stats);
    }

    #[test]
    fn unknown_tags_and_truncations_are_typed_errors() {
        assert!(matches!(
            Message::decode(0xEE, &[]),
            Err(WireError::UnknownMessage(0xEE))
        ));
        let bytes = Message::Locate(5).encode();
        let payload = &bytes[crate::wire::HEADER_LEN..];
        assert!(matches!(
            Message::decode(0x05, &payload[..2]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage after a well-formed payload is rejected.
        let mut padded = payload.to_vec();
        padded.push(0);
        assert!(matches!(
            Message::decode(0x05, &padded),
            Err(WireError::TrailingBytes(1))
        ));
    }
}
