//! The server side: one process hosting one shard's
//! [`GeoSocialEngine`] behind the frame protocol.
//!
//! A [`ShardServer`] owns the engine for **one** shard (built over the
//! full social graph and the shard's restricted locations), a replica of
//! the deployment's [`ShardAssignment`] (so location reports can be
//! adopted or dropped without asking anyone), and a listening socket.
//!
//! # Concurrency model
//!
//! Each accepted connection gets a lightweight **reader** thread that
//! does nothing but parse frames; the work itself runs on a **bounded
//! worker pool** (one reusable [`QueryContext`](ssrq_core::QueryContext)
//! per worker), so a coordinator multiplexing many concurrent queries
//! over a few sockets cannot fork an unbounded number of engine threads.
//! Queries run under the engine's read lock; mutations (relocations,
//! assignment updates) take the write lock.  One-way
//! [`Message::Tighten`] frames never enter the queue: the reader applies
//! them directly to the in-flight query's [`ThresholdCell`], which the
//! executing worker polls between result entries (sound early-stop: the
//! stream yields entries in ascending score order, so once one reaches
//! the cap, everything after it is prunable too).
//!
//! Responses are written in the protocol version the request arrived in,
//! echoing its frame id — so legacy (v1, one-in-flight) clients keep
//! working unchanged.

use crate::client::{Endpoint, Stream};
use crate::error::NetError;
use crate::proto::{FailureKind, Message, ShardInfo};
use crate::wire::{header_tail, parse_header, FrameHeader, HEADER_PREFIX};
use ssrq_core::{GeoSocialEngine, QueryContext, QueryRequest, QueryResult};
use ssrq_obs::{
    Counter, Gauge, Histogram, Logger, ObsReport, Registry, SlowQueryLog, SpanLog, Trace,
};
use ssrq_shard::{ShardAssignment, ThresholdCell};
use ssrq_spatial::Rect;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How long readers and workers sleep in their idle polls before
/// re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Default size of the worker pool: enough to keep a few concurrent
/// queries moving without oversubscribing small machines.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4)
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// One parsed request waiting for a worker.
struct WorkItem {
    conn_id: u64,
    frame_id: u32,
    version: u8,
    enqueued: Instant,
    work: Work,
    writer: Arc<Mutex<Stream>>,
}

enum Work {
    /// A query with its trace id and (already registered) tighten cell.
    Query {
        request: QueryRequest,
        trace_id: u64,
        cell: Arc<ThresholdCell>,
    },
    /// Everything else.
    Other(Message),
}

/// The server's observability handles: metric series registered once at
/// bind time (recording is pure atomics), the bounded span log, the
/// structured stderr logger and the optional slow-query log.
struct ServerObs {
    connections: Counter,
    disconnections: Counter,
    queries: Counter,
    query_ns: Histogram,
    queue_wait_ns: Histogram,
    worker_busy_ns: Histogram,
    queue_depth: Gauge,
    tighten_applied: Counter,
    tighten_ignored: Counter,
    relocations_adopted: Counter,
    relocations_dropped: Counter,
    spans: SpanLog,
    logger: Logger,
    slow_log: Option<SlowQueryLog>,
}

impl ServerObs {
    fn new(shard: u32) -> ServerObs {
        let registry = Registry::global();
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard)];
        ServerObs {
            connections: registry.counter("ssrq_server_connections_total", labels),
            disconnections: registry.counter("ssrq_server_disconnections_total", labels),
            queries: registry.counter("ssrq_server_queries_total", labels),
            query_ns: registry.histogram("ssrq_server_query_ns", labels),
            queue_wait_ns: registry.histogram("ssrq_server_queue_wait_ns", labels),
            worker_busy_ns: registry.histogram("ssrq_server_worker_busy_ns", labels),
            queue_depth: registry.gauge("ssrq_server_queue_depth", labels),
            tighten_applied: registry.counter(
                "ssrq_server_tighten_total",
                &[("shard", &shard), ("outcome", "applied")],
            ),
            tighten_ignored: registry.counter(
                "ssrq_server_tighten_total",
                &[("shard", &shard), ("outcome", "ignored")],
            ),
            relocations_adopted: registry.counter(
                "ssrq_server_relocations_total",
                &[("shard", &shard), ("outcome", "adopted")],
            ),
            relocations_dropped: registry.counter(
                "ssrq_server_relocations_total",
                &[("shard", &shard), ("outcome", "dropped")],
            ),
            spans: SpanLog::new(SPAN_LOG_CAPACITY),
            logger: Logger::default(),
            slow_log: None,
        }
    }
}

/// How many recent query span trees a server retains for `Metrics`
/// introspection.
const SPAN_LOG_CAPACITY: usize = 256;

/// How many slow-query offenders are retained.
const SLOW_LOG_CAPACITY: usize = 64;

/// A homemade bounded-latency MPMC queue: mutexed deque + condvar, with a
/// timed wait so workers keep re-checking the shutdown flag.
struct WorkQueue {
    items: Mutex<VecDeque<WorkItem>>,
    ready: Condvar,
}

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        self.items.lock().expect("work queue lock").push_back(item);
        self.ready.notify_one();
    }

    /// Pops the next item, or `None` once `shutdown` is raised and the
    /// queue is drained.
    fn pop(&self, shutdown: &AtomicBool) -> Option<WorkItem> {
        let mut items = self.items.lock().expect("work queue lock");
        loop {
            if let Some(item) = items.pop_front() {
                return Some(item);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(items, POLL_INTERVAL)
                .expect("work queue lock");
            items = guard;
        }
    }
}

/// One shard-serving process: engine + assignment replica + socket.
pub struct ShardServer {
    engine: RwLock<GeoSocialEngine>,
    assignment: RwLock<ShardAssignment>,
    shard: u32,
    listener: Listener,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    /// Tighten targets of the queries currently queued or executing,
    /// keyed by (connection id, frame id).
    active: Mutex<HashMap<(u64, u32), Arc<ThresholdCell>>>,
    obs: ServerObs,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("shard", &self.shard)
            .field("endpoint", &self.endpoint().to_string())
            .field("workers", &self.workers)
            .finish()
    }
}

impl ShardServer {
    /// Binds the listening socket.
    ///
    /// `engine` must already be the **restricted** engine of shard
    /// `shard`: built over the full social graph but only this shard's
    /// resident locations (see
    /// [`GeoSocialDataset::restrict_locations`](ssrq_core::GeoSocialDataset::restrict_locations)).
    ///
    /// A Unix endpoint whose socket file already exists is probed first:
    /// if a server answers, the bind fails with `AddrInUse` (never steal
    /// a live socket); if nothing answers, the file is a **stale**
    /// leftover of a killed server and is unlinked so the restart
    /// succeeds.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket cannot be bound.
    pub fn bind(
        endpoint: &Endpoint,
        engine: GeoSocialEngine,
        shard: usize,
        assignment: ShardAssignment,
    ) -> Result<ShardServer, NetError> {
        let listener = match endpoint {
            Endpoint::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(listener) => listener,
                    Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            // A live server owns this socket.
                            return Err(NetError::Io(e));
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(NetError::Io(e)),
                };
                listener.set_nonblocking(true)?;
                Listener::Unix(listener, path.clone())
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Listener::Tcp(listener)
            }
        };
        Ok(ShardServer {
            engine: RwLock::new(engine),
            assignment: RwLock::new(assignment),
            shard: shard as u32,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
            workers: default_workers(),
            active: Mutex::new(HashMap::new()),
            obs: ServerObs::new(shard as u32),
        })
    }

    /// Sets the worker-pool size (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> ShardServer {
        self.workers = workers.max(1);
        self
    }

    /// Installs a structured stderr logger; the default logger is silent,
    /// so the stdout readiness line stays the server's only default
    /// output.
    pub fn with_logger(mut self, logger: Logger) -> ShardServer {
        self.obs.logger = logger;
        self
    }

    /// Captures queries at or above `threshold` (request shape + span
    /// tree) in a bounded slow-query log, surfaced in `Metrics` span
    /// output and on the logger at `warn`.
    pub fn with_slow_query_threshold(mut self, threshold: Duration) -> ShardServer {
        self.obs.slow_log = Some(SlowQueryLog::new(threshold, SLOW_LOG_CAPACITY));
        self
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The endpoint actually bound — for `tcp:127.0.0.1:0` this carries
    /// the kernel-assigned port.
    pub fn endpoint(&self) -> Endpoint {
        match &self.listener {
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
            Listener::Tcp(listener) => Endpoint::Tcp(
                listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_default(),
            ),
        }
    }

    /// A handle that makes [`ShardServer::serve`] return: set it to `true`
    /// from any thread (a `Shutdown` frame sets it too).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves connections until the shutdown flag is raised: a reader
    /// thread per connection, the work on a pool of
    /// [`workers`](ShardServer::workers) threads.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] for an accept-loop failure (per-connection errors
    /// only terminate that connection).
    pub fn serve(&self) -> Result<(), NetError> {
        let queue = WorkQueue::new();
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop(&queue));
            }
            let mut next_conn_id: u64 = 0;
            let result = loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break Ok(());
                }
                let accepted = match &self.listener {
                    Listener::Unix(listener, _) => match listener.accept() {
                        Ok((stream, _)) => Some(Stream::Unix(stream)),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(e) => break Err(NetError::Io(e)),
                    },
                    Listener::Tcp(listener) => match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true).ok();
                            Some(Stream::Tcp(stream))
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(e) => break Err(NetError::Io(e)),
                    },
                };
                match accepted {
                    Some(stream) => {
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        let queue = &queue;
                        scope.spawn(move || self.serve_connection(conn_id, stream, queue));
                    }
                    None => std::thread::sleep(POLL_INTERVAL),
                }
            };
            // Readers and workers poll this flag; raising it on the error
            // path too lets the scope join instead of hanging.
            self.shutdown.store(true, Ordering::SeqCst);
            result
        })?;
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// The per-connection reader: parses frames, applies `Tighten`s
    /// inline, queues everything else for the worker pool.
    fn serve_connection(&self, conn_id: u64, stream: Stream, queue: &WorkQueue) {
        if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        let writer = match stream.try_clone() {
            Ok(clone) => Arc::new(Mutex::new(clone)),
            Err(_) => return,
        };
        self.obs.connections.inc();
        self.obs
            .logger
            .info(&format!("event=connection_accepted conn={conn_id}"));
        let mut reader = stream;
        // Loop ends on clean EOF, shutdown, or poisoned framing.
        while let Ok(Some((header, payload))) = self.read_frame(&mut reader) {
            match Message::decode(header.tag, &payload) {
                Ok(Message::Tighten { target, max_score }) => {
                    // One-way; applied immediately, even while the target
                    // query sits in the queue.  An unknown target means
                    // the answer is already on its way — ignore.
                    let cell = self
                        .active
                        .lock()
                        .expect("active query lock")
                        .get(&(conn_id, target))
                        .map(Arc::clone);
                    match cell {
                        Some(cell) => {
                            cell.tighten(max_score);
                            self.obs.tighten_applied.inc();
                        }
                        None => self.obs.tighten_ignored.inc(),
                    }
                }
                Ok(Message::Query { request, trace_id }) => {
                    let cell = Arc::new(ThresholdCell::new(f64::INFINITY));
                    self.active
                        .lock()
                        .expect("active query lock")
                        .insert((conn_id, header.frame_id), Arc::clone(&cell));
                    self.obs.queue_depth.add(1.0);
                    queue.push(WorkItem {
                        conn_id,
                        frame_id: header.frame_id,
                        version: header.version,
                        enqueued: Instant::now(),
                        work: Work::Query {
                            request,
                            trace_id,
                            cell,
                        },
                        writer: Arc::clone(&writer),
                    });
                }
                Ok(message) => {
                    queue.push(WorkItem {
                        conn_id,
                        frame_id: header.frame_id,
                        version: header.version,
                        enqueued: Instant::now(),
                        work: Work::Other(message),
                        writer: Arc::clone(&writer),
                    });
                }
                Err(e) => {
                    let fail = Message::Fail {
                        kind: FailureKind::InvalidRequest,
                        message: e.to_string(),
                    }
                    .encode_in(header.version, header.frame_id);
                    if Self::write_response(&writer, &fail).is_err() {
                        break;
                    }
                }
            }
        }
        self.obs.disconnections.inc();
        self.obs
            .logger
            .info(&format!("event=connection_closed conn={conn_id}"));
    }

    fn write_response(writer: &Mutex<Stream>, bytes: &[u8]) -> std::io::Result<()> {
        let mut writer = writer.lock().expect("connection writer lock");
        writer.write_all(bytes).and_then(|()| writer.flush())
    }

    /// One pool worker: owns a reusable query context, processes items
    /// until shutdown.
    fn worker_loop(&self, queue: &WorkQueue) {
        let mut ctx = self.engine.read().expect("engine lock").make_context();
        while let Some(item) = queue.pop(&self.shutdown) {
            let started = Instant::now();
            let response = match item.work {
                Work::Query {
                    request,
                    trace_id,
                    cell,
                } => {
                    self.obs.queue_depth.add(-1.0);
                    self.obs
                        .queue_wait_ns
                        .observe_duration(started.duration_since(item.enqueued));
                    let response = self.run_query(&request, trace_id, &mut ctx, &cell);
                    self.active
                        .lock()
                        .expect("active query lock")
                        .remove(&(item.conn_id, item.frame_id));
                    if self.obs.logger.enabled(ssrq_obs::Level::Info) {
                        self.obs.logger.info(&format!(
                            "event=query_served conn={} frame={} trace={:#018x} duration_us={}",
                            item.conn_id,
                            item.frame_id,
                            trace_id,
                            started.elapsed().as_micros(),
                        ));
                    }
                    Some(response)
                }
                Work::Other(message) => self.handle(message, &mut ctx),
            };
            self.obs.worker_busy_ns.observe_duration(started.elapsed());
            if let Some(response) = response {
                let bytes = response.encode_in(item.version, item.frame_id);
                // A write failure only loses this connection; its reader
                // notices on its next read.
                let _ = Self::write_response(&item.writer, &bytes);
            }
        }
    }

    /// Reads one frame, tolerating idle timeouts between frames (the
    /// reader re-checks the shutdown flag on every poll tick).  Returns
    /// `Ok(None)` on clean EOF or shutdown.
    fn read_frame(&self, stream: &mut Stream) -> Result<Option<(FrameHeader, Vec<u8>)>, NetError> {
        let mut header = vec![0u8; HEADER_PREFIX];
        if self.read_full(stream, &mut header)?.is_none() {
            return Ok(None);
        }
        let tail = header_tail(header[4])?;
        if tail > 0 {
            let start = header.len();
            header.resize(start + tail, 0);
            if self.read_full(stream, &mut header[start..])?.is_none() {
                return Ok(None);
            }
        }
        let parsed = parse_header(&header)?;
        let mut payload = vec![0u8; parsed.payload_len as usize];
        if self.read_full(stream, &mut payload)?.is_none() {
            return Ok(None);
        }
        Ok(Some((parsed, payload)))
    }

    fn read_full(&self, stream: &mut Stream, buf: &mut [u8]) -> Result<Option<()>, NetError> {
        let mut filled = 0;
        while filled < buf.len() {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(None); // clean EOF between frames
                    }
                    return Err(NetError::Disconnected {
                        shard: format!("shard {}", self.shard),
                    });
                }
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(Some(()))
    }

    /// Runs one query under the read lock, polling `cell` between result
    /// entries: the stream yields finalized entries in ascending score
    /// order, so the first entry at or above the cap proves every later
    /// one is prunable as well — the truncated answer merges identically
    /// at the coordinator, which already holds entries beating the cap.
    fn run_query(
        &self,
        request: &QueryRequest,
        trace_id: u64,
        ctx: &mut QueryContext,
        cell: &ThresholdCell,
    ) -> Message {
        let trace = Trace::new(trace_id);
        let root = trace.open("shard_query", None);
        let engine = self.engine.read().expect("engine lock");
        let begin = trace.open("begin_stream", Some(root));
        let stream = engine.stream_with(request, ctx);
        trace.close(begin);
        let mut stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                return Message::Fail {
                    kind: FailureKind::of(&e),
                    message: e.to_string(),
                }
            }
        };
        let drain = trace.open("drain_topk", Some(root));
        let mut ranked = Vec::new();
        for entry in stream.by_ref() {
            if entry.score >= cell.get() {
                break;
            }
            ranked.push(entry);
        }
        trace.close(drain);
        if let Some(error) = stream.error() {
            return Message::Fail {
                kind: FailureKind::of(error),
                message: error.to_string(),
            };
        }
        let stats = stream.stats();
        trace.close(root);
        // The streaming path bypasses `run_with`, so the server records
        // the per-algorithm engine series itself.
        ssrq_core::obs::record_query_metrics(request.algorithm().key(), &stats);
        self.obs.queries.inc();
        self.obs.query_ns.observe_duration(stats.runtime);
        let spans = trace.finish();
        let total_ns = spans.total_ns();
        if let Some(slow_log) = &self.obs.slow_log {
            let captured = slow_log.offer(total_ns, &spans, || {
                format!(
                    "algorithm={} user={} k={} shard={}",
                    request.algorithm().key(),
                    request.user(),
                    request.k(),
                    self.shard,
                )
            });
            if captured {
                self.obs.logger.warn(&format!(
                    "event=slow_query trace={trace_id:#018x} total_us={}",
                    total_ns / 1_000
                ));
            }
        }
        self.obs.spans.push(spans);
        Message::Answer(QueryResult {
            ranked,
            k: request.k(),
            degraded: false,
            stats,
        })
    }

    /// The server's live observability snapshot: the process-wide metric
    /// registry plus the recent query span trees (slow-query offenders
    /// included) — what a `Metrics` frame and `--introspect` report.
    pub fn obs_report(&self) -> ObsReport {
        let mut spans = self.obs.spans.recent();
        if let Some(slow_log) = &self.obs.slow_log {
            for offender in slow_log.recent() {
                if !spans.contains(&offender.spans) {
                    spans.push(offender.spans);
                }
            }
        }
        ObsReport {
            metrics: Registry::global().snapshot(),
            spans,
        }
    }

    /// Processes one non-query message; `None` ends the connection.
    fn handle(&self, message: Message, _ctx: &mut QueryContext) -> Option<Message> {
        Some(match message {
            Message::Hello | Message::Refresh => Message::Info(self.info()),
            Message::Ping => Message::Pong,
            Message::MetricsRequest => Message::MetricsReport(self.obs_report()),
            Message::Locate(user) => {
                let engine = self.engine.read().expect("engine lock");
                Message::Located(engine.dataset().location(user))
            }
            Message::ListLocated => {
                let engine = self.engine.read().expect("engine lock");
                Message::LocatedUsers(engine.dataset().located_users().collect())
            }
            Message::Relocate { user, location } => {
                let mut engine = self.engine.write().expect("engine lock");
                let owner = location.map(|p| {
                    self.assignment
                        .read()
                        .expect("assignment lock")
                        .owner_for(user, Some(p))
                });
                let outcome = match location {
                    Some(p) if owner == Some(self.shard as usize) => {
                        engine.update_location(user, p).map(|()| true)
                    }
                    // Not (or no longer) ours: drop any stale copy.  The
                    // engine's removal is idempotent, so every non-owner
                    // in the broadcast answers cheaply.
                    _ => engine.remove_location(user).map(|()| false),
                };
                match outcome {
                    Ok(adopted) => {
                        if adopted {
                            self.obs.relocations_adopted.inc();
                            self.obs
                                .logger
                                .info(&format!("event=relocation_adopted user={user}"));
                        } else {
                            self.obs.relocations_dropped.inc();
                        }
                        Message::Relocated { adopted }
                    }
                    Err(e) => Message::Fail {
                        kind: FailureKind::of(&e),
                        message: e.to_string(),
                    },
                }
            }
            Message::SetAssignment { cell_to_shard } => {
                let mut assignment = self.assignment.write().expect("assignment lock");
                match assignment.set_cell_map(cell_to_shard) {
                    Ok(()) => Message::Ok,
                    Err(e) => Message::Fail {
                        kind: FailureKind::of(&e),
                        message: e.to_string(),
                    },
                }
            }
            Message::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Message::Ok
            }
            other => Message::Fail {
                kind: FailureKind::InvalidRequest,
                message: format!("unexpected message tag 0x{:02x}", other.tag()),
            },
        })
    }

    fn info(&self) -> ShardInfo {
        let engine = self.engine.read().expect("engine lock");
        let dataset = engine.dataset();
        ShardInfo {
            shard: self.shard,
            shards: self
                .assignment
                .read()
                .expect("assignment lock")
                .shard_count() as u32,
            user_count: dataset.user_count() as u64,
            located: dataset.located_user_count() as u64,
            rect: Rect::bounding(dataset.located_users().map(|(_, p)| p)),
            spatial_norm: dataset.spatial_norm(),
            social_norm: dataset.social_norm(),
        }
    }
}
