//! The server side: one process hosting one shard's
//! [`GeoSocialEngine`] behind the frame protocol.
//!
//! A [`ShardServer`] owns the engine for **one** shard (built over the
//! full social graph and the shard's restricted locations), a replica of
//! the deployment's [`ShardAssignment`] (so location reports can be
//! adopted or dropped without asking anyone), and a listening socket.
//! Queries run concurrently under a read lock with one reusable
//! [`QueryContext`](ssrq_core::QueryContext) per connection; mutations
//! (relocations, assignment updates) take the write lock.

use crate::client::{Endpoint, Stream};
use crate::error::NetError;
use crate::proto::{FailureKind, Message, ShardInfo};
use crate::wire::{parse_header, HEADER_LEN};
use ssrq_core::GeoSocialEngine;
use ssrq_shard::ShardAssignment;
use ssrq_spatial::Rect;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// How long a connection handler sleeps in its idle poll before
/// re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// One shard-serving process: engine + assignment replica + socket.
pub struct ShardServer {
    engine: RwLock<GeoSocialEngine>,
    assignment: RwLock<ShardAssignment>,
    shard: u32,
    listener: Listener,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("shard", &self.shard)
            .field("endpoint", &self.endpoint().to_string())
            .finish()
    }
}

impl ShardServer {
    /// Binds the listening socket.
    ///
    /// `engine` must already be the **restricted** engine of shard
    /// `shard`: built over the full social graph but only this shard's
    /// resident locations (see
    /// [`GeoSocialDataset::restrict_locations`](ssrq_core::GeoSocialDataset::restrict_locations)).
    /// A stale Unix socket file at the endpoint is removed first.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the socket cannot be bound.
    pub fn bind(
        endpoint: &Endpoint,
        engine: GeoSocialEngine,
        shard: usize,
        assignment: ShardAssignment,
    ) -> Result<ShardServer, NetError> {
        let listener = match endpoint {
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Listener::Unix(listener, path.clone())
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Listener::Tcp(listener)
            }
        };
        Ok(ShardServer {
            engine: RwLock::new(engine),
            assignment: RwLock::new(assignment),
            shard: shard as u32,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The endpoint actually bound — for `tcp:127.0.0.1:0` this carries
    /// the kernel-assigned port.
    pub fn endpoint(&self) -> Endpoint {
        match &self.listener {
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
            Listener::Tcp(listener) => Endpoint::Tcp(
                listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_default(),
            ),
        }
    }

    /// A handle that makes [`ShardServer::serve`] return: set it to `true`
    /// from any thread (a `Shutdown` frame sets it too).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves connections until the shutdown flag is raised; each
    /// connection gets its own handler thread and reusable query context.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] for an accept-loop failure (per-connection errors
    /// only terminate that connection).
    pub fn serve(&self) -> Result<(), NetError> {
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::SeqCst) {
                let accepted = match &self.listener {
                    Listener::Unix(listener, _) => match listener.accept() {
                        Ok((stream, _)) => Some(Stream::Unix(stream)),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(e) => return Err(NetError::Io(e)),
                    },
                    Listener::Tcp(listener) => match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true).ok();
                            Some(Stream::Tcp(stream))
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(e) => return Err(NetError::Io(e)),
                    },
                };
                match accepted {
                    Some(stream) => {
                        scope.spawn(move || self.handle_connection(stream));
                    }
                    None => std::thread::sleep(POLL_INTERVAL),
                }
            }
            Ok(())
        })?;
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    fn handle_connection(&self, mut stream: Stream) {
        if stream.set_timeouts(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        let mut ctx = self.engine.read().expect("engine lock").make_context();
        loop {
            let (tag, payload) = match self.read_frame(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) | Err(_) => return, // clean EOF, shutdown, or poisoned framing
            };
            let response = match Message::decode(tag, &payload) {
                Ok(message) => self.handle(message, &mut ctx),
                Err(e) => Some(Message::Fail {
                    kind: FailureKind::InvalidRequest,
                    message: e.to_string(),
                }),
            };
            let Some(response) = response else { return };
            if stream.write_all(&response.encode()).is_err() || stream.flush().is_err() {
                return;
            }
        }
    }

    /// Reads one frame, tolerating idle timeouts between frames (the
    /// handler re-checks the shutdown flag on every poll tick).  Returns
    /// `Ok(None)` on clean EOF or shutdown.
    fn read_frame(&self, stream: &mut Stream) -> Result<Option<(u8, Vec<u8>)>, NetError> {
        let mut header = [0u8; HEADER_LEN];
        if self.read_full(stream, &mut header)?.is_none() {
            return Ok(None);
        }
        let (tag, len) = parse_header(&header)?;
        let mut payload = vec![0u8; len as usize];
        if self.read_full(stream, &mut payload)?.is_none() {
            return Ok(None);
        }
        Ok(Some((tag, payload)))
    }

    fn read_full(&self, stream: &mut Stream, buf: &mut [u8]) -> Result<Option<()>, NetError> {
        let mut filled = 0;
        while filled < buf.len() {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(None); // clean EOF between frames
                    }
                    return Err(NetError::Disconnected {
                        shard: format!("shard {}", self.shard),
                    });
                }
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(Some(()))
    }

    /// Processes one message; `None` ends the connection (after
    /// `Shutdown`, whose `Ok` acknowledgement is written by the caller
    /// path via returning the response first — see below).
    fn handle(&self, message: Message, ctx: &mut ssrq_core::QueryContext) -> Option<Message> {
        Some(match message {
            Message::Hello | Message::Refresh => Message::Info(self.info()),
            Message::Ping => Message::Pong,
            Message::Query(request) => {
                let engine = self.engine.read().expect("engine lock");
                match engine.run_with(&request, ctx) {
                    Ok(result) => Message::Answer(result),
                    Err(e) => Message::Fail {
                        kind: FailureKind::of(&e),
                        message: e.to_string(),
                    },
                }
            }
            Message::Locate(user) => {
                let engine = self.engine.read().expect("engine lock");
                Message::Located(engine.dataset().location(user))
            }
            Message::ListLocated => {
                let engine = self.engine.read().expect("engine lock");
                Message::LocatedUsers(engine.dataset().located_users().collect())
            }
            Message::Relocate { user, location } => {
                let mut engine = self.engine.write().expect("engine lock");
                let owner = location.map(|p| {
                    self.assignment
                        .read()
                        .expect("assignment lock")
                        .owner_for(user, Some(p))
                });
                let outcome = match location {
                    Some(p) if owner == Some(self.shard as usize) => {
                        engine.update_location(user, p).map(|()| true)
                    }
                    // Not (or no longer) ours: drop any stale copy.  The
                    // engine's removal is idempotent, so every non-owner
                    // in the broadcast answers cheaply.
                    _ => engine.remove_location(user).map(|()| false),
                };
                match outcome {
                    Ok(adopted) => Message::Relocated { adopted },
                    Err(e) => Message::Fail {
                        kind: FailureKind::of(&e),
                        message: e.to_string(),
                    },
                }
            }
            Message::SetAssignment { cell_to_shard } => {
                let mut assignment = self.assignment.write().expect("assignment lock");
                match assignment.set_cell_map(cell_to_shard) {
                    Ok(()) => Message::Ok,
                    Err(e) => Message::Fail {
                        kind: FailureKind::of(&e),
                        message: e.to_string(),
                    },
                }
            }
            Message::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Message::Ok
            }
            other => Message::Fail {
                kind: FailureKind::InvalidRequest,
                message: format!("unexpected message tag 0x{:02x}", other.tag()),
            },
        })
    }

    fn info(&self) -> ShardInfo {
        let engine = self.engine.read().expect("engine lock");
        let dataset = engine.dataset();
        ShardInfo {
            shard: self.shard,
            shards: self
                .assignment
                .read()
                .expect("assignment lock")
                .shard_count() as u32,
            user_count: dataset.user_count() as u64,
            located: dataset.located_user_count() as u64,
            rect: Rect::bounding(dataset.located_users().map(|(_, p)| p)),
            spatial_norm: dataset.spatial_norm(),
            social_norm: dataset.social_norm(),
        }
    }
}
