//! The crate's error type.

use crate::proto::FailureKind;
use crate::wire::WireError;
use ssrq_core::CoreError;

/// Anything that can go wrong talking to (or serving) remote shards.
#[derive(Debug)]
pub enum NetError {
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// A socket-level failure.
    Io(std::io::Error),
    /// The remote shard refused the request with a typed failure.
    Remote {
        /// The failing shard's endpoint.
        shard: String,
        /// The failure class the server reported.
        kind: FailureKind,
        /// The server's human-readable detail.
        message: String,
    },
    /// The shard did not answer within the per-shard deadline.
    Timeout {
        /// The unresponsive shard's endpoint.
        shard: String,
    },
    /// The connection closed mid-conversation.
    Disconnected {
        /// The disconnected shard's endpoint.
        shard: String,
    },
    /// The peer answered with a message the protocol does not allow here.
    Protocol {
        /// The offending shard's endpoint.
        shard: String,
        /// What was wrong.
        detail: String,
    },
    /// A coordinator-local engine error (validation, unknown user, …) —
    /// same class an in-process engine reports.
    Core(CoreError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Remote {
                shard,
                kind,
                message,
            } => write!(f, "shard {shard} refused ({kind}): {message}"),
            NetError::Timeout { shard } => write!(f, "shard {shard} missed its deadline"),
            NetError::Disconnected { shard } => write!(f, "shard {shard} disconnected"),
            NetError::Protocol { shard, detail } => {
                write!(f, "protocol violation from {shard}: {detail}")
            }
            NetError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            NetError::Io(e) => Some(e),
            NetError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<CoreError> for NetError {
    fn from(e: CoreError) -> Self {
        NetError::Core(e)
    }
}
