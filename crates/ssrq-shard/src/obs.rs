//! Scatter-gather observability hooks.
//!
//! Every in-process scatter records its phase timings and per-shard
//! outcomes into a [`ssrq_obs::Registry`] — the same series names the
//! socket coordinator (`ssrq-net`) records for remote scatters, so a
//! deployment's dashboards read identically whichever serving tier
//! answered.

use crate::stats::ShardStats;
use ssrq_obs::Registry;
use std::time::Duration;

/// Records one completed scatter into `registry`:
///
/// | metric | type | what |
/// |---|---|---|
/// | `ssrq_shard_scatter_ns` | histogram | scatter phase (visit + wait on all shards) |
/// | `ssrq_shard_merge_ns` | histogram | deterministic cross-shard merge |
/// | `ssrq_shard_outcomes_total{outcome}` | counter | per-shard `executed` / `skipped` / `failed` tallies |
pub fn record_scatter_in(
    registry: &Registry,
    stats: &ShardStats,
    scatter: Duration,
    merge: Duration,
) {
    registry
        .histogram("ssrq_shard_scatter_ns", &[])
        .observe_duration(scatter);
    registry
        .histogram("ssrq_shard_merge_ns", &[])
        .observe_duration(merge);
    let outcomes = registry.counter("ssrq_shard_outcomes_total", &[("outcome", "executed")]);
    outcomes.add(stats.executed_shards() as u64);
    registry
        .counter("ssrq_shard_outcomes_total", &[("outcome", "skipped")])
        .add(stats.skipped_shards() as u64);
    registry
        .counter("ssrq_shard_outcomes_total", &[("outcome", "failed")])
        .add(stats.failed_shards() as u64);
}

/// [`record_scatter_in`] against the process-wide [`Registry::global`].
pub fn record_scatter(stats: &ShardStats, scatter: Duration, merge: Duration) {
    record_scatter_in(Registry::global(), stats, scatter, merge);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ShardOutcome;
    use ssrq_core::QueryStats;

    #[test]
    fn outcomes_and_phases_land_in_the_registry() {
        let registry = Registry::new();
        let stats = ShardStats::new(
            vec![
                ShardOutcome::Executed(QueryStats::default()),
                ShardOutcome::Executed(QueryStats::default()),
                ShardOutcome::Skipped { lower_bound: 0.9 },
            ],
            Duration::from_micros(30),
        );
        record_scatter_in(
            &registry,
            &stats,
            Duration::from_micros(25),
            Duration::from_micros(5),
        );
        let text = registry.render();
        assert!(text.contains("ssrq_shard_outcomes_total{outcome=\"executed\"} 2"));
        assert!(text.contains("ssrq_shard_outcomes_total{outcome=\"skipped\"} 1"));
        assert!(text.contains("ssrq_shard_outcomes_total{outcome=\"failed\"} 0"));
        assert!(text.contains("ssrq_shard_scatter_ns_sum 25000"));
        assert!(text.contains("ssrq_shard_merge_ns_sum 5000"));
    }
}
